//! The size-bounded result store with LRU replacement.

use crate::cache::description::{CacheDescription, DescriptionKind};
use crate::cache::entry::CacheEntry;
use crate::cache::persist::{entry_from_xml, entry_to_xml};
use crate::cache::replace::{policy_key, select_victim, EntryCost, Replacement};
use crate::cache::tier::{
    encode_payload, DemotedEntry, EvictionManager, SegRef, SlabSlice, TierConfig,
};
use crate::lifecycle::snapshot::{read_snapshot_file, write_snapshot_file};
use crate::lifecycle::{freshness_at, Freshness, LifecycleConfig, LifecycleStamp};
use crate::resilience::Clock;
use fp_geometry::Region;
use fp_skyserver::{ColumnarRows, ResultSet};
use fp_xmlite::Element;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;
use std::time::Duration;

/// Aggregate statistics of the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Entries currently cached in RAM (the hot tier).
    pub entries: usize,
    /// Bytes currently charged (XML size plus columnar heap).
    pub bytes: usize,
    /// Entries evicted so far (replacement policy victims).
    pub evictions: usize,
    /// Entries removed by region-containment compaction.
    pub compactions: usize,
    /// Entries retired because they aged past every staleness window.
    pub expired: usize,
    /// Entries retired by data-release epoch bumps.
    pub epoch_invalidations: usize,
    /// Entries currently resident only on the disk tier.
    pub disk_entries: usize,
    /// Total size of the disk tier's slab file(s).
    pub slab_bytes: usize,
    /// Entries moved RAM → disk by the budget enforcer.
    pub demotions: usize,
    /// Entries moved disk → RAM after a disk-tier hit.
    pub promotions: usize,
    /// Slab compaction passes (dead-byte reclamation rewrites).
    pub slab_compactions: usize,
    /// Slab segments found damaged (bad CRC, torn tail) — counted and
    /// skipped, never fatal.
    pub slab_corrupt_segments: usize,
    /// Times the tier entered eviction-only degraded mode (persistent
    /// slab I/O errors or ENOSPC; demotion suspended, never
    /// client-visible).
    pub tier_degraded: usize,
    /// Times a degraded tier's re-probe append succeeded and demotion
    /// resumed.
    pub tier_recoveries: usize,
    /// Slab I/O errors observed (failed appends and compactions).
    pub slab_io_errors: usize,
}

/// What classification needs to know about an entry, resident or
/// demoted: its region, truncation flag, and row count. Relationship
/// checking runs entirely on this view, so it never touches disk.
#[derive(Debug)]
pub struct ClassifyView<'a> {
    /// The entry's spatial region.
    pub region: &'a Region,
    /// Whether the result may have been clipped by a `TOP` limit.
    pub truncated: bool,
    /// Result row count (smallest-containing-entry preference).
    pub rows: usize,
}

/// Outcome of a disk-tier warm restart.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierRecovery {
    /// Entries restored (demoted or, when they have no columnar form,
    /// resident).
    pub recovered: usize,
    /// Damaged slab/metadata segments skipped along the way.
    pub corrupt: usize,
}

/// The proxy's cache: entries, the exact-match map, and one cache
/// description per residual group (regions of different templates have
/// different dimensionality, so each group gets its own index).
pub struct CacheStore {
    kind: DescriptionKind,
    capacity: Option<usize>,
    replacement: Replacement,
    entries: HashMap<u64, CacheEntry>,
    /// Replacement bookkeeping per id: monotone `created`/`used`
    /// sequence stamps plus the decayed-reuse and refetch-cost signals
    /// the cost-aware policy ranks by.
    last_used: HashMap<u64, EntryCost>,
    /// `(policy_key, id)` pairs ordered so the first element is the next
    /// victim — maintained on insert/remove/touch, making victim
    /// selection O(log n) instead of a full-entry scan per eviction.
    victim_order: BTreeSet<(u64, u64)>,
    clock: u64,
    groups: HashMap<Arc<str>, Box<dyn CacheDescription>>,
    exact: HashMap<Arc<str>, u64>,
    total_bytes: usize,
    next_id: u64,
    evictions: usize,
    compactions: usize,
    /// Lifecycle policy (TTLs, staleness windows). Inert by default.
    lifecycle: Arc<LifecycleConfig>,
    /// Injectable clock for TTL stamping; `None` = entries never age.
    time: Option<Arc<dyn Clock>>,
    /// Current data-release epoch; entries stamped lower are retired on
    /// the next [`Self::bump_epoch`].
    epoch: u64,
    expired: usize,
    epoch_invalidations: usize,
    /// Mutation counter (inserts/removes), letting the snapshot writer
    /// skip shards that have not changed since the last pass.
    generation: u64,
    /// The disk tier, when configured: slab file, demoted entries, and
    /// promotion/demotion bookkeeping. `None` = RAM-only store.
    tier: Option<EvictionManager>,
}

impl CacheStore {
    /// A store with the given description kind and byte capacity
    /// (`None` = unbounded, the paper's "unlimited cache size").
    pub fn new(kind: DescriptionKind, capacity: Option<usize>) -> Self {
        Self::with_replacement(kind, capacity, Replacement::Lru)
    }

    /// A store with an explicit replacement policy.
    pub fn with_replacement(
        kind: DescriptionKind,
        capacity: Option<usize>,
        replacement: Replacement,
    ) -> Self {
        CacheStore {
            kind,
            capacity,
            replacement,
            entries: HashMap::new(),
            last_used: HashMap::new(),
            victim_order: BTreeSet::new(),
            clock: 0,
            groups: HashMap::new(),
            exact: HashMap::new(),
            total_bytes: 0,
            next_id: 1,
            evictions: 0,
            compactions: 0,
            lifecycle: Arc::new(LifecycleConfig::default()),
            time: None,
            epoch: 0,
            expired: 0,
            epoch_invalidations: 0,
            generation: 0,
            tier: None,
        }
    }

    /// A store whose entries age on `clock` under `lifecycle`: inserts
    /// are stamped with the current epoch and a TTL deadline, and the
    /// freshness accessors start returning non-`Fresh` states.
    pub fn with_lifecycle(
        kind: DescriptionKind,
        capacity: Option<usize>,
        replacement: Replacement,
        lifecycle: Arc<LifecycleConfig>,
        clock: Arc<dyn Clock>,
    ) -> Self {
        let mut store = Self::with_replacement(kind, capacity, replacement);
        store.epoch = lifecycle.epoch;
        store.lifecycle = lifecycle;
        store.time = Some(clock);
        store
    }

    /// The configured description kind.
    pub fn description_kind(&self) -> DescriptionKind {
        self.kind
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        let mut stats = CacheStats {
            entries: self.entries.len(),
            bytes: self.total_bytes,
            evictions: self.evictions,
            compactions: self.compactions,
            expired: self.expired,
            epoch_invalidations: self.epoch_invalidations,
            ..CacheStats::default()
        };
        if let Some(tier) = &self.tier {
            stats.disk_entries = tier.demoted.len();
            stats.slab_bytes = tier.slab.bytes() as usize;
            stats.demotions = tier.demotions;
            stats.promotions = tier.promotions;
            stats.slab_compactions = tier.compactions;
            stats.slab_corrupt_segments = tier.slab.corrupt_segments();
            stats.tier_degraded = tier.degrade_events;
            stats.tier_recoveries = tier.recoveries;
            stats.slab_io_errors = tier.io_errors;
        }
        stats
    }

    /// Attaches the disk tier (shard `i`'s slab under the tier
    /// directory), turning this store into the hot tier of a two-level
    /// cache. Call before inserting; does not recover — the runtime
    /// calls `recover_tier` separately at build time.
    pub fn attach_tier(&mut self, config: &TierConfig, shard: usize) -> std::io::Result<()> {
        self.tier = Some(EvictionManager::open(config, shard)?);
        Ok(())
    }

    /// Whether a disk tier is attached.
    pub fn has_tier(&self) -> bool {
        self.tier.is_some()
    }

    /// The store's current data-release epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The mutation counter: bumps on every insert or remove.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The store's clock reading, when lifecycle timing is configured.
    pub fn now(&self) -> Option<std::time::Instant> {
        self.time.as_ref().map(|c| c.now())
    }

    /// Where `id` sits in its lifecycle. `None` when the entry is gone;
    /// entries without a deadline (or in a clock-free store) are
    /// perpetually [`Freshness::Fresh`].
    pub fn freshness(&self, id: u64) -> Option<Freshness> {
        let expires_at = match self.entries.get(&id) {
            Some(entry) => entry.expires_at,
            None => self.tier.as_ref()?.demoted.get(&id)?.expires_at,
        };
        let (Some(expires_at), Some(clock)) = (expires_at, &self.time) else {
            return Some(Freshness::Fresh);
        };
        Some(freshness_at(
            expires_at,
            clock.now(),
            self.lifecycle.stale_while_revalidate,
            self.lifecycle.stale_if_error,
        ))
    }

    /// Entry age in milliseconds on the store's clock; `0` when unknown.
    pub fn entry_age_ms(&self, id: u64) -> f64 {
        let inserted_at = match self.entries.get(&id) {
            Some(entry) => entry.inserted_at,
            None => self
                .tier
                .as_ref()
                .and_then(|t| t.demoted.get(&id))
                .and_then(|d| d.inserted_at),
        };
        match (inserted_at, &self.time) {
            (Some(at), Some(clock)) => {
                clock.now().saturating_duration_since(at).as_secs_f64() * 1000.0
            }
            _ => 0.0,
        }
    }

    /// Advances the store to a new data-release epoch, eagerly retiring
    /// every entry stamped with an older one. Returns how many were
    /// retired; a non-advancing epoch is a no-op.
    pub fn bump_epoch(&mut self, epoch: u64) -> usize {
        if epoch <= self.epoch {
            return 0;
        }
        self.epoch = epoch;
        let mut outdated: Vec<u64> = self
            .entries
            .values()
            .filter(|e| e.epoch < epoch)
            .map(|e| e.id)
            .collect();
        if let Some(tier) = &self.tier {
            outdated.extend(
                tier.demoted
                    .values()
                    .filter(|d| d.epoch < epoch)
                    .map(|d| d.id),
            );
        }
        let n = outdated.len();
        for id in outdated {
            self.remove(id);
        }
        self.epoch_invalidations += n;
        n
    }

    /// Retires [`Freshness::Dead`] entries among the probe region's
    /// candidates (expiry is lazy: entries die when next probed, not on
    /// a timer). Returns how many were retired.
    pub(crate) fn sweep_dead(&mut self, residual_key: &str, region: &Region) -> usize {
        if self.time.is_none() {
            return 0;
        }
        let dead: Vec<u64> = self
            .candidates(residual_key, region)
            .into_iter()
            .filter(|&id| self.freshness(id) == Some(Freshness::Dead))
            .collect();
        let n = dead.len();
        for id in dead {
            self.remove(id);
        }
        self.expired += n;
        n
    }

    /// Inserts a result; returns the new entry's id, or `None` when the
    /// entry alone exceeds the capacity (too large to ever cache).
    ///
    /// `coord_columns` names the result's coordinate attributes in region
    /// dimension order; when they resolve and every coordinate cell is
    /// numeric, the entry gets its columnar hot-path form (SoA columns,
    /// micro-index, row slab) built here, once, off the serve path.
    ///
    /// Replaces any previous entry with the same canonical SQL. Evicts
    /// policy victims until the new entry fits. The key strings are
    /// allocated once and shared (`Arc<str>`) between the entry and the
    /// group/exact maps; the region's bounding box is computed once and
    /// cached on the entry for index insert and removal.
    pub fn insert(
        &mut self,
        residual_key: &str,
        region: Region,
        result: impl Into<Arc<ResultSet>>,
        truncated: bool,
        exact_sql: &str,
        coord_columns: &[String],
    ) -> Option<u64> {
        let result: Arc<ResultSet> = result.into();
        let coord_idx: Option<Vec<usize>> = coord_columns
            .iter()
            .map(|c| result.column_index(c))
            .collect();
        self.insert_indexed(
            residual_key,
            region,
            result,
            truncated,
            exact_sql,
            coord_idx.as_deref().unwrap_or(&[]),
        )
    }

    /// [`Self::insert`] with pre-resolved coordinate column indexes
    /// (snapshot reload stores indexes, not names). An empty `coord_idx`
    /// means "no columnar form".
    pub(crate) fn insert_indexed(
        &mut self,
        residual_key: &str,
        region: Region,
        result: impl Into<Arc<ResultSet>>,
        truncated: bool,
        exact_sql: &str,
        coord_idx: &[usize],
    ) -> Option<u64> {
        let result: Arc<ResultSet> = result.into();
        let bytes = result.xml_bytes();
        let columnar = ColumnarRows::build(&result, coord_idx).map(Arc::new);
        self.insert_prebuilt(
            residual_key,
            region,
            result,
            truncated,
            exact_sql,
            bytes,
            columnar,
        )
    }

    /// [`Self::insert_indexed`] with the serialized size and columnar
    /// form already computed. The runtime prebuilds both *outside* the
    /// shard lock (serialization and index construction are the
    /// expensive parts of an insert), so the locked window here is just
    /// map updates — this is what keeps concurrent hit latency flat
    /// while misses land.
    #[allow(clippy::too_many_arguments)] // insert_indexed minus the build work
    pub(crate) fn insert_prebuilt(
        &mut self,
        residual_key: &str,
        region: Region,
        result: Arc<ResultSet>,
        truncated: bool,
        exact_sql: &str,
        bytes: usize,
        columnar: Option<Arc<ColumnarRows>>,
    ) -> Option<u64> {
        let footprint = bytes + columnar.as_ref().map_or(0, |c| c.heap_bytes());
        if let Some(cap) = self.capacity {
            // Without a disk tier an entry bigger than the whole budget
            // can never be cached; with one, it inserts and the budget
            // enforcer demotes it to the slab.
            if footprint > cap && self.tier.is_none() {
                return None;
            }
        }
        if let Some(&old) = self.exact.get(exact_sql) {
            self.remove(old);
        }
        if let Some(cap) = self.capacity {
            while self.total_bytes + footprint > cap {
                let Some(victim) = self.lru_victim() else {
                    break;
                };
                self.demote_or_evict(victim);
            }
        }

        let id = self.next_id;
        self.next_id += 1;
        let (inserted_at, expires_at) = match &self.time {
            Some(clock) => {
                let now = clock.now();
                (
                    Some(now),
                    self.lifecycle.ttl_for(residual_key).map(|ttl| now + ttl),
                )
            }
            None => (None, None),
        };
        let residual_key: Arc<str> = Arc::from(residual_key);
        let exact_sql: Arc<str> = Arc::from(exact_sql);
        let bbox = region.bounding_rect();
        let entry = CacheEntry {
            id,
            residual_key: Arc::clone(&residual_key),
            region,
            bbox: bbox.clone(),
            result,
            columnar,
            bytes,
            truncated,
            exact_sql: Arc::clone(&exact_sql),
            epoch: self.epoch,
            inserted_at,
            expires_at,
        };
        self.groups
            .entry(residual_key)
            .or_insert_with(|| self.kind.make(bbox.dims()))
            .insert(id, bbox);
        self.exact.insert(exact_sql, id);
        self.total_bytes += footprint;
        self.clock += 1;
        let cost = EntryCost::new(self.clock, EntryCost::default_refetch_us(footprint));
        self.victim_order
            .insert((self.entry_key(&cost, footprint), id));
        self.last_used.insert(id, cost);
        self.entries.insert(id, entry);
        self.generation += 1;
        // A tiered entry larger than the whole RAM budget lands here
        // still over cap (the loop above ran out of victims): spill it.
        if let Some(cap) = self.capacity {
            if self.total_bytes > cap && self.tier.is_some() {
                self.demote_or_evict(id);
            }
        }
        Some(id)
    }

    /// Inserts an entry recovered from a snapshot, re-anchoring its
    /// persisted lifecycle stamp (epoch, age, remaining TTL) onto the
    /// store's clock. Returns `None` — without counting a recovery —
    /// when the entry belongs to an older epoch or has already aged past
    /// every serve window.
    #[allow(clippy::too_many_arguments)] // mirrors insert_indexed + the stamp
    pub(crate) fn insert_restored(
        &mut self,
        residual_key: &str,
        region: Region,
        result: impl Into<Arc<ResultSet>>,
        truncated: bool,
        exact_sql: &str,
        coord_idx: &[usize],
        stamp: &LifecycleStamp,
    ) -> Option<u64> {
        if stamp.epoch < self.epoch {
            self.epoch_invalidations += 1;
            return None;
        }
        let id = self.insert_indexed(
            residual_key,
            region,
            result,
            truncated,
            exact_sql,
            coord_idx,
        )?;
        let entry = self.entries.get_mut(&id).expect("just inserted");
        entry.epoch = stamp.epoch;
        if let Some(clock) = &self.time {
            let now = clock.now();
            if let Some(age) = stamp.age_ms {
                entry.inserted_at = now
                    .checked_sub(Duration::from_millis(age))
                    .or(entry.inserted_at);
            }
            if let Some(remaining) = stamp.remaining_ms {
                entry.expires_at = if remaining >= 0 {
                    Some(now + Duration::from_millis(remaining.unsigned_abs()))
                } else {
                    now.checked_sub(Duration::from_millis(remaining.unsigned_abs()))
                };
            }
            if self.freshness(id) == Some(Freshness::Dead) {
                self.remove(id);
                self.expired += 1;
                return None;
            }
        }
        Some(id)
    }

    fn entry_key(&self, cost: &EntryCost, footprint: usize) -> u64 {
        policy_key(self.replacement, cost, footprint)
    }

    /// Records the measured origin cost of (re)building entry `id`, in
    /// microseconds — the runtime calls this right after an insert,
    /// with the simulated origin-fetch time it just charged. Replaces
    /// the size-proportional estimate the entry was inserted with and
    /// re-keys the victim set (the refetch cost is part of the
    /// cost-aware policy key).
    pub fn note_refetch_cost(&mut self, id: u64, refetch_us: u64) {
        let Some(footprint) = self.entries.get(&id).map(|e| e.footprint()) else {
            return;
        };
        if let Some(cost) = self.last_used.get_mut(&id) {
            let old_key = policy_key(self.replacement, cost, footprint);
            cost.refetch_us = refetch_us;
            let new_key = policy_key(self.replacement, cost, footprint);
            if new_key != old_key {
                self.victim_order.remove(&(old_key, id));
                self.victim_order.insert((new_key, id));
            }
        }
    }

    /// The next victim under the configured replacement policy, if any:
    /// the head of the incrementally-maintained order, O(log n).
    fn lru_victim(&self) -> Option<u64> {
        let victim = self.victim_order.first().map(|&(_, id)| id);
        debug_assert_eq!(
            victim,
            select_victim(
                self.replacement,
                self.last_used.iter().map(|(id, cost)| {
                    let fp = self.entries.get(id).map_or(0, |e| e.footprint());
                    (*id, *cost, fp)
                }),
            ),
            "incremental victim order diverged from reference scan"
        );
        victim
    }

    /// Removes an entry by id, from whichever tier holds it. Returns
    /// the entry when it was RAM-resident (demoted entries have no
    /// `CacheEntry` to give back — their payload lives in the slab).
    pub fn remove(&mut self, id: u64) -> Option<CacheEntry> {
        if let Some(entry) = self.remove_resident(id) {
            return Some(entry);
        }
        self.remove_demoted(id);
        None
    }

    fn remove_resident(&mut self, id: u64) -> Option<CacheEntry> {
        let entry = self.entries.remove(&id)?;
        self.total_bytes -= entry.footprint();
        if let Some(cost) = self.last_used.remove(&id) {
            self.victim_order
                .remove(&(self.entry_key(&cost, entry.footprint()), id));
        }
        // Guarded: a same-SQL replacement may already point the exact
        // map at a newer id.
        if self.exact.get(&*entry.exact_sql) == Some(&id) {
            self.exact.remove(&*entry.exact_sql);
        }
        if let Some(g) = self.groups.get_mut(&*entry.residual_key) {
            g.remove(id, &entry.bbox);
        }
        self.drop_segment(id);
        self.generation += 1;
        Some(entry)
    }

    fn remove_demoted(&mut self, id: u64) -> bool {
        let Some(d) = self.tier.as_mut().and_then(|t| t.demoted.remove(&id)) else {
            return false;
        };
        if self.exact.get(&*d.exact_sql) == Some(&id) {
            self.exact.remove(&*d.exact_sql);
        }
        if let Some(g) = self.groups.get_mut(&*d.residual_key) {
            g.remove(id, &d.bbox);
        }
        self.drop_segment(id);
        self.generation += 1;
        true
    }

    /// Releases `id`'s slab segment (if any) and compacts the slab when
    /// the dead-byte trigger fires.
    fn drop_segment(&mut self, id: u64) {
        let Some(tier) = self.tier.as_mut() else {
            return;
        };
        if let Some(seg) = tier.refs.remove(&id) {
            tier.slab.mark_dead(seg);
        }
        let lost = tier.maybe_compact();
        // Segments that turned out unreadable during the rewrite take
        // their (necessarily demoted) entries with them; recursion is
        // safe because the fresh slab has zero dead bytes.
        for id in lost {
            self.remove(id);
        }
    }

    /// Ensures `id` (RAM-resident) has a slab segment, appending one if
    /// needed. Entries are immutable, so a segment written once stays
    /// valid across any number of promote/demote cycles.
    fn ensure_segment(&mut self, id: u64) -> bool {
        let Some(tier) = self.tier.as_ref() else {
            return false;
        };
        if tier.refs.contains_key(&id) {
            return true;
        }
        let Some(entry) = self.entries.get(&id) else {
            return false;
        };
        let xml = entry_to_xml(entry, self.now()).to_xml().into_bytes();
        let row_slab = entry.columnar.as_ref().map_or(&[][..], |c| c.slab());
        let payload = encode_payload(&xml, row_slab);
        let tier = self.tier.as_mut().expect("checked above");
        // Eviction-only degraded mode: skip the append (the caller
        // evicts instead) until the periodic re-probe goes through.
        if !tier.admit_append() {
            return false;
        }
        match tier.slab.append(&payload) {
            Ok(seg) => {
                tier.note_append_ok();
                tier.refs.insert(id, seg);
                true
            }
            Err(_) => {
                tier.note_append_err();
                false
            }
        }
    }

    /// Moves a RAM-resident entry to the disk tier: its payload goes to
    /// the slab (if not already there), its skeleton (columns, spans,
    /// header, micro-index) stays resident, and its group/exact-map
    /// registrations are untouched so classification keeps seeing it.
    /// Returns `false` when the entry can't be demoted (no tier, no
    /// columnar form, or the slab append failed) — the caller evicts
    /// instead.
    fn demote(&mut self, id: u64) -> bool {
        if self.tier.is_none() {
            return false;
        }
        let Some(entry) = self.entries.get(&id) else {
            return false;
        };
        // No columnar form means no skeleton to select rows with; such
        // entries stay RAM-or-nothing.
        let Some(col) = entry.columnar.as_ref() else {
            return false;
        };
        let skeleton = Arc::new(col.skeleton());
        if !self.ensure_segment(id) {
            return false;
        }
        let entry = self.entries.remove(&id).expect("present above");
        self.total_bytes -= entry.footprint();
        if let Some(cost) = self.last_used.remove(&id) {
            self.victim_order
                .remove(&(self.entry_key(&cost, entry.footprint()), id));
        }
        let demoted = DemotedEntry {
            id,
            residual_key: entry.residual_key,
            region: entry.region,
            bbox: entry.bbox,
            skeleton,
            rows: entry.result.len(),
            bytes: entry.bytes,
            truncated: entry.truncated,
            exact_sql: entry.exact_sql,
            epoch: entry.epoch,
            inserted_at: entry.inserted_at,
            expires_at: entry.expires_at,
        };
        let tier = self.tier.as_mut().expect("checked above");
        tier.demoted.insert(id, demoted);
        tier.demotions += 1;
        self.generation += 1;
        true
    }

    /// Budget enforcement on one victim: spill to the disk tier when
    /// possible, evict otherwise.
    fn demote_or_evict(&mut self, id: u64) {
        if !self.demote(id) && self.remove_resident(id).is_some() {
            self.evictions += 1;
        }
    }

    /// Brings a demoted entry back to RAM with its rebuilt result and
    /// columnar form (both parsed from the slab *outside* the shard
    /// lock by the promotion worker). The entry keeps its id, lifecycle
    /// stamps, and slab segment; the budget enforcer may demote other
    /// entries to make room. Returns `false` when `id` is no longer
    /// demoted (raced with a remove or another promotion).
    pub(crate) fn promote(
        &mut self,
        id: u64,
        result: Arc<ResultSet>,
        columnar: Option<Arc<ColumnarRows>>,
    ) -> bool {
        let Some(d) = self.tier.as_mut().and_then(|t| t.demoted.remove(&id)) else {
            return false;
        };
        let bytes = result.xml_bytes();
        let footprint = bytes + columnar.as_ref().map_or(0, |c| c.heap_bytes());
        let entry = CacheEntry {
            id,
            residual_key: d.residual_key,
            region: d.region,
            bbox: d.bbox,
            result,
            columnar,
            bytes,
            truncated: d.truncated,
            exact_sql: d.exact_sql,
            epoch: d.epoch,
            inserted_at: d.inserted_at,
            expires_at: d.expires_at,
        };
        self.total_bytes += footprint;
        self.clock += 1;
        let cost = EntryCost::new(self.clock, EntryCost::default_refetch_us(footprint));
        self.victim_order
            .insert((self.entry_key(&cost, footprint), id));
        self.last_used.insert(id, cost);
        self.entries.insert(id, entry);
        self.tier.as_mut().expect("tier present").promotions += 1;
        self.generation += 1;
        if let Some(cap) = self.capacity {
            while self.total_bytes > cap {
                let Some(victim) = self.lru_victim() else {
                    break;
                };
                self.demote_or_evict(victim);
                if victim == id {
                    break; // the promoted entry itself went straight back
                }
            }
        }
        true
    }

    /// Drops a demoted entry whose slab payload failed to parse on
    /// promotion, counting the damage.
    pub(crate) fn drop_corrupt_demoted(&mut self, id: u64) {
        if self.remove_demoted(id) {
            if let Some(tier) = self.tier.as_mut() {
                tier.slab.note_corrupt();
            }
        }
    }

    /// Quarantines a demoted entry whose slab segment failed its CRC
    /// or parse: the entry is removed, its segment marked dead and
    /// counted corrupt, and its exact SQL handed back so the runtime
    /// can read-repair — re-fetch from origin through the resilient
    /// path and rewrite — instead of losing the entry silently.
    pub(crate) fn quarantine_corrupt_demoted(&mut self, id: u64) -> Option<Arc<str>> {
        let sql = self
            .tier
            .as_ref()
            .and_then(|t| t.demoted.get(&id))
            .map(|d| Arc::clone(&d.exact_sql));
        self.drop_corrupt_demoted(id);
        sql
    }

    /// Removes entries subsumed by a region-containment merge, counting
    /// them as compactions rather than evictions.
    pub fn compact(&mut self, ids: &[u64]) {
        for &id in ids {
            if self.remove(id).is_some() {
                self.compactions += 1;
            }
        }
    }

    /// Reads an entry and marks it used.
    pub fn get(&mut self, id: u64) -> Option<&CacheEntry> {
        if let Some(footprint) = self.entries.get(&id).map(|e| e.footprint()) {
            self.clock += 1;
            let clock = self.clock;
            if let Some(cost) = self.last_used.get_mut(&id) {
                self.victim_order
                    .remove(&(policy_key(self.replacement, cost, footprint), id));
                cost.touch(clock);
                self.victim_order
                    .insert((policy_key(self.replacement, cost, footprint), id));
            }
        }
        self.entries.get(&id)
    }

    /// Reads an entry without touching the LRU clock (relationship
    /// checking peeks at many entries; only actual hits count as use).
    pub fn peek(&self, id: u64) -> Option<&CacheEntry> {
        self.entries.get(&id)
    }

    /// What classification needs about `id`, whichever tier holds it.
    /// Demoted entries answer from their resident metadata — this never
    /// touches disk.
    pub fn classify_view(&self, id: u64) -> Option<ClassifyView<'_>> {
        if let Some(e) = self.entries.get(&id) {
            return Some(ClassifyView {
                region: &e.region,
                truncated: e.truncated,
                rows: e.result.len(),
            });
        }
        let d = self.tier.as_ref()?.demoted.get(&id)?;
        Some(ClassifyView {
            region: &d.region,
            truncated: d.truncated,
            rows: d.rows,
        })
    }

    /// The demoted entry for `id`, when it lives on the disk tier.
    pub fn disk_entry(&self, id: u64) -> Option<&DemotedEntry> {
        self.tier.as_ref()?.demoted.get(&id)
    }

    /// A zero-copy view of a demoted entry's slab payload, safe to
    /// carry outside the shard lock (it pins the mmap, not the store).
    /// `None` when `id` is not demoted or its segment is unreachable.
    pub fn disk_slice(&mut self, id: u64) -> Option<SlabSlice> {
        let tier = self.tier.as_mut()?;
        if !tier.demoted.contains_key(&id) {
            return None;
        }
        let seg = *tier.refs.get(&id)?;
        tier.slab.slice(seg)
    }

    /// The exact normalized SQL of `id`, whichever tier holds it (the
    /// revalidation path needs it for demoted entries too).
    pub fn exact_sql_of(&self, id: u64) -> Option<Arc<str>> {
        if let Some(e) = self.entries.get(&id) {
            return Some(Arc::clone(&e.exact_sql));
        }
        self.tier
            .as_ref()?
            .demoted
            .get(&id)
            .map(|d| Arc::clone(&d.exact_sql))
    }

    /// Exact-match lookup by canonical SQL text.
    pub fn lookup_exact(&self, sql: &str) -> Option<u64> {
        self.exact.get(sql).copied()
    }

    /// Ids in `residual_key`'s group whose bounding box intersects the
    /// probe region's bounding box.
    pub fn candidates(&self, residual_key: &str, region: &Region) -> Vec<u64> {
        let mut out = Vec::new();
        if let Some(g) = self.groups.get(residual_key) {
            g.candidates(&region.bounding_rect(), &mut out);
        }
        out
    }

    /// Iterates all live entries in unspecified order.
    pub fn iter_entries(&self) -> impl Iterator<Item = &CacheEntry> {
        self.entries.values()
    }

    /// Number of indexed entries in a residual group (description size).
    pub fn group_len(&self, residual_key: &str) -> usize {
        self.groups.get(residual_key).map_or(0, |g| g.len())
    }

    fn seg_dead(&mut self, seg: SegRef, corrupt: bool) {
        if let Some(tier) = self.tier.as_mut() {
            tier.slab.mark_dead(seg);
            if corrupt {
                tier.slab.note_corrupt();
            }
        }
    }

    /// Writes this shard's warm-restart metadata snapshot: one tiny
    /// record per live entry (slab segment location + lifecycle stamp)
    /// instead of re-serializing payloads — snapshot cost becomes
    /// proportional to entry *count*, not cached *bytes*. RAM-resident
    /// entries get a slab segment appended first if they never spilled.
    pub(crate) fn write_tier_meta(&mut self) -> std::io::Result<usize> {
        if self.tier.is_none() {
            return Ok(0);
        }
        // Spill in id (= insertion) order, not map order, so the slab's
        // later-segments-win replay semantics line up with recency.
        let mut resident: Vec<u64> = self.entries.keys().copied().collect();
        resident.sort_unstable();
        for id in resident {
            self.ensure_segment(id);
        }
        let now = self.now();
        let tier = self.tier.as_ref().expect("checked above");
        let mut segments = Vec::new();
        for (&id, &seg) in &tier.refs {
            let stamp = if let Some(e) = self.entries.get(&id) {
                (e.epoch, e.inserted_at, e.expires_at)
            } else if let Some(d) = tier.demoted.get(&id) {
                (d.epoch, d.inserted_at, d.expires_at)
            } else {
                continue; // ref without a live entry: dead weight
            };
            let (epoch, inserted_at, expires_at) = stamp;
            let mut rec = Element::new("SlabEntry")
                .with_attr("off", seg.off.to_string())
                .with_attr("len", seg.len.to_string())
                .with_attr("epoch", epoch.to_string());
            if let (Some(now), Some(at)) = (now, inserted_at) {
                rec = rec.with_attr(
                    "age_ms",
                    now.saturating_duration_since(at).as_millis().to_string(),
                );
            }
            if let (Some(now), Some(deadline)) = (now, expires_at) {
                let remaining_ms = if deadline >= now {
                    i128::from(
                        u64::try_from(deadline.duration_since(now).as_millis()).unwrap_or(u64::MAX),
                    )
                } else {
                    -i128::from(
                        u64::try_from(now.duration_since(deadline).as_millis()).unwrap_or(u64::MAX),
                    )
                };
                rec = rec.with_attr("remaining_ms", remaining_ms.to_string());
            }
            segments.push(rec.to_xml().into_bytes());
        }
        let count = segments.len();
        tier.io.meta_write_check()?;
        write_snapshot_file(&tier.meta_path, self.epoch, &segments)?;
        Ok(count)
    }

    /// Warm-restarts this shard from its slab: one sequential
    /// CRC-verifying scan of the file, then either the metadata
    /// snapshot (precise lifecycle stamps, dead entries pre-filtered)
    /// or — when no snapshot survived — a front-recoverable replay
    /// where later segments win SQL collisions. Restored entries come
    /// up *demoted* (RAM fills back up on access), except entries with
    /// no columnar form, which restore resident.
    pub(crate) fn recover_tier(&mut self) -> TierRecovery {
        let mut outcome = TierRecovery::default();
        let Some(tier) = self.tier.as_mut() else {
            return outcome;
        };
        let corrupt_before = tier.slab.corrupt_segments();
        let meta_path = tier.meta_path.clone();
        let kept = tier.slab.replay();
        let mut restored_offs: Vec<u64> = Vec::new();
        match read_snapshot_file(&meta_path) {
            Ok(meta) => {
                outcome.corrupt += meta.corrupt_segments;
                let by_off: HashMap<u64, &(SegRef, Vec<u8>)> =
                    kept.iter().map(|pair| (pair.0.off, pair)).collect();
                for record in &meta.segments {
                    let parsed = std::str::from_utf8(record)
                        .ok()
                        .and_then(|text| Element::parse(text).ok());
                    let Some(el) = parsed else {
                        outcome.corrupt += 1;
                        continue;
                    };
                    let loc = (
                        el.attr("off").and_then(|v| v.parse::<u64>().ok()),
                        el.attr("len").and_then(|v| v.parse::<u32>().ok()),
                    );
                    let (Some(off), Some(len)) = loc else {
                        outcome.corrupt += 1;
                        continue;
                    };
                    let Some((seg, payload)) = by_off.get(&off).filter(|(s, _)| s.len == len)
                    else {
                        // The segment the record points at did not
                        // survive the scan (damaged or torn).
                        outcome.corrupt += 1;
                        continue;
                    };
                    let stamp = LifecycleStamp {
                        epoch: el.attr("epoch").and_then(|v| v.parse().ok()).unwrap_or(0),
                        age_ms: el.attr("age_ms").and_then(|v| v.parse().ok()),
                        remaining_ms: el.attr("remaining_ms").and_then(|v| v.parse().ok()),
                    };
                    if self.restore_segment(*seg, payload, Some(&stamp)) {
                        outcome.recovered += 1;
                    }
                    restored_offs.push(off);
                }
            }
            Err(_) => {
                // No metadata snapshot (first tier boot, or it was
                // lost): replay everything, later segments winning.
                for (seg, payload) in &kept {
                    if self.restore_segment(*seg, payload, None) {
                        outcome.recovered += 1;
                    }
                    restored_offs.push(seg.off);
                }
            }
        }
        // Segments nothing restored from are dead bytes now.
        let restored: std::collections::HashSet<u64> = restored_offs.into_iter().collect();
        for (seg, _) in &kept {
            if !restored.contains(&seg.off) {
                self.seg_dead(*seg, false);
            }
        }
        let tier = self.tier.as_mut().expect("checked above");
        outcome.corrupt += tier.slab.corrupt_segments() - corrupt_before;
        let lost = tier.maybe_compact();
        for id in lost {
            self.remove(id);
        }
        outcome
    }

    /// Restores one slab segment into the store (demoted when it has a
    /// columnar skeleton, resident otherwise). Returns `false` — after
    /// marking the segment dead — when the entry is damaged, from an
    /// older epoch, or already aged out.
    fn restore_segment(
        &mut self,
        seg: SegRef,
        payload: &[u8],
        stamp_override: Option<&LifecycleStamp>,
    ) -> bool {
        // Payload framing: xml_len u32 LE · entry XML · row slab.
        if payload.len() < 4 {
            self.seg_dead(seg, true);
            return false;
        }
        let xml_len = u32::from_le_bytes(payload[..4].try_into().expect("4 bytes")) as usize;
        if 4 + xml_len > payload.len() {
            self.seg_dead(seg, true);
            return false;
        }
        let parsed = std::str::from_utf8(&payload[4..4 + xml_len])
            .ok()
            .and_then(|text| Element::parse(text).ok())
            .and_then(|doc| entry_from_xml(&doc));
        let Some(((residual_key, region, result, truncated, sql, coord_idx), embedded)) = parsed
        else {
            self.seg_dead(seg, true);
            return false;
        };
        let stamp = stamp_override.unwrap_or(&embedded);
        if stamp.epoch < self.epoch {
            self.epoch_invalidations += 1;
            self.seg_dead(seg, false);
            return false;
        }
        let result: Arc<ResultSet> = Arc::new(result);
        let Some(col) = ColumnarRows::build(&result, &coord_idx) else {
            // No skeleton to serve rows from disk with: restore the
            // entry RAM-resident through the stamped insert path.
            match self.insert_restored(
                &residual_key,
                region,
                result,
                truncated,
                &sql,
                &coord_idx,
                stamp,
            ) {
                Some(id) => {
                    if let Some(tier) = self.tier.as_mut() {
                        tier.refs.insert(id, seg);
                    }
                    return true;
                }
                None => {
                    self.seg_dead(seg, false);
                    return false;
                }
            }
        };
        // Re-anchor the persisted stamp on the store's clock, exactly
        // like `insert_restored` does for resident entries.
        let (inserted_at, expires_at) = match &self.time {
            Some(clock) => {
                let now = clock.now();
                let inserted_at = match stamp.age_ms {
                    Some(age) => now.checked_sub(Duration::from_millis(age)).or(Some(now)),
                    None => Some(now),
                };
                let expires_at = match stamp.remaining_ms {
                    Some(remaining) if remaining >= 0 => {
                        Some(now + Duration::from_millis(remaining.unsigned_abs()))
                    }
                    Some(remaining) => {
                        now.checked_sub(Duration::from_millis(remaining.unsigned_abs()))
                    }
                    None => self.lifecycle.ttl_for(&residual_key).map(|ttl| now + ttl),
                };
                (inserted_at, expires_at)
            }
            None => (None, None),
        };
        if let (Some(deadline), Some(clock)) = (expires_at, &self.time) {
            let state = freshness_at(
                deadline,
                clock.now(),
                self.lifecycle.stale_while_revalidate,
                self.lifecycle.stale_if_error,
            );
            if state == Freshness::Dead {
                self.expired += 1;
                self.seg_dead(seg, false);
                return false;
            }
        }
        if let Some(&old) = self.exact.get(sql.as_str()) {
            self.remove(old); // later segments win SQL collisions
        }
        let id = self.next_id;
        self.next_id += 1;
        let residual_key: Arc<str> = Arc::from(residual_key.as_str());
        let exact_sql: Arc<str> = Arc::from(sql.as_str());
        let bbox = region.bounding_rect();
        let demoted = DemotedEntry {
            id,
            residual_key: Arc::clone(&residual_key),
            region,
            bbox: bbox.clone(),
            skeleton: Arc::new(col.skeleton()),
            rows: result.len(),
            bytes: result.xml_bytes(),
            truncated,
            exact_sql: Arc::clone(&exact_sql),
            epoch: stamp.epoch,
            inserted_at,
            expires_at,
        };
        self.groups
            .entry(residual_key)
            .or_insert_with(|| self.kind.make(bbox.dims()))
            .insert(id, bbox);
        self.exact.insert(exact_sql, id);
        let tier = self.tier.as_mut().expect("tier present");
        tier.demoted.insert(id, demoted);
        tier.refs.insert(id, seg);
        self.generation += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_geometry::HyperRect;
    use fp_sqlmini::Value;

    fn rs(n: usize) -> ResultSet {
        ResultSet {
            columns: vec!["objID".into()],
            rows: (0..n).map(|i| vec![Value::Int(i as i64)]).collect(),
        }
    }

    /// A result with 2-D coordinate columns, for columnar-form tests.
    fn rs_coords(n: usize) -> ResultSet {
        ResultSet {
            columns: vec!["objID".into(), "cx".into(), "cy".into()],
            rows: (0..n)
                .map(|i| {
                    vec![
                        Value::Int(i as i64),
                        Value::Float(i as f64),
                        Value::Float(-(i as f64)),
                    ]
                })
                .collect(),
        }
    }

    fn region(lo: f64, hi: f64) -> Region {
        Region::Rect(HyperRect::new(vec![lo, lo], vec![hi, hi]).unwrap())
    }

    const NO_COORDS: &[String] = &[];

    #[test]
    fn insert_lookup_remove() {
        let mut s = CacheStore::new(DescriptionKind::Array, None);
        let id = s
            .insert("k", region(0.0, 1.0), rs(3), false, "SQL A", NO_COORDS)
            .unwrap();
        assert_eq!(s.lookup_exact("SQL A"), Some(id));
        assert_eq!(s.get(id).unwrap().result.len(), 3);
        assert_eq!(s.candidates("k", &region(0.5, 0.6)), vec![id]);
        assert!(s.candidates("other", &region(0.5, 0.6)).is_empty());
        let removed = s.remove(id).unwrap();
        assert_eq!(removed.id, id);
        assert_eq!(s.lookup_exact("SQL A"), None);
        assert!(s.candidates("k", &region(0.5, 0.6)).is_empty());
        assert_eq!(s.stats().entries, 0);
        assert_eq!(s.stats().bytes, 0);
    }

    #[test]
    fn same_sql_replaces() {
        let mut s = CacheStore::new(DescriptionKind::Array, None);
        let a = s
            .insert("k", region(0.0, 1.0), rs(3), false, "SQL", NO_COORDS)
            .unwrap();
        let b = s
            .insert("k", region(0.0, 1.0), rs(5), false, "SQL", NO_COORDS)
            .unwrap();
        assert_ne!(a, b);
        assert_eq!(s.stats().entries, 1);
        assert_eq!(s.lookup_exact("SQL"), Some(b));
    }

    #[test]
    fn capacity_evicts_lru() {
        let one_bytes = rs(10).xml_bytes();
        let mut s = CacheStore::new(DescriptionKind::Array, Some(one_bytes * 3));
        let a = s
            .insert("k", region(0.0, 1.0), rs(10), false, "A", NO_COORDS)
            .unwrap();
        let b = s
            .insert("k", region(2.0, 3.0), rs(10), false, "B", NO_COORDS)
            .unwrap();
        let c = s
            .insert("k", region(4.0, 5.0), rs(10), false, "C", NO_COORDS)
            .unwrap();
        // Touch A so B is the LRU.
        s.get(a);
        let d = s
            .insert("k", region(6.0, 7.0), rs(10), false, "D", NO_COORDS)
            .unwrap();
        assert!(s.peek(b).is_none(), "B should have been evicted");
        for id in [a, c, d] {
            assert!(s.peek(id).is_some());
        }
        assert_eq!(s.stats().evictions, 1);
        assert!(s.stats().bytes <= one_bytes * 3);
    }

    #[test]
    fn replacement_policies_choose_different_victims() {
        // Three entries of different sizes; capacity forces one eviction.
        let sizes = [30usize, 5, 60];
        let make = |policy| {
            let bytes: usize = sizes.iter().map(|n| rs(*n).xml_bytes()).sum();
            let mut s = CacheStore::with_replacement(DescriptionKind::Array, Some(bytes), policy);
            let ids: Vec<u64> = sizes
                .iter()
                .enumerate()
                .map(|(i, n)| {
                    s.insert(
                        "k",
                        region(i as f64 * 10.0, i as f64 * 10.0 + 1.0),
                        rs(*n),
                        false,
                        &format!("Q{i}"),
                        NO_COORDS,
                    )
                    .unwrap()
                })
                .collect();
            // Touch entry 0 so FIFO and LRU would differ if sizes allowed.
            s.get(ids[0]);
            // Force an eviction with a fourth entry.
            s.insert("k", region(100.0, 101.0), rs(3), false, "Q3", NO_COORDS)
                .unwrap();
            let survivors: Vec<bool> = ids.iter().map(|id| s.peek(*id).is_some()).collect();
            (survivors, s.stats().evictions)
        };

        let (lru, _) = make(crate::cache::Replacement::Lru);
        assert_eq!(lru, [true, false, true], "LRU evicts the untouched oldest");
        let (fifo, _) = make(crate::cache::Replacement::Fifo);
        assert_eq!(fifo, [false, true, true], "FIFO evicts the first inserted");
        let (largest, _) = make(crate::cache::Replacement::LargestFirst);
        assert_eq!(
            largest,
            [true, true, false],
            "largest-first evicts the big one"
        );
        let (smallest, ev) = make(crate::cache::Replacement::SmallestFirst);
        // Smallest-first may need several evictions to fit the newcomer.
        assert!(!smallest[1], "smallest-first evicts the small one first");
        assert!(ev >= 1);
    }

    #[test]
    fn eviction_storm_keeps_victim_order_consistent() {
        // Heavy churn across policies: the debug_assert in lru_victim
        // cross-checks the incremental order against the O(n) scan on
        // every eviction.
        for &policy in Replacement::all() {
            let cap = rs(8).xml_bytes() * 4;
            let mut s = CacheStore::with_replacement(DescriptionKind::Array, Some(cap), policy);
            for i in 0..100u64 {
                let n = 4 + (i % 7) as usize;
                let id = s.insert(
                    "k",
                    region(i as f64, i as f64 + 0.5),
                    rs(n),
                    false,
                    &format!("Q{i}"),
                    NO_COORDS,
                );
                assert!(id.is_some(), "{policy}: insert {i} rejected");
                // Touch a surviving entry now and then to churn LRU order.
                if i % 3 == 0 {
                    let live: Vec<u64> = s.iter_entries().map(|e| e.id).take(2).collect();
                    for id in live {
                        s.get(id);
                    }
                }
            }
            assert!(s.stats().evictions > 0, "{policy}: no evictions");
            assert!(s.stats().bytes <= cap, "{policy}: over capacity");
        }
    }

    /// Regression: equal-size entries under the size policies used to
    /// make the debug cross-check in `lru_victim` fire spuriously — the
    /// reference scan broke ties by HashMap iteration order while the
    /// incremental set breaks them by `(policy_key, id)`. With keys all
    /// tied, the victim must now deterministically be the smallest id.
    #[test]
    fn equal_size_ties_evict_smallest_id() {
        for &policy in &[Replacement::LargestFirst, Replacement::SmallestFirst] {
            let bytes = rs(6).xml_bytes();
            let mut s =
                CacheStore::with_replacement(DescriptionKind::Array, Some(bytes * 4), policy);
            let ids: Vec<u64> = (0..4)
                .map(|i| {
                    s.insert(
                        "k",
                        region(i as f64 * 10.0, i as f64 * 10.0 + 1.0),
                        rs(6),
                        false,
                        &format!("Q{i}"),
                        NO_COORDS,
                    )
                    .unwrap()
                })
                .collect();
            // Touch the candidates in reverse so recency disagrees with
            // id order (the tie-break must not depend on either use
            // order or map iteration order).
            for id in ids.iter().rev() {
                s.get(*id);
            }
            s.insert("k", region(100.0, 101.0), rs(6), false, "Q-last", NO_COORDS)
                .unwrap();
            assert!(
                s.peek(ids[0]).is_none(),
                "{policy}: smallest id loses the all-tied round"
            );
            for id in &ids[1..] {
                assert!(s.peek(*id).is_some(), "{policy}: larger ids survive");
            }
        }
    }

    #[test]
    fn cost_aware_keeps_expensive_entries() {
        let bytes = rs(6).xml_bytes();
        let mut s = CacheStore::with_replacement(
            DescriptionKind::Array,
            Some(bytes * 2),
            Replacement::CostAware,
        );
        let a = s
            .insert("k", region(0.0, 1.0), rs(6), false, "A", NO_COORDS)
            .unwrap();
        let b = s
            .insert("k", region(10.0, 11.0), rs(6), false, "B", NO_COORDS)
            .unwrap();
        // A is expensive to refetch, B nearly free; equal size & reuse.
        s.note_refetch_cost(a, 5_000_000);
        s.note_refetch_cost(b, 10);
        s.insert("k", region(20.0, 21.0), rs(6), false, "C", NO_COORDS)
            .unwrap();
        assert!(s.peek(a).is_some(), "expensive entry survives");
        assert!(s.peek(b).is_none(), "cheap-to-refetch entry is the victim");

        // Reuse outranks idle age: touch the survivor repeatedly, then
        // insert two more — the newest untouched entries go first.
        for _ in 0..5 {
            s.get(a);
        }
        let d = s
            .insert("k", region(30.0, 31.0), rs(6), false, "D", NO_COORDS)
            .unwrap();
        s.note_refetch_cost(d, 5_000_000);
        s.insert("k", region(40.0, 41.0), rs(6), false, "E", NO_COORDS)
            .unwrap();
        assert!(
            s.peek(a).is_some(),
            "hot expensive entry outlives equal-cost cold one"
        );
        assert!(s.peek(d).is_none(), "cold equal-cost entry is the victim");
    }

    #[test]
    fn coord_columns_build_columnar_form() {
        let mut s = CacheStore::new(DescriptionKind::Array, None);
        let coords = ["cx".to_string(), "cy".to_string()];
        let id = s
            .insert("k", region(0.0, 10.0), rs_coords(20), false, "A", &coords)
            .unwrap();
        let e = s.peek(id).unwrap();
        let col = e.columnar.as_ref().expect("columnar form built");
        assert_eq!(col.len(), 20);
        assert_eq!(col.coord_idx(), &[1, 2]);
        assert!(e.footprint() > e.bytes, "columnar heap is charged");
        assert_eq!(s.stats().bytes, e.footprint());

        // Unknown coordinate column: entry still stored, no columnar.
        let missing = ["nope".to_string()];
        let id2 = s
            .insert("k", region(20.0, 30.0), rs_coords(5), false, "B", &missing)
            .unwrap();
        assert!(s.peek(id2).unwrap().columnar.is_none());

        // Non-numeric coordinate cell: row-major fallback, no columnar.
        let mut bad = rs_coords(5);
        bad.rows[3][1] = Value::Str("corrupt".into());
        let id3 = s
            .insert("k", region(40.0, 50.0), bad, false, "C", &coords)
            .unwrap();
        assert!(s.peek(id3).unwrap().columnar.is_none());
    }

    #[test]
    fn key_strings_are_shared_not_cloned() {
        let mut s = CacheStore::new(DescriptionKind::Array, None);
        let id = s
            .insert("k", region(0.0, 1.0), rs(3), false, "SQL A", NO_COORDS)
            .unwrap();
        let e = s.peek(id).unwrap();
        // Entry and maps hold the same allocation: 1 entry ref + 1 map
        // key ref each.
        assert_eq!(Arc::strong_count(&e.residual_key), 2);
        assert_eq!(Arc::strong_count(&e.exact_sql), 2);
    }

    #[test]
    fn oversized_entry_is_rejected() {
        let mut s = CacheStore::new(DescriptionKind::Array, Some(10));
        assert!(s
            .insert("k", region(0.0, 1.0), rs(100), false, "A", NO_COORDS)
            .is_none());
        assert_eq!(s.stats().entries, 0);
    }

    #[test]
    fn compaction_counts_separately() {
        let mut s = CacheStore::new(DescriptionKind::RTree, None);
        let a = s
            .insert("k", region(0.0, 1.0), rs(1), false, "A", NO_COORDS)
            .unwrap();
        let b = s
            .insert("k", region(2.0, 3.0), rs(1), false, "B", NO_COORDS)
            .unwrap();
        s.compact(&[a, b, 999]);
        let st = s.stats();
        assert_eq!(st.compactions, 2);
        assert_eq!(st.evictions, 0);
        assert_eq!(st.entries, 0);
    }

    #[test]
    fn groups_are_isolated_and_dimension_safe() {
        let mut s = CacheStore::new(DescriptionKind::RTree, None);
        // 2-D group and 3-D group coexist.
        s.insert("g2", region(0.0, 1.0), rs(1), false, "A", NO_COORDS)
            .unwrap();
        let r3 = Region::Rect(HyperRect::new(vec![0.0; 3], vec![1.0; 3]).unwrap());
        s.insert("g3", r3.clone(), rs(1), false, "B", NO_COORDS)
            .unwrap();
        assert_eq!(s.group_len("g2"), 1);
        assert_eq!(s.group_len("g3"), 1);
        assert_eq!(s.candidates("g3", &r3).len(), 1);
    }

    // ---- disk-tier tests -------------------------------------------

    fn tier_dir(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("fp_store_tier_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    fn coords() -> [String; 2] {
        ["cx".to_string(), "cy".to_string()]
    }

    /// A tiered store sized to hold ~1.5 entries: the second insert
    /// demotes the first. Returns `(store, id_a, id_b)` with A demoted
    /// and B resident.
    fn tiered_pair(dir: &std::path::Path) -> (CacheStore, u64, u64) {
        let footprint = {
            let mut probe = CacheStore::new(DescriptionKind::Array, None);
            let id = probe
                .insert("k", region(0.0, 10.0), rs_coords(10), false, "A", &coords())
                .unwrap();
            probe.peek(id).unwrap().footprint()
        };
        let mut s = CacheStore::new(DescriptionKind::Array, Some(footprint * 3 / 2));
        s.attach_tier(&TierConfig::new(dir), 0).unwrap();
        let a = s
            .insert("k", region(0.0, 10.0), rs_coords(10), false, "A", &coords())
            .unwrap();
        let b = s
            .insert(
                "k",
                region(20.0, 30.0),
                rs_coords(10),
                false,
                "B",
                &coords(),
            )
            .unwrap();
        assert!(s.peek(a).is_none(), "A should be demoted, not resident");
        assert!(s.peek(b).is_some(), "B stays resident");
        (s, a, b)
    }

    /// Parses a demoted entry's slab payload back into its result and
    /// columnar form, exactly like the promotion worker does off-lock.
    fn parse_slice(slice: &SlabSlice) -> (Arc<ResultSet>, Option<Arc<ColumnarRows>>) {
        let text = std::str::from_utf8(slice.xml()).unwrap();
        let doc = Element::parse(text).unwrap();
        let ((_, _, result, _, _, coord_idx), _) = entry_from_xml(&doc).unwrap();
        let columnar = ColumnarRows::build(&result, &coord_idx).map(Arc::new);
        (Arc::new(result), columnar)
    }

    #[test]
    fn tier_demotes_over_budget_and_keeps_classification_resident() {
        let dir = tier_dir("demote");
        let (s, a, _b) = tiered_pair(&dir);
        let st = s.stats();
        assert_eq!(st.entries, 1);
        assert_eq!(st.disk_entries, 1);
        assert_eq!(st.demotions, 1);
        assert_eq!(st.evictions, 0, "tiered store spills instead of evicting");
        assert!(st.slab_bytes > 0);
        // Classification metadata never left RAM.
        let view = s
            .classify_view(a)
            .expect("demoted entry still classifiable");
        assert_eq!(view.rows, 10);
        assert!(!view.truncated);
        assert_eq!(s.lookup_exact("A"), Some(a));
        assert_eq!(s.candidates("k", &region(1.0, 2.0)), vec![a]);
        assert!(s.disk_entry(a).is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tier_slab_round_trip_and_promote() {
        let dir = tier_dir("promote");
        let (mut s, a, _b) = tiered_pair(&dir);
        let slice = s.disk_slice(a).expect("demoted entry has a slab segment");
        let (result, columnar) = parse_slice(&slice);
        // The slab payload reproduces the original result exactly.
        assert_eq!(*result, rs_coords(10));
        assert_eq!(columnar.as_ref().unwrap().coord_idx(), &[1, 2]);
        // And the demoted skeleton + mapped row slab rebuild the exact
        // XML document the resident entry would have served.
        let d = s.disk_entry(a).unwrap();
        let doc = d.skeleton.full_document_with(slice.row_slab());
        assert_eq!(doc, result.to_xml_string().into_bytes());

        assert!(s.promote(a, result, columnar));
        assert!(s.peek(a).is_some(), "promoted entry is resident again");
        let st = s.stats();
        assert_eq!(st.promotions, 1);
        // Promotion re-applied the budget: something else got demoted.
        assert_eq!(st.demotions, 2);
        assert_eq!(st.entries + st.disk_entries, 2, "no entry lost");
        // Promoting an id that is not demoted is a no-op.
        assert!(!s.promote(a, Arc::new(rs_coords(1)), None));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tier_remove_and_epoch_bump_cover_demoted_entries() {
        let dir = tier_dir("remove");
        let (mut s, a, _b) = tiered_pair(&dir);
        assert!(s.remove(a).is_none(), "demoted remove yields no entry");
        assert_eq!(s.lookup_exact("A"), None);
        assert!(s.candidates("k", &region(1.0, 2.0)).is_empty());
        assert_eq!(s.stats().disk_entries, 0);
        drop(s);

        let dir2 = tier_dir("epoch");
        let (mut s, _a, _b) = tiered_pair(&dir2);
        assert_eq!(s.bump_epoch(1), 2, "bump retires demoted + resident");
        let st = s.stats();
        assert_eq!(st.entries, 0);
        assert_eq!(st.disk_entries, 0);
        assert_eq!(st.epoch_invalidations, 2);
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&dir2).unwrap();
    }

    #[test]
    fn tier_same_sql_replaces_demoted_entry() {
        let dir = tier_dir("replace");
        let (mut s, a, _b) = tiered_pair(&dir);
        let a2 = s
            .insert("k", region(0.0, 10.0), rs_coords(12), false, "A", &coords())
            .unwrap();
        assert_ne!(a, a2);
        assert_eq!(s.lookup_exact("A"), Some(a2));
        assert_eq!(s.classify_view(a2).unwrap().rows, 12);
        assert!(s.classify_view(a).is_none(), "old demoted entry retired");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tier_recovers_from_meta_snapshot_and_from_bare_replay() {
        let dir = tier_dir("recover");
        let config = TierConfig::new(&dir);
        {
            let mut s = CacheStore::new(DescriptionKind::Array, None);
            s.attach_tier(&config, 0).unwrap();
            s.insert("k", region(0.0, 10.0), rs_coords(10), false, "A", &coords())
                .unwrap();
            s.insert("k", region(20.0, 30.0), rs_coords(7), false, "B", &coords())
                .unwrap();
            // No coordinate columns: no columnar form, restores resident.
            s.insert("k", region(40.0, 50.0), rs(3), false, "C", NO_COORDS)
                .unwrap();
            assert_eq!(s.write_tier_meta().unwrap(), 3);
        }

        // Meta-snapshot mode: precise recovery, entries come up demoted
        // (except C, which has no skeleton to serve from disk).
        let mut s = CacheStore::new(DescriptionKind::Array, None);
        s.attach_tier(&config, 0).unwrap();
        let outcome = s.recover_tier();
        assert_eq!(
            outcome,
            TierRecovery {
                recovered: 3,
                corrupt: 0
            }
        );
        let st = s.stats();
        assert_eq!(st.disk_entries, 2);
        assert_eq!(st.entries, 1);
        for sql in ["A", "B", "C"] {
            assert!(s.lookup_exact(sql).is_some(), "{sql} survived restart");
        }
        let a = s.lookup_exact("A").unwrap();
        let slice = s.disk_slice(a).expect("recovered demoted entry readable");
        let (result, columnar) = parse_slice(&slice);
        assert_eq!(*result, rs_coords(10));
        assert!(s.promote(a, result, columnar));
        drop(s);

        // Replay mode: lose the metadata snapshot, scan the slab alone.
        std::fs::remove_file(config.meta_path(0)).unwrap();
        let mut s = CacheStore::new(DescriptionKind::Array, None);
        s.attach_tier(&config, 0).unwrap();
        let outcome = s.recover_tier();
        assert_eq!(outcome.recovered, 3);
        for sql in ["A", "B", "C"] {
            assert!(s.lookup_exact(sql).is_some(), "{sql} survived bare replay");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tier_corrupt_slab_tail_is_counted_not_fatal() {
        let dir = tier_dir("corrupt");
        let config = TierConfig::new(&dir);
        {
            let mut s = CacheStore::new(DescriptionKind::Array, None);
            s.attach_tier(&config, 0).unwrap();
            s.insert("k", region(0.0, 10.0), rs_coords(10), false, "A", &coords())
                .unwrap();
            s.insert("k", region(20.0, 30.0), rs_coords(7), false, "B", &coords())
                .unwrap();
            assert_eq!(s.write_tier_meta().unwrap(), 2);
        }
        // Tear the last segment: truncate mid-payload, as a crash would.
        let slab_path = config.slab_path(0);
        let len = std::fs::metadata(&slab_path).unwrap().len();
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&slab_path)
            .unwrap();
        file.set_len(len - 10).unwrap();
        drop(file);

        let mut s = CacheStore::new(DescriptionKind::Array, None);
        s.attach_tier(&config, 0).unwrap();
        let outcome = s.recover_tier();
        assert_eq!(outcome.recovered, 1, "front segment survives the torn tail");
        assert!(outcome.corrupt >= 1, "damage is counted, not fatal");
        assert!(s.lookup_exact("A").is_some());
        assert_eq!(s.lookup_exact("B"), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
