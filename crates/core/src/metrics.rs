//! Per-query and per-trace metrics.
//!
//! The paper's two headline metrics (§4.1): **response time**, measured at
//! the browser emulator, and **cache efficiency** — "the percentage of the
//! result tuples that are served from the proxy cache to the total number
//! of result tuples of the query", averaged arithmetically over the trace.
//! The proxy additionally records the timing breakdown its servlet logged
//! ("the proxy servlet records timing information in each step of query
//! processing").

use serde::{Deserialize, Serialize};

/// How one query was ultimately answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Outcome {
    /// Served whole from one cached entry (exact match).
    Exact,
    /// Served by local evaluation over a containing entry.
    Contained,
    /// Region containment: cached parts + remainder, compaction applied.
    RegionContainment,
    /// General overlap: probe + remainder merge.
    Overlap,
    /// Forwarded to the origin (disjoint, inactive scheme, or fallback).
    Forwarded,
}

impl Outcome {
    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Exact => "exact",
            Outcome::Contained => "contained",
            Outcome::RegionContainment => "region-containment",
            Outcome::Overlap => "overlap",
            Outcome::Forwarded => "forwarded",
        }
    }
}

/// Everything recorded about one query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryMetrics {
    /// How the query was answered.
    pub outcome: Outcome,
    /// End-to-end response time: simulated origin/WAN cost plus measured
    /// proxy compute time.
    pub response_ms: f64,
    /// Simulated portion (origin + network).
    pub sim_ms: f64,
    /// Measured proxy compute portion.
    pub proxy_ms: f64,
    /// Cache-checking time within `proxy_ms`.
    pub check_ms: f64,
    /// Local evaluation + merge time within `proxy_ms`.
    pub local_ms: f64,
    /// Total result tuples returned to the client.
    pub rows_total: usize,
    /// Of those, tuples served from the proxy cache.
    pub rows_from_cache: usize,
    /// Whether this response piggybacked on another request's in-flight
    /// origin fetch (always `false` on the single-threaded proxy).
    pub coalesced: bool,
    /// Time spent waiting to acquire cache-shard locks, ms (always `0.0`
    /// on the single-threaded proxy).
    pub lock_wait_ms: f64,
    /// Cached rows the local evaluator tested against the query region
    /// (after micro-index pruning; zero for non-hit outcomes).
    pub rows_scanned: usize,
    /// Cached rows the per-entry micro-index skipped without testing
    /// (entry rows minus `rows_scanned`; zero for non-hit outcomes).
    pub rows_pruned: usize,
    /// Whether a cached entry that *should* have been locally evaluable
    /// was malformed (non-numeric coordinate cell) and the query fell
    /// back to the origin.
    pub local_fallback: bool,
    /// Whether this answer was served degraded: the origin was
    /// unreachable, so the proxy answered from cached data alone. For
    /// overlap relationships the answer is the cached *intersection* —
    /// a sound subset of the full answer, marked partial.
    pub degraded: bool,
    /// Whether any contributing cache entry was past its TTL deadline:
    /// served in the stale-while-revalidate window (a background
    /// refresh is on its way) or in the stale-if-error window (the
    /// origin was down and the expired entry was extended).
    pub stale: bool,
    /// Age of the oldest contributing cache entry, ms on the proxy's
    /// clock; `0` when no cached data contributed or lifecycle timing
    /// is off.
    pub entry_age_ms: f64,
    /// Whether the answer was served from the disk tier (a demoted
    /// entry's mmap'd slab segment rather than RAM).
    pub disk_hit: bool,
}

impl QueryMetrics {
    /// The paper's per-query cache efficiency. Empty results count as
    /// efficiency 1 when served from cache and 0 otherwise (an empty
    /// cached answer still saved the origin round trip).
    pub fn cache_efficiency(&self) -> f64 {
        if self.rows_total == 0 {
            return match self.outcome {
                Outcome::Exact | Outcome::Contained => 1.0,
                _ => 0.0,
            };
        }
        self.rows_from_cache as f64 / self.rows_total as f64
    }
}

/// Aggregate over a trace run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceReport {
    /// Number of queries.
    pub queries: usize,
    /// Arithmetic mean response time, ms.
    pub avg_response_ms: f64,
    /// Arithmetic mean cache efficiency (the paper's Table 1 metric).
    pub avg_cache_efficiency: f64,
    /// Mean cache-check time, ms.
    pub avg_check_ms: f64,
    /// Outcome counts: (exact, contained, region containment, overlap,
    /// forwarded).
    pub counts: [usize; 5],
    /// Queries answered by coalescing onto another request's origin
    /// flight (zero on single-threaded replays).
    pub coalesced: usize,
    /// Queries that hit a malformed cached entry (non-numeric coordinate
    /// cell) and fell back to the origin instead of local evaluation.
    pub local_fallbacks: usize,
    /// Total cached rows tested by local evaluation across the trace
    /// (after micro-index pruning).
    pub rows_scanned: usize,
    /// Total cached rows the micro-index pruned without testing.
    pub rows_pruned: usize,
    /// Queries answered degraded (from cache alone while the origin was
    /// unreachable).
    pub degraded_hits: usize,
    /// Rows served by degraded *partial* answers (overlap intersections
    /// that are sound subsets of the full answer).
    pub degraded_partial_rows: usize,
    /// Queries answered from expired entries (stale-while-revalidate or
    /// stale-if-error serving).
    pub stale_hits: usize,
    /// Queries answered from the disk tier (demoted entries served out
    /// of the mmap'd slab).
    pub disk_hits: usize,
    /// Median response time, ms (nearest-rank over the exact per-query
    /// values — unlike the runtime histograms, nothing is bucketed).
    pub p50_response_ms: f64,
    /// 90th-percentile response time, ms.
    pub p90_response_ms: f64,
    /// 99th-percentile response time, ms.
    pub p99_response_ms: f64,
    /// 99.9th-percentile response time, ms.
    pub p999_response_ms: f64,
}

/// Nearest-rank percentile of an ascending-sorted sample.
fn nearest_rank(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let target = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[target - 1]
}

impl TraceReport {
    /// Aggregates per-query metrics.
    pub fn from_metrics(metrics: &[QueryMetrics]) -> TraceReport {
        let n = metrics.len();
        if n == 0 {
            return TraceReport::default();
        }
        let mut report = TraceReport {
            queries: n,
            ..TraceReport::default()
        };
        for m in metrics {
            report.avg_response_ms += m.response_ms;
            report.avg_cache_efficiency += m.cache_efficiency();
            report.avg_check_ms += m.check_ms;
            report.coalesced += usize::from(m.coalesced);
            report.local_fallbacks += usize::from(m.local_fallback);
            report.rows_scanned += m.rows_scanned;
            report.rows_pruned += m.rows_pruned;
            report.stale_hits += usize::from(m.stale);
            report.disk_hits += usize::from(m.disk_hit);
            if m.degraded {
                // Degraded answers are only ever produced on the merge
                // paths (region containment / overlap), where they are
                // sound subsets of the full answer — all partial.
                report.degraded_hits += 1;
                report.degraded_partial_rows += m.rows_total;
            }
            let slot = match m.outcome {
                Outcome::Exact => 0,
                Outcome::Contained => 1,
                Outcome::RegionContainment => 2,
                Outcome::Overlap => 3,
                Outcome::Forwarded => 4,
            };
            report.counts[slot] += 1;
        }
        report.avg_response_ms /= n as f64;
        report.avg_cache_efficiency /= n as f64;
        report.avg_check_ms /= n as f64;
        let mut sorted: Vec<f64> = metrics.iter().map(|m| m.response_ms).collect();
        sorted.sort_by(f64::total_cmp);
        report.p50_response_ms = nearest_rank(&sorted, 0.50);
        report.p90_response_ms = nearest_rank(&sorted, 0.90);
        report.p99_response_ms = nearest_rank(&sorted, 0.99);
        report.p999_response_ms = nearest_rank(&sorted, 0.999);
        report
    }

    /// Fraction of queries fully answered by the cache
    /// (exact + contained), the paper's "completely answered" 51 %.
    pub fn full_hit_ratio(&self) -> f64 {
        if self.queries == 0 {
            return 0.0;
        }
        (self.counts[0] + self.counts[1]) as f64 / self.queries as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(outcome: Outcome, response: f64, total: usize, cached: usize) -> QueryMetrics {
        QueryMetrics {
            outcome,
            response_ms: response,
            sim_ms: response,
            proxy_ms: 0.0,
            check_ms: 1.0,
            local_ms: 0.0,
            rows_total: total,
            rows_from_cache: cached,
            coalesced: false,
            lock_wait_ms: 0.0,
            rows_scanned: 0,
            rows_pruned: 0,
            local_fallback: false,
            degraded: false,
            stale: false,
            entry_age_ms: 0.0,
            disk_hit: false,
        }
    }

    #[test]
    fn efficiency_definition() {
        assert_eq!(m(Outcome::Exact, 1.0, 100, 100).cache_efficiency(), 1.0);
        assert_eq!(m(Outcome::Overlap, 1.0, 100, 40).cache_efficiency(), 0.4);
        assert_eq!(m(Outcome::Forwarded, 1.0, 100, 0).cache_efficiency(), 0.0);
        // Empty results.
        assert_eq!(m(Outcome::Exact, 1.0, 0, 0).cache_efficiency(), 1.0);
        assert_eq!(m(Outcome::Forwarded, 1.0, 0, 0).cache_efficiency(), 0.0);
    }

    #[test]
    fn report_aggregates() {
        let metrics = vec![
            m(Outcome::Exact, 100.0, 10, 10),
            m(Outcome::Forwarded, 300.0, 10, 0),
            m(Outcome::Overlap, 200.0, 10, 5),
        ];
        let r = TraceReport::from_metrics(&metrics);
        assert_eq!(r.queries, 3);
        assert!((r.avg_response_ms - 200.0).abs() < 1e-9);
        assert!((r.avg_cache_efficiency - 0.5).abs() < 1e-9);
        assert_eq!(r.counts, [1, 0, 0, 1, 1]);
        assert!((r.full_hit_ratio() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn report_percentiles_are_nearest_rank() {
        let metrics: Vec<QueryMetrics> = (1..=1000)
            .map(|i| m(Outcome::Forwarded, i as f64, 1, 0))
            .collect();
        let r = TraceReport::from_metrics(&metrics);
        assert_eq!(r.p50_response_ms, 500.0);
        assert_eq!(r.p90_response_ms, 900.0);
        assert_eq!(r.p99_response_ms, 990.0);
        assert_eq!(r.p999_response_ms, 999.0);
        // A single-sample trace reports that sample at every quantile.
        let one = TraceReport::from_metrics(&[m(Outcome::Exact, 42.0, 1, 1)]);
        assert_eq!(one.p50_response_ms, 42.0);
        assert_eq!(one.p999_response_ms, 42.0);
        // Empty traces default to zero, not NaN.
        assert_eq!(TraceReport::default().p99_response_ms, 0.0);
    }

    #[test]
    fn fallbacks_are_observable() {
        let mut q = m(Outcome::Forwarded, 1.0, 10, 0);
        q.local_fallback = true;
        q.rows_scanned = 7;
        q.rows_pruned = 3;
        let r = TraceReport::from_metrics(&[q, m(Outcome::Exact, 1.0, 5, 5)]);
        assert_eq!(r.local_fallbacks, 1);
        assert_eq!(r.rows_scanned, 7);
        assert_eq!(r.rows_pruned, 3);
    }

    #[test]
    fn degraded_answers_are_observable() {
        let mut intersection = m(Outcome::Overlap, 1.0, 8, 8);
        intersection.degraded = true;
        let mut union = m(Outcome::RegionContainment, 1.0, 5, 5);
        union.degraded = true;
        let r = TraceReport::from_metrics(&[intersection, union, m(Outcome::Exact, 1.0, 5, 5)]);
        assert_eq!(r.degraded_hits, 2);
        assert_eq!(r.degraded_partial_rows, 13);
    }

    #[test]
    fn empty_report() {
        let r = TraceReport::from_metrics(&[]);
        assert_eq!(r.queries, 0);
        assert_eq!(r.full_hit_ratio(), 0.0);
    }
}
