//! The cache split into independently locked shards.
//!
//! Every cache operation the proxy performs is scoped to one residual
//! group: relationship classification, local evaluation, insertion and
//! region-containment compaction all stay inside
//! `BoundQuery::residual_key` (see [`crate::query::classify`]). That
//! makes the residual key a natural shard key — a whole group lives in
//! exactly one shard, so no request ever needs two shard locks, and
//! cross-template traffic never contends.

use crate::cache::{CacheStats, CacheStore};
use crate::config::ProxyConfig;
use crate::resilience::{Clock, SystemClock};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// `N` independently locked [`CacheStore`]s, keyed by residual key.
///
/// The configured byte capacity is divided evenly across shards, so the
/// total bound is preserved. A skewed workload can therefore evict
/// earlier than a single store of the same total capacity would — the
/// standard sharding trade-off; shard count is tunable where it
/// matters.
pub struct ShardedStore {
    shards: Vec<Mutex<CacheStore>>,
}

impl ShardedStore {
    /// Builds `shards` stores per `config` (at least one). A `Some`
    /// capacity is split evenly; `None` stays unbounded everywhere.
    pub fn new(config: &ProxyConfig, shards: usize) -> Self {
        Self::with_clock(config, shards, Arc::new(SystemClock))
    }

    /// [`Self::new`] with an injected clock for the shards' lifecycle
    /// timing. When the config's lifecycle is inert the shards stay
    /// clock-free — inserts are not stamped, nothing ever expires.
    pub fn with_clock(config: &ProxyConfig, shards: usize, clock: Arc<dyn Clock>) -> Self {
        let n = shards.max(1);
        let per_shard = config.capacity.map(|total| (total / n).max(1));
        let lifecycle = Arc::new(config.lifecycle.clone());
        let shards = (0..n)
            .map(|i| {
                let mut store = if config.lifecycle.is_active() {
                    CacheStore::with_lifecycle(
                        config.description,
                        per_shard,
                        config.replacement,
                        Arc::clone(&lifecycle),
                        Arc::clone(&clock),
                    )
                } else {
                    CacheStore::with_replacement(config.description, per_shard, config.replacement)
                };
                if let Some(tier) = &config.tier {
                    // A tier that fails to open (permissions, foreign
                    // file) degrades that shard to RAM-only rather
                    // than refusing to serve.
                    let _ = store.attach_tier(tier, i);
                }
                Mutex::new(store)
            })
            .collect();
        ShardedStore { shards }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard that owns `residual_key`. Deterministic across calls
    /// and threads (`DefaultHasher` with its fixed default keys).
    pub fn shard_index(&self, residual_key: &str) -> usize {
        let mut hasher = DefaultHasher::new();
        residual_key.hash(&mut hasher);
        (hasher.finish() % self.shards.len() as u64) as usize
    }

    /// Locks the shard owning `residual_key`, reporting how long the
    /// lock took to acquire (the contention signal surfaced in
    /// [`crate::runtime::RuntimeSnapshot::lock_wait_ms`]).
    pub fn lock(&self, residual_key: &str) -> (MutexGuard<'_, CacheStore>, Duration) {
        let shard = &self.shards[self.shard_index(residual_key)];
        let start = Instant::now();
        let guard = shard.lock().unwrap_or_else(|e| e.into_inner());
        (guard, start.elapsed())
    }

    /// Locks shard `index` directly (snapshot writer, epoch bumps —
    /// operations that walk every shard rather than one residual key).
    pub fn lock_shard(&self, index: usize) -> MutexGuard<'_, CacheStore> {
        self.shards[index].lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Statistics aggregated across all shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            let s = shard.lock().unwrap_or_else(|e| e.into_inner()).stats();
            total.entries += s.entries;
            total.bytes += s.bytes;
            total.evictions += s.evictions;
            total.compactions += s.compactions;
            total.expired += s.expired;
            total.epoch_invalidations += s.epoch_invalidations;
            total.disk_entries += s.disk_entries;
            total.slab_bytes += s.slab_bytes;
            total.demotions += s.demotions;
            total.promotions += s.promotions;
            total.slab_compactions += s.slab_compactions;
            total.slab_corrupt_segments += s.slab_corrupt_segments;
            total.tier_degraded += s.tier_degraded;
            total.tier_recoveries += s.tier_recoveries;
            total.slab_io_errors += s.slab_io_errors;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_geometry::{HyperRect, Region};
    use fp_skyserver::ResultSet;
    use fp_sqlmini::Value;

    fn rs(n: usize) -> ResultSet {
        ResultSet {
            columns: vec!["objID".into()],
            rows: (0..n).map(|i| vec![Value::Int(i as i64)]).collect(),
        }
    }

    fn region() -> Region {
        Region::Rect(HyperRect::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap())
    }

    #[test]
    fn shard_index_is_stable_and_in_range() {
        let store = ShardedStore::new(&ProxyConfig::default(), 8);
        for key in ["a", "b", "radial|cols", "spectro|top=5"] {
            let i = store.shard_index(key);
            assert_eq!(i, store.shard_index(key));
            assert!(i < store.shard_count());
        }
    }

    #[test]
    fn stats_aggregate_across_shards() {
        let store = ShardedStore::new(&ProxyConfig::default(), 4);
        // Insert under distinct residual keys; whichever shards they hash
        // to, the aggregate must see every entry.
        for (i, key) in ["k1", "k2", "k3"].iter().enumerate() {
            let (mut shard, _) = store.lock(key);
            shard.insert(key, region(), rs(2), false, &format!("SQL {i}"), &[]);
        }
        let stats = store.stats();
        assert_eq!(stats.entries, 3);
        assert!(stats.bytes > 0);
    }

    #[test]
    fn capacity_splits_across_shards() {
        // Total capacity holds the entry, but the per-shard slice
        // (total / 4) is one byte short: the insert must be rejected.
        let big = rs(50);
        let config = ProxyConfig::default().with_capacity(Some((big.xml_bytes() - 1) * 4));
        let store = ShardedStore::new(&config, 4);
        let (mut shard, _) = store.lock("k");
        assert!(shard
            .insert("k", region(), big, false, "BIG", &[])
            .is_none());
    }

    #[test]
    fn zero_shards_is_clamped_to_one() {
        let store = ShardedStore::new(&ProxyConfig::default(), 0);
        assert_eq!(store.shard_count(), 1);
        assert_eq!(store.shard_index("anything"), 0);
    }
}
