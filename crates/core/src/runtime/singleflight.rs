//! Single-flight coalescing of origin fetches.
//!
//! When many clients ask the same (or a subsumed) question at once, a
//! cold cache would send every one of them across the WAN. The flight
//! table makes the first such request the **leader**; everyone else
//! becomes a **follower** of its flight:
//!
//! * an *exact* follower (same canonical SQL) waits until the flight
//!   lands and adopts the leader's response;
//! * a *contained* follower (region inside the in-flight region, same
//!   residual group) waits until the flight lands, then retries the
//!   cache — the leader inserts its result **before** resolving the
//!   flight, so the retry finds a containing entry and takes the normal
//!   local-evaluation path.
//!
//! Either way at most one WAN fetch is issued. A leader whose fetch
//! fails publishes the **error** to its followers ([`FlightLease::fail`])
//! — exactly one origin attempt per failed flight, no retry storm. A
//! leader that panics publishes a synthetic `Unavailable` the same way.
//! Followers receiving an error must not lead a fresh flight for the
//! same query; they re-check the cache and try degraded serving, then
//! surface the error.
//!
//! ## Wakeup lists, not condvars
//!
//! A pending flight holds an explicit **wakeup list**: each follower
//! registers either its thread handle (the blocking path — it parks and
//! the leader unparks it) or an arbitrary callback
//! ([`FlightTicket::on_landing`] — the nonblocking path used by
//! event-loop edges that must not park a reactor thread). On landing the
//! leader swaps the state to `Done`, then drains the list *outside* the
//! state lock: threads are unparked, callbacks are invoked with a clone
//! of the landed result. A callback registered after landing fires
//! immediately on the registering thread. This keeps followers cheap —
//! no condvar broadcast storms — and lets a follower be something other
//! than a parked thread.
//!
//! Lock discipline: the flight-table lock is never held while a flight's
//! state lock is held, and neither is ever held across a wait, a
//! callback invocation, or an origin fetch.

use crate::origin::OriginError;
use crate::proxy::ProxyResponse;
use crate::ProxyError;
use fp_geometry::{Region, Relation};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// How a follower's query relates to the flight it joined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Coalesce {
    /// Same canonical SQL: the leader's response answers this request.
    Exact,
    /// Region contained in the in-flight region: once the leader has
    /// cached its result, a cache retry answers this request locally.
    Contained,
}

/// The landed result of a flight, as delivered to followers.
pub type FlightResult = Result<ProxyResponse, ProxyError>;

/// A follower's registration on a pending flight's wakeup list.
enum Waiter {
    /// A parked thread; the leader unparks it on landing.
    Thread(std::thread::Thread),
    /// A callback; the leader invokes it with the landed result.
    Callback(Box<dyn FnOnce(FlightResult) + Send>),
}

enum FlightState {
    /// In flight; the wakeup list of registered followers.
    Pending(Vec<Waiter>),
    Done(FlightResult),
}

struct Flight {
    sql: String,
    residual_key: String,
    region: Region,
    state: Mutex<FlightState>,
}

impl Flight {
    fn state(&self) -> MutexGuard<'_, FlightState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

struct Table {
    flights: HashMap<String, Arc<Flight>>,
    in_flight_peak: usize,
}

/// The flight table: at most one origin-bound flight per canonical SQL.
pub struct SingleFlight {
    table: Mutex<Table>,
}

impl Default for SingleFlight {
    fn default() -> Self {
        Self::new()
    }
}

impl SingleFlight {
    /// An empty table.
    pub fn new() -> Self {
        SingleFlight {
            table: Mutex::new(Table {
                flights: HashMap::new(),
                in_flight_peak: 0,
            }),
        }
    }

    fn table(&self) -> MutexGuard<'_, Table> {
        self.table.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Joins the flight covering this query, or registers a new one.
    ///
    /// `allow_contained` joins flights whose region contains `region`
    /// within the same residual group; pass `false` for schemes that
    /// cannot answer a query from a containing entry (passive caching).
    pub fn join(
        &self,
        sql: &str,
        residual_key: &str,
        region: &Region,
        allow_contained: bool,
    ) -> Joined<'_> {
        let mut table = self.table();
        if let Some(flight) = table.flights.get(sql) {
            return Joined::Follow(Coalesce::Exact, FlightTicket(Arc::clone(flight)));
        }
        if allow_contained {
            for flight in table.flights.values() {
                if flight.residual_key == residual_key
                    && matches!(
                        region.relate(&flight.region),
                        Relation::Equal | Relation::Inside
                    )
                {
                    return Joined::Follow(Coalesce::Contained, FlightTicket(Arc::clone(flight)));
                }
            }
        }
        let flight = Arc::new(Flight {
            sql: sql.to_string(),
            residual_key: residual_key.to_string(),
            region: region.clone(),
            state: Mutex::new(FlightState::Pending(Vec::new())),
        });
        table.flights.insert(sql.to_string(), Arc::clone(&flight));
        table.in_flight_peak = table.in_flight_peak.max(table.flights.len());
        Joined::Lead(FlightLease {
            table: self,
            flight,
            resolved: false,
        })
    }

    /// Peak number of simultaneously in-flight fetches so far.
    pub fn in_flight_peak(&self) -> usize {
        self.table().in_flight_peak
    }

    /// Flights currently pending (for tests and diagnostics).
    pub fn in_flight(&self) -> usize {
        self.table().flights.len()
    }
}

/// The result of [`SingleFlight::join`].
pub enum Joined<'a> {
    /// This request leads: fetch from the origin, then
    /// [`FlightLease::resolve`].
    Lead(FlightLease<'a>),
    /// This request follows an in-flight fetch: [`FlightTicket::wait`]
    /// or [`FlightTicket::on_landing`].
    Follow(Coalesce, FlightTicket),
}

/// The leader's obligation to land its flight.
///
/// Dropping the lease without [`FlightLease::resolve`] or
/// [`FlightLease::fail`] (a panic on the origin path) publishes a
/// synthetic `Unavailable` error so followers wake instead of hanging.
pub struct FlightLease<'a> {
    table: &'a SingleFlight,
    flight: Arc<Flight>,
    resolved: bool,
}

impl FlightLease<'_> {
    /// Lands the flight with the leader's response, waking every
    /// follower. Call only after the result has been inserted into the
    /// cache, so contained followers find it on retry.
    pub fn resolve(mut self, response: ProxyResponse) {
        self.finish(Ok(response));
    }

    /// Lands the flight with the leader's failure, publishing the error
    /// to every follower exactly once.
    pub fn fail(mut self, error: ProxyError) {
        self.finish(Err(error));
    }

    fn finish(&mut self, response: FlightResult) {
        self.resolved = true;
        // Deregister first (new arrivals start a fresh flight), then
        // publish the state; the two locks are never held together.
        self.table.table().flights.remove(&self.flight.sql);
        let previous = {
            let mut state = self.flight.state();
            std::mem::replace(&mut *state, FlightState::Done(response.clone()))
        };
        // Drain the wakeup list outside the state lock: callbacks may be
        // arbitrarily slow (an edge completion handler) and must not
        // serialize against followers still registering.
        if let FlightState::Pending(waiters) = previous {
            for waiter in waiters {
                match waiter {
                    Waiter::Thread(thread) => thread.unpark(),
                    Waiter::Callback(callback) => callback(response.clone()),
                }
            }
        }
    }
}

impl Drop for FlightLease<'_> {
    fn drop(&mut self) {
        if !self.resolved {
            self.finish(Err(ProxyError::Origin(OriginError::Unavailable(
                "flight leader aborted".into(),
            ))));
        }
    }
}

/// A follower's claim on an in-flight fetch.
pub struct FlightTicket(Arc<Flight>);

impl FlightTicket {
    /// Blocks until the flight lands. `Err` carries the leader's
    /// failure; the caller must not retry the origin (that would undo
    /// the coalescing) — it should attempt degraded serving from the
    /// cache and otherwise surface the error.
    pub fn wait(self) -> FlightResult {
        loop {
            {
                let mut state = self.0.state();
                match &mut *state {
                    FlightState::Done(response) => return response.clone(),
                    FlightState::Pending(waiters) => {
                        // Re-register on every iteration: a spurious
                        // park return may leave a stale entry behind,
                        // and a duplicate unpark is harmless.
                        waiters.push(Waiter::Thread(std::thread::current()));
                    }
                }
            }
            // The unpark token is sticky: if the leader drains the list
            // between the unlock above and this park, park returns
            // immediately instead of losing the wakeup.
            std::thread::park();
        }
    }

    /// Registers `callback` to run when the flight lands, without
    /// blocking. If the flight has already landed, the callback runs
    /// immediately on the current thread; otherwise it runs on the
    /// leader's thread as it drains the wakeup list.
    ///
    /// This is the nonblocking follower path for event-loop edges: a
    /// reactor must never park, so instead of [`FlightTicket::wait`] it
    /// hands the flight a completion that re-enqueues the suspended
    /// request.
    pub fn on_landing<F>(self, callback: F)
    where
        F: FnOnce(FlightResult) + Send + 'static,
    {
        // Option dance: the branches are exclusive, but the borrow
        // checker sees `callback` potentially moved twice.
        let mut callback = Some(callback);
        let landed = {
            let mut state = self.0.state();
            match &mut *state {
                FlightState::Done(response) => Some(response.clone()),
                FlightState::Pending(waiters) => {
                    let cb = callback.take().expect("callback registered once");
                    waiters.push(Waiter::Callback(Box::new(cb)));
                    None
                }
            }
        };
        if let Some(response) = landed {
            (callback.take().expect("callback not registered"))(response);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Outcome, QueryMetrics};
    use fp_geometry::HyperRect;
    use fp_skyserver::ResultSet;

    fn region(lo: f64, hi: f64) -> Region {
        Region::Rect(HyperRect::new(vec![lo, lo], vec![hi, hi]).unwrap())
    }

    fn response(rows: usize) -> ProxyResponse {
        ProxyResponse {
            result: std::sync::Arc::new(ResultSet {
                columns: vec!["objID".into()],
                rows: (0..rows)
                    .map(|i| vec![fp_sqlmini::Value::Int(i as i64)])
                    .collect(),
            }),
            metrics: QueryMetrics {
                outcome: Outcome::Forwarded,
                response_ms: 1.0,
                sim_ms: 1.0,
                proxy_ms: 0.0,
                check_ms: 0.0,
                local_ms: 0.0,
                rows_total: rows,
                rows_from_cache: 0,
                coalesced: false,
                lock_wait_ms: 0.0,
                rows_scanned: 0,
                rows_pruned: 0,
                local_fallback: false,
                degraded: false,
                stale: false,
                entry_age_ms: 0.0,
                disk_hit: false,
            },
        }
    }

    #[test]
    fn exact_follower_adopts_leader_response() {
        let sf = SingleFlight::new();
        let lease = match sf.join("SQL", "k", &region(0.0, 10.0), true) {
            Joined::Lead(lease) => lease,
            Joined::Follow(..) => panic!("first join must lead"),
        };
        let ticket = match sf.join("SQL", "k", &region(0.0, 10.0), true) {
            Joined::Follow(Coalesce::Exact, ticket) => ticket,
            _ => panic!("identical SQL must follow exactly"),
        };
        assert_eq!(sf.in_flight(), 1);
        lease.resolve(response(3));
        let adopted = ticket.wait().expect("resolved flight succeeds");
        assert_eq!(adopted.result.len(), 3);
        assert_eq!(sf.in_flight(), 0);
        assert_eq!(sf.in_flight_peak(), 1);
    }

    #[test]
    fn contained_region_follows_only_when_allowed() {
        let sf = SingleFlight::new();
        let _lease = match sf.join("BIG", "k", &region(0.0, 10.0), true) {
            Joined::Lead(lease) => lease,
            Joined::Follow(..) => panic!("first join must lead"),
        };
        // Subsumed region, same group: follows the big flight.
        match sf.join("SMALL", "k", &region(2.0, 4.0), true) {
            Joined::Follow(Coalesce::Contained, _) => {}
            _ => panic!("contained region must follow"),
        }
        // Same geometry but containment joining disabled: leads its own.
        match sf.join("SMALL", "k", &region(2.0, 4.0), false) {
            Joined::Lead(_) => {}
            Joined::Follow(..) => panic!("allow_contained=false must not coalesce"),
        }
        // Different residual group never coalesces by containment.
        match sf.join("OTHER", "other-group", &region(2.0, 4.0), true) {
            Joined::Lead(_) => {}
            Joined::Follow(..) => panic!("groups must stay isolated"),
        };
    }

    #[test]
    fn failed_leader_publishes_its_error_to_followers() {
        let sf = SingleFlight::new();
        let lease = match sf.join("SQL", "k", &region(0.0, 1.0), true) {
            Joined::Lead(lease) => lease,
            Joined::Follow(..) => panic!("first join must lead"),
        };
        let ticket = match sf.join("SQL", "k", &region(0.0, 1.0), true) {
            Joined::Follow(_, ticket) => ticket,
            Joined::Lead(_) => panic!("second join must follow"),
        };
        lease.fail(ProxyError::Origin(OriginError::Rejected("nope".into())));
        match ticket.wait() {
            Err(ProxyError::Origin(OriginError::Rejected(m))) => assert_eq!(m, "nope"),
            other => panic!("follower must see the leader's error, got {other:?}"),
        }
        // The failed flight no longer blocks new leaders.
        assert!(matches!(
            sf.join("SQL", "k", &region(0.0, 1.0), true),
            Joined::Lead(_)
        ));
    }

    #[test]
    fn dropped_lease_wakes_followers_with_unavailable() {
        let sf = SingleFlight::new();
        let lease = match sf.join("SQL", "k", &region(0.0, 1.0), true) {
            Joined::Lead(lease) => lease,
            Joined::Follow(..) => panic!("first join must lead"),
        };
        let ticket = match sf.join("SQL", "k", &region(0.0, 1.0), true) {
            Joined::Follow(_, ticket) => ticket,
            Joined::Lead(_) => panic!("second join must follow"),
        };
        drop(lease);
        assert!(
            matches!(
                ticket.wait(),
                Err(ProxyError::Origin(OriginError::Unavailable(_)))
            ),
            "an abandoned flight reads as origin-unavailable"
        );
    }

    #[test]
    fn peak_tracks_simultaneous_flights() {
        let sf = SingleFlight::new();
        let a = match sf.join("A", "k", &region(0.0, 1.0), false) {
            Joined::Lead(lease) => lease,
            Joined::Follow(..) => unreachable!(),
        };
        let b = match sf.join("B", "k", &region(5.0, 6.0), false) {
            Joined::Lead(lease) => lease,
            Joined::Follow(..) => unreachable!(),
        };
        a.resolve(response(1));
        b.resolve(response(1));
        assert_eq!(sf.in_flight_peak(), 2);
        assert_eq!(sf.in_flight(), 0);
    }

    #[test]
    fn callback_follower_fires_without_a_parked_thread() {
        let sf = SingleFlight::new();
        let lease = match sf.join("SQL", "k", &region(0.0, 1.0), true) {
            Joined::Lead(lease) => lease,
            Joined::Follow(..) => panic!("first join must lead"),
        };
        let ticket = match sf.join("SQL", "k", &region(0.0, 1.0), true) {
            Joined::Follow(_, ticket) => ticket,
            Joined::Lead(_) => panic!("second join must follow"),
        };
        let landed = Arc::new(Mutex::new(None));
        let sink = Arc::clone(&landed);
        ticket.on_landing(move |result| {
            *sink.lock().unwrap() = Some(result.map(|r| r.result.len()).map_err(|e| e.to_string()));
        });
        assert!(landed.lock().unwrap().is_none(), "must not fire early");
        lease.resolve(response(7));
        assert_eq!(
            *landed.lock().unwrap(),
            Some(Ok(7)),
            "leader must drain the callback on landing"
        );
    }

    #[test]
    fn callback_after_landing_fires_immediately() {
        let sf = SingleFlight::new();
        let lease = match sf.join("SQL", "k", &region(0.0, 1.0), true) {
            Joined::Lead(lease) => lease,
            Joined::Follow(..) => panic!("first join must lead"),
        };
        let ticket = match sf.join("SQL", "k", &region(0.0, 1.0), true) {
            Joined::Follow(_, ticket) => ticket,
            Joined::Lead(_) => panic!("second join must follow"),
        };
        lease.resolve(response(2));
        let landed = Arc::new(Mutex::new(None));
        let sink = Arc::clone(&landed);
        ticket.on_landing(move |result| {
            *sink.lock().unwrap() = Some(result.map(|r| r.result.len()).map_err(|e| e.to_string()));
        });
        assert_eq!(*landed.lock().unwrap(), Some(Ok(2)));
    }

    #[test]
    fn parked_and_callback_followers_both_land() {
        let sf = SingleFlight::new();
        let lease = match sf.join("SQL", "k", &region(0.0, 1.0), true) {
            Joined::Lead(lease) => lease,
            Joined::Follow(..) => panic!("first join must lead"),
        };
        let blocking = match sf.join("SQL", "k", &region(0.0, 1.0), true) {
            Joined::Follow(_, t) => t,
            Joined::Lead(_) => panic!("must follow"),
        };
        let async_side = match sf.join("SQL", "k", &region(0.0, 1.0), true) {
            Joined::Follow(_, t) => t,
            Joined::Lead(_) => panic!("must follow"),
        };
        let waiter = std::thread::spawn(move || blocking.wait());
        let landed = Arc::new(Mutex::new(None));
        let sink = Arc::clone(&landed);
        async_side.on_landing(move |result| {
            *sink.lock().unwrap() = Some(result.map(|r| r.result.len()).map_err(|e| e.to_string()));
        });
        // Give the blocking follower a moment to park.
        std::thread::sleep(std::time::Duration::from_millis(20));
        lease.resolve(response(4));
        let adopted = waiter.join().expect("waiter thread").expect("resolved");
        assert_eq!(adopted.result.len(), 4);
        assert_eq!(*landed.lock().unwrap(), Some(Ok(4)));
    }
}
