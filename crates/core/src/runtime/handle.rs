//! [`ProxyHandle`]: the shared, thread-safe proxy front.
//!
//! The handle serves the same decision procedure as
//! [`crate::proxy::FunctionProxy`], restructured into phases so no lock
//! is ever held across an origin fetch:
//!
//! 1. **Cache phase** (one shard lock): exact lookup, relationship
//!    classification, and — when possible — the complete answer (exact
//!    hit or local evaluation over a containing entry). Misses leave
//!    the phase with an origin plan: which query to send and what
//!    cached contribution to merge in.
//! 2. **Flight phase** (flight-table lock only): the request joins or
//!    leads the single flight for its canonical SQL. A leader re-runs
//!    the cache phase after registering its flight; together with
//!    leaders inserting results *before* resolving, that closes the
//!    race where a fetch lands between a miss and the join, so
//!    concurrent identical queries issue exactly one origin fetch.
//! 3. **Origin phase** (no locks): the leader executes its plan, takes
//!    the shard lock once more to insert/compact, resolves the flight.
//!
//! Followers either adopt the leader's response (exact) or retry the
//! cache phase once the flight lands (contained); a follower whose
//! flight lands without leaving a usable entry retries, bounded by
//! [`MAX_COALESCE_ATTEMPTS`], after which a request serves itself
//! without coalescing.
//!
//! **Failure path.** A leader whose fetch fails publishes the error to
//! its followers ([`FlightLease::fail`]) — exactly one origin attempt
//! per failed flight. Neither the leader nor any follower retries the
//! origin; each re-checks the cache and then attempts **degraded
//! serving**: for a transient failure
//! the proxy answers from cached data alone — region containment
//! serves the union of the subsumed entries, overlap serves the cached
//! intersection — marked `degraded` and never inserted into the cache
//! (a partial answer must not masquerade as a complete entry). Only
//! rejections and true disjoint misses surface the error.

use crate::cache::{
    entry_from_xml, entry_to_xml, CacheStats, CacheStore, ProfitEstimate, ProfitModel, SlabSlice,
};
use crate::config::{ProxyConfig, SchemeChoice};
use crate::lifecycle::snapshot::{read_snapshot_file, write_snapshot_file};
use crate::lifecycle::Freshness;
use crate::metrics::{Outcome, QueryMetrics};
use crate::observe::{Observer, OutcomeClass, PathClass, Phase as ObsPhase};
use crate::origin::Origin;
use crate::proxy::ProxyResponse;
use crate::query::{
    classify, classify_graded, eval_entry_region, merge_results, region_inside_predicate,
    remainder_query, EvalScratch, QueryStatus,
};
use crate::resilience::{Clock, ResilientOrigin, SystemClock};
use crate::runtime::shard::ShardedStore;
use crate::runtime::singleflight::{Coalesce, FlightLease, Joined, SingleFlight};
use crate::runtime::{RuntimeSnapshot, RuntimeStats};
use crate::schemes::Scheme;
use crate::template::{BoundQuery, TemplateManager};
use crate::ProxyError;
use fp_geometry::Region;
use fp_skyserver::{ColumnarRows, ResultSet};
use fp_sqlmini::{BinOp, Expr, Query, TableSource};
use fp_xmlite::Element;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

thread_local! {
    /// Per-thread evaluation buffers: the handle is `&self` across
    /// threads, so the scratch cannot live on the proxy itself.
    static SCRATCH: RefCell<EvalScratch> = RefCell::new(EvalScratch::default());
}

fn with_scratch<R>(f: impl FnOnce(&mut EvalScratch) -> R) -> R {
    SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

/// How many times a request retries after following a flight that
/// landed without helping it (failed leader, evicted entry) before it
/// serves itself without coalescing.
pub const MAX_COALESCE_ATTEMPTS: usize = 3;

/// A cheaply cloneable, thread-safe handle to one shared proxy.
///
/// All methods take `&self`; clones share the cache shards, the flight
/// table, and the runtime counters. This is the front the HTTP router
/// and the multi-client replayer use.
pub struct ProxyHandle {
    inner: Arc<Runtime>,
}

impl Clone for ProxyHandle {
    fn clone(&self) -> Self {
        ProxyHandle {
            inner: Arc::clone(&self.inner),
        }
    }
}

struct Runtime {
    manager: TemplateManager,
    store: ShardedStore,
    flights: SingleFlight,
    stats: RuntimeStats,
    config: ProxyConfig,
    origin: Arc<dyn Origin>,
    /// Set iff `config.resilience` is set; `origin` then points at this
    /// same decorator. Kept separately for snapshot access.
    resilient: Option<Arc<ResilientOrigin>>,
    /// The clock lifecycle timing and the snapshot schedule run on.
    clock: Arc<dyn Clock>,
    /// `config.lifecycle.is_active()`, hoisted off the hot path.
    lifecycle_active: bool,
    /// The live data-release epoch (monotone; starts at the config's,
    /// advanced by [`ProxyHandle::set_epoch`] and advertised epochs).
    current_epoch: AtomicU64,
    /// Canonical SQL of entries with a background refresh in flight —
    /// the dedup set behind "exactly one refresh per expired key".
    revalidating: Mutex<HashSet<String>>,
    /// Ids of demoted entries with a background promotion in flight —
    /// exactly one slab parse per entry however many disk hits land.
    promoting: Mutex<HashSet<u64>>,
    /// Live background threads (revalidations and promotions), joined
    /// by [`ProxyHandle::quiesce_revalidations`].
    reval_threads: Mutex<Vec<JoinHandle<()>>>,
    /// Snapshot schedule state; `None` when persistence is off.
    snap: Option<Mutex<SnapSched>>,
    /// The adaptive scheme selector; `Some` iff the config's
    /// `scheme_choice` is [`SchemeChoice::Adaptive`]. Consulted once
    /// per request and fed once per finished request.
    profit: Option<ProfitModel>,
    /// In-flight overlap remainder batches, keyed by residual key.
    /// While one request's remainder fetch is out, later overlap
    /// misses on the same key park their remainder queries here; the
    /// finishing leader answers the whole queue with a single combined
    /// origin round trip.
    remainder_batches: Mutex<HashMap<String, RemainderBatch>>,
    /// The observability hub: per-phase latency histograms and the
    /// sampled span recorder, shared with the resilience layer.
    observe: Arc<Observer>,
}

/// One in-flight overlap remainder batch: followers that missed on
/// the same residual key while the leading remainder fetch was out.
/// A shared residual key pins the template, the non-spatial bindings,
/// and the select list, so the queued queries differ only in their
/// spatial predicates — which is what makes OR-combining them sound.
struct RemainderBatch {
    waiters: Vec<BatchTicket>,
}

/// A parked follower: its own remainder query and query region, plus
/// the slot the leader fills with the shared combined result.
struct BatchTicket {
    query: Query,
    region: Region,
    slot: Arc<BatchSlot>,
}

/// What a batch leader hands each follower: the shared combined
/// result set and its simulated fetch cost.
type BatchResult = Result<(Arc<ResultSet>, f64), ProxyError>;

/// The rendezvous between a batch leader and one follower.
struct BatchSlot {
    ready: Mutex<Option<BatchResult>>,
    cv: Condvar,
}

impl BatchSlot {
    fn new() -> Arc<Self> {
        Arc::new(BatchSlot {
            ready: Mutex::new(None),
            cv: Condvar::new(),
        })
    }

    fn fill(&self, result: BatchResult) {
        *self.ready.lock().unwrap_or_else(|e| e.into_inner()) = Some(result);
        self.cv.notify_one();
    }

    fn wait(&self) -> BatchResult {
        let mut ready = self.ready.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(result) = ready.take() {
                return result;
            }
            ready = self.cv.wait(ready).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Synthesizes the one origin query answering every parked remainder.
///
/// A remainder query's spatial restriction is the table-valued function
/// call in its `FROM` clause, so OR-ing the waiters' `WHERE` clauses
/// under any single waiter's `FROM` would pin the candidate rows to
/// that waiter's region. Instead the combined query scans the joined
/// base table directly and carries each waiter's region as an explicit
/// predicate:
///
/// ```sql
/// SELECT … FROM <base table> <alias>
/// WHERE (inside(region_1) AND <remainder predicates_1>)
///    OR (inside(region_2) AND <remainder predicates_2>) …
/// ```
///
/// This is sound because [`region_inside_predicate`]'s closed
/// inequalities are exactly the function's declared region test (the
/// same equivalence the probe/remainder split already relies on), and
/// the shared residual key pins every non-spatial predicate. The
/// rewrite drops the function and its semijoin, so it only applies
/// when the query shape proves nothing else reads the function's rows:
/// one plain-table join over the registered coordinate alias, joined by
/// a single key equality, with every other column reference qualified
/// by that alias. Returns `None` otherwise.
fn combined_batch_query(bound: &BoundQuery, waiters: &[BatchTicket]) -> Option<Query> {
    let reg = &bound.reg;
    let first = &waiters[0].query;
    if !matches!(first.from, TableSource::Function { .. }) {
        return None;
    }
    let fn_binding = first.from.binding_name();
    let [join] = first.joins.as_slice() else {
        return None;
    };
    if !matches!(join.source, TableSource::Table { .. })
        || join.source.binding_name() != reg.coord_alias
        || !is_key_equijoin(&join.on, fn_binding, &reg.coord_alias)
    {
        return None;
    }
    let reads_only_alias = |e: &Expr| {
        let mut ok = true;
        e.walk(&mut |n| {
            if let Expr::Column { qualifier, .. } = n {
                ok &= qualifier.as_deref() == Some(reg.coord_alias.as_str());
            }
        });
        ok
    };
    let projectable = first.select.iter().all(|item| match item {
        fp_sqlmini::SelectItem::Wildcard => false,
        fp_sqlmini::SelectItem::QualifiedWildcard(a) => *a == reg.coord_alias,
        fp_sqlmini::SelectItem::Expr { expr, .. } => reads_only_alias(expr),
    });
    if !projectable || first.order_by.is_some() {
        return None;
    }
    for w in waiters {
        if !w.query.where_clause.iter().all(&reads_only_alias) {
            return None;
        }
    }

    let mut combined = first.clone();
    combined.from = join.source.clone();
    combined.joins.clear();
    let mut pred: Option<Expr> = None;
    for w in waiters {
        let inside = region_inside_predicate(&w.region, &reg.coord_alias, &reg.coord_columns);
        let branch = match &w.query.where_clause {
            Some(clause) => Expr::binary(BinOp::And, inside, clause.clone()),
            None => inside,
        };
        pred = Some(match pred {
            Some(acc) => Expr::binary(BinOp::Or, acc, branch),
            None => branch,
        });
    }
    combined.where_clause = pred;
    Some(combined)
}

/// Whether `on` is exactly `<fn_binding>.k = <alias>.k` (either order):
/// the key semijoin that restricting the base table to the query region
/// replaces.
fn is_key_equijoin(on: &Expr, fn_binding: &str, alias: &str) -> bool {
    let Expr::Binary {
        op: BinOp::Eq,
        left,
        right,
    } = on
    else {
        return false;
    };
    let (
        Expr::Column {
            qualifier: Some(lq),
            name: ln,
        },
        Expr::Column {
            qualifier: Some(rq),
            name: rn,
        },
    ) = (left.as_ref(), right.as_ref())
    else {
        return false;
    };
    ln == rn && ((lq == fn_binding && rq == alias) || (lq == alias && rq == fn_binding))
}

/// Mutable snapshot-scheduler state (behind a `try_lock` so the serve
/// path never blocks on a concurrent snapshot pass).
struct SnapSched {
    /// Next virtual-clock instant a snapshot pass is due.
    next_due: Instant,
    /// Per-shard store generation at its last written snapshot; a shard
    /// whose generation is unchanged is skipped (incremental writes).
    written_gens: Vec<u64>,
}

/// Lifecycle facts about the cached data behind one response, captured
/// under the shard lock and applied to the metrics after serving.
#[derive(Clone, Default)]
struct ServeLife {
    /// Any contributing entry was past its TTL deadline.
    stale: bool,
    /// Age of the oldest contributing entry, ms.
    age_ms: f64,
    /// Canonical SQL to refresh in the background (stale exact or
    /// contained hits on the healthy path).
    revalidate: Option<String>,
}

impl ServeLife {
    /// Folds another contributing entry's facts in (merge paths).
    fn absorb(&mut self, other: &ServeLife) {
        self.stale |= other.stale;
        self.age_ms = self.age_ms.max(other.age_ms);
    }
}

/// Wall-clock bookkeeping for one request, accumulated across phases.
struct Timing {
    start: Instant,
    check_ms: f64,
    local_ms: f64,
    lock_wait_ms: f64,
}

impl Timing {
    fn begin() -> Self {
        Timing {
            start: Instant::now(),
            check_ms: 0.0,
            local_ms: 0.0,
            lock_wait_ms: 0.0,
        }
    }
}

/// A response served as pre-assembled XML bytes. On the columnar hot
/// paths (exact and contained hits) the body is copied out of the
/// entry's pre-serialized row slab — no tuple materialization, no XML
/// re-serialization. Byte-identical to serializing the row response.
#[derive(Debug, Clone)]
pub struct XmlResponse {
    /// The complete `<ResultSet>` document.
    pub body: Vec<u8>,
    /// The same metrics a row response would carry.
    pub metrics: QueryMetrics,
}

/// What the cache phase decided (after off-lock local evaluation).
enum Phase {
    /// Fully answered from the cache.
    Served(ProxyResponse),
    /// Origin work is needed; here is the plan.
    Origin(Box<OriginPlan>),
}

/// What the shard-lock window itself decided. Contained hits leave the
/// lock with `Arc` snapshots of the entry; the actual region selection
/// runs after the lock is released, so a large scan never serializes
/// other requests on the same shard.
enum LockedPhase {
    /// Exact hit: the entry's shared result (and columnar form, for
    /// byte-level serving).
    Exact {
        result: Arc<ResultSet>,
        columnar: Option<Arc<ColumnarRows>>,
        sim_ms: f64,
        life: ServeLife,
    },
    /// A containing entry was found; evaluate off-lock.
    Contained(Box<ContainedPlan>),
    /// The matching entry lives on the disk tier; serve it from the
    /// mmap'd slab segment off-lock.
    Disk(Box<DiskPlan>),
    /// Origin work is needed; here is the plan.
    Origin(Box<OriginPlan>),
}

/// A demoted entry's serve plan, captured under the shard lock. The
/// slice pins the mmap (not the store), so assembly — splicing the
/// entry's pre-serialized row bytes straight out of the page cache —
/// runs after the lock is released. The resident skeleton does the row
/// selection; the payload bytes are never copied until they reach the
/// response body.
struct DiskPlan {
    id: u64,
    residual_key: Arc<str>,
    slice: SlabSlice,
    skeleton: Arc<ColumnarRows>,
    /// Total rows in the demoted entry (exact hits serve them all).
    rows: usize,
    /// `true` = exact hit; `false` = contained (select then assemble).
    exact: bool,
    sim_ms: f64,
    life: ServeLife,
}

/// `Arc` snapshots of a containing entry, captured under the shard lock.
/// Entries are immutable once inserted, so the snapshot stays valid even
/// if the entry is evicted while we evaluate.
struct ContainedPlan {
    result: Arc<ResultSet>,
    columnar: Option<Arc<ColumnarRows>>,
    /// Region dims → result columns; `None` = the entry cannot map the
    /// template's coordinate columns (treated like a malformed entry).
    coord_idx: Option<Vec<usize>>,
    sim_ms: f64,
    life: ServeLife,
}

/// One probed entry in a merge plan: its shared result, its columnar
/// form, and — on the overlap path — the coordinate mapping to filter
/// it by. Filtering happens off-lock in [`ProxyHandle::execute_plan`].
struct ProbePart {
    result: Arc<ResultSet>,
    columnar: Option<Arc<ColumnarRows>>,
    /// `Some` = filter to the query region (overlap probes); `None` =
    /// contributes whole (region containment).
    filter_idx: Option<Vec<usize>>,
    /// Lifecycle facts for this entry alone; folded into the response
    /// only when the part contributes rows to the served answer.
    life: ServeLife,
}

/// Everything a leader needs to finish a request off-lock: the query to
/// send, `Arc` snapshots of the probed entries, and the entries to
/// compact afterwards.
struct OriginPlan {
    query: Query,
    is_remainder: bool,
    /// Probed entries whose rows merge into the response.
    probe_parts: Vec<ProbePart>,
    /// Simulated cost of reading the probed entries.
    probe_sim_ms: f64,
    /// Entries subsumed by the merged result (compacted after insert).
    compact_ids: Vec<u64>,
    outcome: Outcome,
    /// Whether this plan replaced a local evaluation that hit a
    /// malformed cached entry.
    local_fallback: bool,
    /// Lifecycle facts about the probed entries (merge paths can draw
    /// on stale-but-serveable parts).
    life: ServeLife,
}

impl OriginPlan {
    fn forward(bound: &BoundQuery, compact_ids: Vec<u64>) -> Box<Self> {
        Box::new(OriginPlan {
            query: bound.query.clone(),
            is_remainder: false,
            probe_parts: Vec::new(),
            probe_sim_ms: 0.0,
            compact_ids,
            outcome: Outcome::Forwarded,
            local_fallback: false,
            life: ServeLife::default(),
        })
    }

    fn forward_fallback(bound: &BoundQuery) -> Box<Self> {
        let mut plan = Self::forward(bound, Vec::new());
        plan.local_fallback = true;
        plan
    }
}

impl ProxyHandle {
    /// Builds a handle with one cache shard per available CPU (clamped
    /// to 64).
    pub fn new(manager: TemplateManager, origin: Arc<dyn Origin>, config: ProxyConfig) -> Self {
        let shards = std::thread::available_parallelism().map_or(8, |n| n.get().min(64));
        Self::with_shards(manager, origin, config, shards)
    }

    /// Builds a handle with an explicit shard count (at least one).
    pub fn with_shards(
        manager: TemplateManager,
        origin: Arc<dyn Origin>,
        config: ProxyConfig,
        shards: usize,
    ) -> Self {
        Self::build(manager, origin, config, shards, Arc::new(SystemClock))
    }

    /// [`ProxyHandle::with_shards`] with an injected clock for the
    /// resilience layer (deadlines, backoff, breaker cooldowns) — the
    /// constructor deterministic tests and the chaos harness use. The
    /// clock is inert unless `config.resilience` is set.
    pub fn with_shards_clocked(
        manager: TemplateManager,
        origin: Arc<dyn Origin>,
        config: ProxyConfig,
        shards: usize,
        clock: Arc<dyn Clock>,
    ) -> Self {
        Self::build(manager, origin, config, shards, clock)
    }

    fn build(
        manager: TemplateManager,
        origin: Arc<dyn Origin>,
        config: ProxyConfig,
        shards: usize,
        clock: Arc<dyn Clock>,
    ) -> Self {
        let store = ShardedStore::with_clock(&config, shards, Arc::clone(&clock));
        let observe = Arc::new(Observer::new(&config.observe));
        let (origin, resilient) = match &config.resilience {
            Some(policy) => {
                let decorated = Arc::new(
                    ResilientOrigin::with_clock(origin, policy.clone(), Arc::clone(&clock))
                        .with_observer(Arc::clone(&observe)),
                );
                (Arc::clone(&decorated) as Arc<dyn Origin>, Some(decorated))
            }
            None => (origin, None),
        };
        let snap = config.lifecycle.snapshot.as_ref().map(|policy| {
            Mutex::new(SnapSched {
                next_due: clock.now() + policy.interval,
                written_gens: vec![0; store.shard_count()],
            })
        });
        let snapshot_dir = config.lifecycle.snapshot.as_ref().map(|p| p.dir.clone());
        let profit = match config.scheme_choice {
            SchemeChoice::Adaptive(params) => Some(ProfitModel::new(params)),
            SchemeChoice::Fixed(_) => None,
        };
        let handle = ProxyHandle {
            inner: Arc::new(Runtime {
                manager,
                store,
                flights: SingleFlight::new(),
                stats: RuntimeStats::default(),
                origin,
                resilient,
                lifecycle_active: config.lifecycle.is_active(),
                current_epoch: AtomicU64::new(config.lifecycle.epoch),
                revalidating: Mutex::new(HashSet::new()),
                promoting: Mutex::new(HashSet::new()),
                reval_threads: Mutex::new(Vec::new()),
                snap,
                profit,
                remainder_batches: Mutex::new(HashMap::new()),
                observe,
                clock,
                config,
            }),
        };
        // Tier recovery first: the slab already holds full payloads, so
        // a legacy `.fpsnap` pass afterwards can only refine (same-SQL
        // replacement keeps the later insert).
        if handle.inner.config.tier.is_some() {
            handle.recover_tier();
        }
        if let Some(dir) = snapshot_dir {
            handle.recover_from(&dir);
        }
        handle
    }

    /// Startup recovery of the disk tier: every shard replays its slab
    /// (CRC-verified, front-recoverable) and applies its warm-restart
    /// metadata snapshot when one exists. Corrupt segments are counted,
    /// never fatal.
    fn recover_tier(&self) {
        let _trace = self.inner.observe.begin_trace();
        let recover_start = Instant::now();
        let mut recovered = 0usize;
        let mut corrupt = 0usize;
        for i in 0..self.inner.store.shard_count() {
            let outcome = self.inner.store.lock_shard(i).recover_tier();
            recovered += outcome.recovered;
            corrupt += outcome.corrupt;
        }
        if recovered > 0 {
            self.inner.stats.note_recovered_entries(recovered);
        }
        if corrupt > 0 {
            self.inner.stats.note_snapshot_corrupt(corrupt);
        }
        let obs = &self.inner.observe;
        obs.record_phase(
            ObsPhase::SnapshotRecover,
            PathClass::Background,
            ms_since(recover_start),
        );
        obs.span(
            "tier.recover",
            "lifecycle",
            recover_start,
            recover_start.elapsed(),
            || Some(format!("entries={recovered}")),
        );
    }

    /// The template registry.
    pub fn manager(&self) -> &TemplateManager {
        &self.inner.manager
    }

    /// The active configuration.
    pub fn config(&self) -> &ProxyConfig {
        &self.inner.config
    }

    /// Number of cache shards.
    pub fn shard_count(&self) -> usize {
        self.inner.store.shard_count()
    }

    /// Cache statistics aggregated across shards.
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.store.stats()
    }

    /// A snapshot of the runtime's concurrency counters, merged with
    /// the resilience layer's (when one is configured).
    pub fn runtime_stats(&self) -> RuntimeSnapshot {
        let mut snapshot = self.inner.stats.snapshot(
            self.inner.flights.in_flight_peak(),
            self.inner.store.shard_count(),
        );
        if let Some(resilient) = &self.inner.resilient {
            let r = resilient.snapshot();
            snapshot.origin_timeouts = r.timeouts;
            snapshot.origin_retries = r.retries;
            snapshot.origin_fast_fails = r.fast_fails;
            snapshot.breaker_opens = r.breaker_opens;
            snapshot.breaker_state = r.breaker_state;
            snapshot.breaker_retry_after_ms = r.breaker_retry_after_ms;
            snapshot.origin_backoff_hint_ms = r.backoff_hint_ms;
        }
        let cache = self.inner.store.stats();
        snapshot.epoch_invalidations = cache.epoch_invalidations;
        snapshot.entries_expired = cache.expired;
        snapshot.disk_entries = cache.disk_entries;
        snapshot.slab_bytes = cache.slab_bytes;
        snapshot.demotions = cache.demotions;
        snapshot.promotions = cache.promotions;
        snapshot.slab_compactions = cache.slab_compactions;
        snapshot.slab_corrupt_segments = cache.slab_corrupt_segments;
        snapshot.tier_degraded = cache.tier_degraded;
        snapshot.tier_recoveries = cache.tier_recoveries;
        snapshot.slab_io_errors = cache.slab_io_errors;
        let obs = &self.inner.observe;
        snapshot.request_latency = obs.request_summary();
        snapshot.hit_latency = obs.hit_summary();
        snapshot.origin_fetch_latency = obs.origin_fetch_summary();
        if let Some(profit) = &self.inner.profit {
            snapshot.scheme_switches = profit.switches();
            snapshot.adaptive_templates = profit.templates_tracked();
        }
        snapshot
    }

    /// The adaptive profit model's current estimate for `template`.
    /// `None` when the runtime is fixed-scheme or the template has not
    /// been observed yet.
    pub fn profit_estimate(&self, template: &str) -> Option<ProfitEstimate> {
        self.inner.profit.as_ref()?.estimate(template)
    }

    /// The scheme this request serves under: the configured scheme,
    /// or the profit model's current per-template choice when the
    /// config asked for adaptive selection. Resolved once per request
    /// so one request never straddles a scheme switch.
    fn effective_scheme(&self, bound: &BoundQuery) -> Scheme {
        match &self.inner.profit {
            Some(profit) => profit.scheme_for(&bound.reg.template.name),
            None => self.inner.config.scheme,
        }
    }

    /// End-of-request adaptive accounting: tally the serve under the
    /// scheme that produced it and feed the profit model's estimates.
    fn note_served(&self, template: &str, scheme: Scheme, metrics: &QueryMetrics) {
        self.inner.stats.note_scheme_serve(scheme);
        if let Some(profit) = &self.inner.profit {
            profit.observe(template, metrics);
        }
    }

    /// The observe layer behind this handle: per-phase and per-outcome
    /// latency histograms plus the sampled span recorder.
    pub fn observer(&self) -> &Observer {
        &self.inner.observe
    }

    /// An owned, shareable handle to the observe layer, for subsystems
    /// (the edge reactor, worker pools) that record phases from threads
    /// that outlive a single request.
    pub fn observer_shared(&self) -> Arc<Observer> {
        Arc::clone(&self.inner.observe)
    }

    /// The `Retry-After` hint (whole seconds, ≥ 1) an admission-control
    /// layer should shed with while the origin circuit breaker is open;
    /// `None` when the breaker is closed, half-open, or resilience is
    /// not configured. Cheap enough for a per-request probe — one
    /// atomic-snapshot read, no locks.
    pub fn breaker_shed_hint(&self) -> Option<u64> {
        let r = self.inner.resilient.as_ref()?.snapshot();
        if r.breaker_state == "open" {
            Some(r.breaker_retry_after_ms.div_ceil(1000).max(1))
        } else {
            None
        }
    }

    /// The full `/metrics` payload in Prometheus text exposition format
    /// (version 0.0.4): runtime counters and gauges followed by every
    /// latency histogram family.
    pub fn metrics_text(&self) -> String {
        let mut out = self.runtime_stats().render_prometheus();
        out.push_str(&self.inner.observe.render_prometheus());
        out
    }

    /// Counts a cluster peer-cache probe issued by this node's serving
    /// path (`hit` when the remote cache answered it). Called by the
    /// cluster router, which owns the probe; the handle only keeps the
    /// per-node books.
    pub fn note_peer_probe(&self, hit: bool) {
        self.inner.stats.note_peer_probe(hit);
    }

    /// Counts a peer probe that failed transport after its retries and
    /// fell through to the local origin path.
    pub fn note_peer_probe_failure(&self) {
        self.inner.stats.note_peer_probe_failure();
    }

    /// Buffered trace spans as a chrome://tracing JSON document.
    pub fn trace_chrome_json(&self) -> String {
        self.inner.observe.spans().chrome_json()
    }

    /// Buffered trace spans as JSON Lines (one span object per line).
    pub fn trace_jsonl(&self) -> String {
        self.inner.observe.spans().jsonl()
    }

    /// The `Retry-After` hint (whole seconds, ≥ 1) a client should be
    /// given for `error`, or `None` when a retry is pointless (the
    /// error is not transient). Prefers the breaker's actual
    /// remaining-open time, then the error's own hint, then the
    /// resilience layer's next backoff delay — so a transient failure
    /// carries an honest nonzero hint even while the breaker is still
    /// closed (a bare 503 used to be the answer in that window).
    pub fn retry_after_secs(&self, error: &ProxyError) -> Option<u64> {
        let ProxyError::Origin(e) = error else {
            return None;
        };
        if !e.is_transient() {
            return None;
        }
        let stats = self.runtime_stats();
        let ms = if stats.breaker_retry_after_ms > 0 {
            stats.breaker_retry_after_ms
        } else if let Some(hint) = e.retry_after() {
            hint.as_millis().try_into().unwrap_or(u64::MAX)
        } else if stats.origin_backoff_hint_ms > 0 {
            stats.origin_backoff_hint_ms
        } else {
            1000
        };
        Some(ms.div_ceil(1000).max(1))
    }

    /// The live data-release epoch new cache entries are stamped with.
    pub fn current_epoch(&self) -> u64 {
        self.inner.current_epoch.load(Ordering::SeqCst)
    }

    /// Advances the proxy to data-release `epoch`, atomically retiring
    /// every cache entry stamped with an older one (shard by shard, so
    /// the serve path is never blocked behind one global pause). Returns
    /// how many entries were retired; a non-advancing epoch is a no-op.
    pub fn set_epoch(&self, epoch: u64) -> usize {
        let prev = self.inner.current_epoch.fetch_max(epoch, Ordering::SeqCst);
        if epoch <= prev {
            return 0;
        }
        let mut retired = 0;
        for i in 0..self.inner.store.shard_count() {
            retired += self.inner.store.lock_shard(i).bump_epoch(epoch);
        }
        retired
    }

    /// Blocks until every background revalidation spawned so far has
    /// finished — the deterministic-test barrier ("exactly one refresh
    /// per expired key" is only countable once the refreshes landed).
    pub fn quiesce_revalidations(&self) {
        loop {
            let threads: Vec<JoinHandle<()>> = {
                let mut guard = self
                    .inner
                    .reval_threads
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                std::mem::take(&mut *guard)
            };
            if threads.is_empty() {
                return;
            }
            for t in threads {
                let _ = t.join();
            }
        }
    }

    /// Serves an HTML-form request; see
    /// [`crate::proxy::FunctionProxy::handle_form`].
    ///
    /// # Errors
    /// Propagates resolution failures and origin errors.
    pub fn handle_form(
        &self,
        path: &str,
        fields: &[(String, String)],
    ) -> Result<ProxyResponse, ProxyError> {
        let bound = self.inner.manager.resolve_form(path, fields)?;
        self.handle_bound(bound)
    }

    /// Serves a raw SQL request; see
    /// [`crate::proxy::FunctionProxy::handle_sql`].
    ///
    /// # Errors
    /// Propagates resolution failures and origin errors.
    pub fn handle_sql(&self, sql: &str) -> Result<ProxyResponse, ProxyError> {
        match self.inner.manager.resolve_sql(sql) {
            Some(bound) => self.handle_bound(bound?),
            None => {
                let _trace = self.inner.observe.begin_trace();
                let started = Instant::now();
                let response = self.forward_raw_sql(sql);
                self.observe_request(started, response.as_ref().ok().map(|r| &r.metrics));
                response
            }
        }
    }

    /// The unregistered-SQL path: parse and forward, no cache
    /// interaction (there is no template, so no region to reason about).
    fn forward_raw_sql(&self, sql: &str) -> Result<ProxyResponse, ProxyError> {
        self.inner.stats.note_request();
        let query =
            fp_sqlmini::parse_query(sql).map_err(|e| ProxyError::BadRequest(e.to_string()))?;
        let timing = Timing::begin();
        let (result, sim_ms) = self.fetch(&query, false, PathClass::Miss)?;
        Ok(self.respond(
            Arc::new(result),
            Outcome::Forwarded,
            0,
            sim_ms,
            &timing,
            false,
        ))
    }

    /// Serves an already-resolved query from any thread.
    ///
    /// # Errors
    /// Propagates origin errors; cache-side failures fall back to
    /// forwarding instead of erroring.
    pub fn handle_bound(&self, bound: BoundQuery) -> Result<ProxyResponse, ProxyError> {
        let _trace = self.inner.observe.begin_trace();
        let started = Instant::now();
        let reg = Arc::clone(&bound.reg);
        let scheme = self.effective_scheme(&bound);
        let response = self.handle_bound_inner(bound, scheme);
        if let Ok(r) = &response {
            self.note_served(&reg.template.name, scheme, &r.metrics);
        }
        self.observe_request(started, response.as_ref().ok().map(|r| &r.metrics));
        self.maybe_snapshot();
        response
    }

    /// End-of-request observe recording: fold the request's accumulated
    /// timing segments into the per-phase histograms, classify the
    /// outcome, and close the root span. `None` metrics = the request
    /// errored; only the root span is recorded then (failure counters
    /// live in [`RuntimeStats`] and the resilience layer).
    ///
    /// Phase segments record only when the phase actually ran — folding
    /// in zero-length segments for phases a path never touched would
    /// drown the distributions in zeros. The outcome histogram records
    /// `proxy_ms` (measured proxy-side time), not `response_ms`, which
    /// mixes in simulated WAN cost.
    fn observe_request(&self, started: Instant, metrics: Option<&QueryMetrics>) {
        let obs = &self.inner.observe;
        let Some(m) = metrics else {
            obs.span("request", "proxy", started, started.elapsed(), || {
                Some("error".into())
            });
            return;
        };
        let path = if matches!(m.outcome, Outcome::Exact | Outcome::Contained) {
            PathClass::Hit
        } else {
            PathClass::Miss
        };
        if m.check_ms > 0.0 {
            obs.record_phase(ObsPhase::Classify, path, m.check_ms);
        }
        if m.local_ms > 0.0 {
            obs.record_phase(ObsPhase::LocalEval, path, m.local_ms);
        }
        if m.lock_wait_ms > 0.0 {
            obs.record_phase(ObsPhase::LockWait, path, m.lock_wait_ms);
        }
        let class = OutcomeClass::of(m.outcome, m.degraded, m.stale);
        obs.record_outcome(class, m.proxy_ms);
        obs.span("request", "proxy", started, started.elapsed(), || {
            Some(class.label().to_string())
        });
    }

    fn handle_bound_inner(
        &self,
        bound: BoundQuery,
        scheme: Scheme,
    ) -> Result<ProxyResponse, ProxyError> {
        self.inner.stats.note_request();
        match scheme {
            Scheme::NoCache => {
                let timing = Timing::begin();
                let (result, sim_ms) = self.fetch(&bound.query, false, PathClass::Miss)?;
                Ok(self.respond(
                    Arc::new(result),
                    Outcome::Forwarded,
                    0,
                    sim_ms,
                    &timing,
                    false,
                ))
            }
            _ => self.serve_caching(bound, scheme),
        }
    }

    /// Serves an HTML-form request straight to response bytes. Cache
    /// hits (exact and contained) copy pre-serialized XML out of the
    /// entry's columnar slab without materializing tuples; every other
    /// path serializes the row response. The body is byte-identical to
    /// serializing [`ProxyHandle::handle_form`]'s result.
    ///
    /// # Errors
    /// Propagates resolution failures and origin errors.
    pub fn handle_form_xml(
        &self,
        path: &str,
        fields: &[(String, String)],
    ) -> Result<XmlResponse, ProxyError> {
        let bound = self.inner.manager.resolve_form(path, fields)?;
        self.serve_xml(bound)
    }

    /// [`ProxyHandle::handle_sql`], served straight to response bytes.
    ///
    /// # Errors
    /// Propagates resolution failures and origin errors.
    pub fn handle_sql_xml(&self, sql: &str) -> Result<XmlResponse, ProxyError> {
        match self.inner.manager.resolve_sql(sql) {
            Some(bound) => self.serve_xml(bound?),
            None => {
                let _trace = self.inner.observe.begin_trace();
                let started = Instant::now();
                let response = self
                    .forward_raw_sql(sql)
                    .map(|response| self.xml_from_rows(response));
                self.observe_request(started, response.as_ref().ok().map(|r| &r.metrics));
                response
            }
        }
    }

    /// Serializes a row response into response bytes, timing the
    /// serialization into the observe layer (the non-columnar paths —
    /// the columnar hot paths time their slab assembly at the site).
    fn xml_from_rows(&self, response: ProxyResponse) -> XmlResponse {
        let ser_start = Instant::now();
        let body = response.result.to_xml_string().into_bytes();
        let path = if matches!(
            response.metrics.outcome,
            Outcome::Exact | Outcome::Contained
        ) {
            PathClass::Hit
        } else {
            PathClass::Miss
        };
        let obs = &self.inner.observe;
        obs.record_phase(ObsPhase::Serialize, path, ms_since(ser_start));
        obs.span("serialize", "serve", ser_start, ser_start.elapsed(), || {
            None
        });
        XmlResponse {
            body,
            metrics: response.metrics,
        }
    }

    /// The byte-serving front: try the hot paths (exact / contained hit
    /// assembled from the columnar slab), fall back to the ordinary row
    /// pipeline plus serialization for everything else.
    fn serve_xml(&self, bound: BoundQuery) -> Result<XmlResponse, ProxyError> {
        let _trace = self.inner.observe.begin_trace();
        let started = Instant::now();
        let reg = Arc::clone(&bound.reg);
        let scheme = self.effective_scheme(&bound);
        let response = self.serve_xml_inner(bound, scheme);
        if let Ok(r) = &response {
            self.note_served(&reg.template.name, scheme, &r.metrics);
        }
        self.observe_request(started, response.as_ref().ok().map(|r| &r.metrics));
        self.maybe_snapshot();
        response
    }

    fn serve_xml_inner(
        &self,
        bound: BoundQuery,
        scheme: Scheme,
    ) -> Result<XmlResponse, ProxyError> {
        self.inner.stats.note_request();
        if scheme == Scheme::NoCache {
            let timing = Timing::begin();
            let (result, sim_ms) = self.fetch(&bound.query, false, PathClass::Miss)?;
            let response = self.respond(
                Arc::new(result),
                Outcome::Forwarded,
                0,
                sim_ms,
                &timing,
                false,
            );
            return Ok(self.xml_from_rows(response));
        }

        let mut timing = Timing::begin();
        match self.try_locked_hit(&bound, scheme, &mut timing, false) {
            Some(response) => Ok(response),
            // Malformed entry or miss: rejoin the ordinary loop (it
            // re-runs the cache phase under the flight table, which is
            // what closes the fetch/join race).
            None => Ok(self.xml_from_rows(self.serve_caching(bound, scheme)?)),
        }
    }

    /// One shard-lock window's worth of byte serving: an exact or
    /// contained hit becomes a response, anything needing origin work
    /// (or a malformed entry) becomes `None`. With `fresh_only`, stale
    /// hits also return `None` — the nonblocking edge path declines them
    /// so revalidation spawning stays off the reactor thread.
    fn try_locked_hit(
        &self,
        bound: &BoundQuery,
        scheme: Scheme,
        timing: &mut Timing,
        fresh_only: bool,
    ) -> Option<XmlResponse> {
        match self.cache_phase_locked(bound, scheme, timing) {
            LockedPhase::Exact {
                result,
                columnar,
                sim_ms,
                life,
            } => {
                if fresh_only && life.stale {
                    return None;
                }
                let ser_start = Instant::now();
                let body = match columnar.as_deref() {
                    Some(col) => col.full_document(),
                    None => result.to_xml_string().into_bytes(),
                };
                let obs = &self.inner.observe;
                obs.record_phase(ObsPhase::Serialize, PathClass::Hit, ms_since(ser_start));
                obs.span("serialize", "serve", ser_start, ser_start.elapsed(), || {
                    Some("exact".into())
                });
                let cached = result.len();
                let mut metrics =
                    self.metrics_for(result.len(), Outcome::Exact, cached, sim_ms, timing, false);
                self.apply_life(&mut metrics, &life, true);
                Some(XmlResponse { body, metrics })
            }
            LockedPhase::Contained(plan) => {
                if fresh_only && plan.life.stale {
                    return None;
                }
                self.contained_bytes(bound, &plan, timing)
            }
            LockedPhase::Disk(plan) => {
                if fresh_only && plan.life.stale {
                    return None;
                }
                let response = self.disk_bytes(bound, &plan, timing);
                // Promotion (a slab parse) runs on a worker; the edge
                // reactor path must not spawn threads, so it serves
                // from disk again until a blocking request promotes.
                if !fresh_only {
                    self.spawn_promotion(&plan);
                }
                Some(response)
            }
            LockedPhase::Origin(_) => None,
        }
    }

    /// The edge reactor's fast path: serve an HTML-form request to bytes
    /// **only if** a fresh exact or contained hit answers it within one
    /// shard-lock window. Returns `None` — without touching the origin,
    /// the flight table, or the snapshot schedule — whenever serving
    /// would block: misses, stale entries, malformed entries, resolution
    /// failures, and the no-cache scheme all decline. Declined requests
    /// must be re-served through [`ProxyHandle::handle_form_xml`] on a
    /// thread that may block.
    pub fn try_form_xml_cached(
        &self,
        path: &str,
        fields: &[(String, String)],
    ) -> Option<XmlResponse> {
        let bound = self.inner.manager.resolve_form(path, fields).ok()?;
        self.try_cached_xml(bound)
    }

    /// [`ProxyHandle::try_form_xml_cached`] for raw SQL requests.
    /// Unregistered SQL always declines (it always needs the origin).
    pub fn try_sql_xml_cached(&self, sql: &str) -> Option<XmlResponse> {
        match self.inner.manager.resolve_sql(sql)? {
            Ok(bound) => self.try_cached_xml(bound),
            Err(_) => None,
        }
    }

    fn try_cached_xml(&self, bound: BoundQuery) -> Option<XmlResponse> {
        let scheme = self.effective_scheme(&bound);
        if scheme == Scheme::NoCache {
            return None;
        }
        let _trace = self.inner.observe.begin_trace();
        let started = Instant::now();
        let mut timing = Timing::begin();
        let response = self.try_locked_hit(&bound, scheme, &mut timing, true)?;
        // Count the request only once it is actually served here; a
        // declined probe is re-served (and counted) by the blocking
        // path. Snapshot scheduling is deliberately skipped — the
        // reactor thread must not absorb file I/O.
        self.inner.stats.note_request();
        self.note_served(&bound.reg.template.name, scheme, &response.metrics);
        self.observe_request(started, Some(&response.metrics));
        Some(response)
    }

    /// A contained hit as bytes: prune through the micro-index, then
    /// assemble the body by copying each selected row's pre-serialized
    /// span out of the slab. Returns `None` for malformed entries.
    fn contained_bytes(
        &self,
        bound: &BoundQuery,
        plan: &ContainedPlan,
        timing: &mut Timing,
    ) -> Option<XmlResponse> {
        let idx = plan.coord_idx.as_deref()?;
        let local_start = Instant::now();
        if let Some(col) = plan.columnar.as_deref().filter(|c| c.coord_idx() == idx) {
            let (body, rows, stats, ser_ms) = with_scratch(|scratch| {
                let (point, selected) = scratch.parts_mut();
                let stats = col.select_region(&bound.region, selected, point);
                if let Some(n) = bound.query.top {
                    selected.truncate(n as usize);
                }
                let ser_start = Instant::now();
                let body = col.assemble_document(selected);
                (body, selected.len(), stats, ms_since(ser_start))
            });
            // `local_ms` keeps its established meaning (all off-lock
            // local work, assembly included); the serialize histogram
            // carves the assembly share out separately.
            timing.local_ms += ms_since(local_start);
            self.inner
                .observe
                .record_phase(ObsPhase::Serialize, PathClass::Hit, ser_ms);
            let mut metrics =
                self.metrics_for(rows, Outcome::Contained, rows, plan.sim_ms, timing, false);
            metrics.rows_scanned = stats.rows_scanned;
            metrics.rows_pruned = stats.rows_pruned();
            self.apply_life(&mut metrics, &plan.life, true);
            return Some(XmlResponse { body, metrics });
        }
        // No matching columnar form: row-major selection, then serialize.
        let eval = with_scratch(|scratch| {
            eval_entry_region(&plan.result, None, idx, &bound.region, scratch)
        })?;
        let mut result = eval.result;
        if let Some(n) = bound.query.top {
            result.rows.truncate(n as usize);
        }
        timing.local_ms += ms_since(local_start);
        let rows = result.len();
        let ser_start = Instant::now();
        let body = result.to_xml_string().into_bytes();
        self.inner
            .observe
            .record_phase(ObsPhase::Serialize, PathClass::Hit, ms_since(ser_start));
        let mut metrics =
            self.metrics_for(rows, Outcome::Contained, rows, plan.sim_ms, timing, false);
        metrics.rows_scanned = eval.stats.rows_scanned;
        metrics.rows_pruned = eval.stats.rows_pruned();
        self.apply_life(&mut metrics, &plan.life, true);
        Some(XmlResponse { body, metrics })
    }

    /// The caching schemes' request loop: cache phase, then flight
    /// phase, retried while coalescing fails to help.
    fn serve_caching(
        &self,
        bound: BoundQuery,
        scheme: Scheme,
    ) -> Result<ProxyResponse, ProxyError> {
        let mut timing = Timing::begin();
        // Passive caching cannot answer a query from a containing
        // entry, so it must not wait on a merely containing flight.
        let allow_contained = scheme != Scheme::Passive;

        // Fast path: a cache hit needs no flight-table traffic.
        if let Phase::Served(response) = self.cache_phase(&bound, scheme, &mut timing, false) {
            return Ok(response);
        }

        for _ in 0..MAX_COALESCE_ATTEMPTS {
            match self.inner.flights.join(
                &bound.sql,
                &bound.residual_key,
                &bound.region,
                allow_contained,
            ) {
                Joined::Lead(lease) => {
                    self.inner.stats.note_flight_led();
                    // Re-check under the registered flight: a fetch that
                    // landed between our miss and this join is visible
                    // now, because leaders insert before resolving.
                    let response = match self.cache_phase(&bound, scheme, &mut timing, false) {
                        Phase::Served(response) => response,
                        Phase::Origin(plan) => {
                            return self.lead_origin(&bound, scheme, *plan, lease, &mut timing)
                        }
                    };
                    lease.resolve(response.clone());
                    return Ok(response);
                }
                Joined::Follow(Coalesce::Exact, ticket) => {
                    let wait_start = Instant::now();
                    let waited = ticket.wait();
                    self.inner.observe.span(
                        "flight.wait",
                        "flight",
                        wait_start,
                        wait_start.elapsed(),
                        || Some("exact".into()),
                    );
                    match waited {
                        Ok(leader) => {
                            self.inner.stats.note_coalesced_exact();
                            return Ok(self.adopt(leader, &timing));
                        }
                        // The leader's failure is this request's failure: a
                        // fresh flight here would turn one outage into a
                        // retry storm. Re-check the cache (the entry may
                        // have landed through another group), then try
                        // degraded serving.
                        Err(error) => {
                            if let Phase::Served(response) =
                                self.cache_phase(&bound, scheme, &mut timing, false)
                            {
                                return Ok(response);
                            }
                            return self.serve_after_failure(&bound, scheme, error, &mut timing);
                        }
                    }
                }
                Joined::Follow(Coalesce::Contained, ticket) => {
                    let wait_start = Instant::now();
                    let waited = ticket.wait();
                    self.inner.observe.span(
                        "flight.wait",
                        "flight",
                        wait_start,
                        wait_start.elapsed(),
                        || Some("contained".into()),
                    );
                    match waited {
                        Ok(_) => {
                            if let Phase::Served(response) =
                                self.cache_phase(&bound, scheme, &mut timing, true)
                            {
                                self.inner.stats.note_coalesced_contained();
                                return Ok(response);
                            }
                            // The flight landed but didn't leave a usable
                            // entry (truncated or evicted result): retry.
                        }
                        Err(error) => {
                            if let Phase::Served(response) =
                                self.cache_phase(&bound, scheme, &mut timing, false)
                            {
                                return Ok(response);
                            }
                            return self.serve_after_failure(&bound, scheme, error, &mut timing);
                        }
                    }
                }
            }
        }

        // Coalescing kept failing; serve uncoalesced rather than loop.
        match self.cache_phase(&bound, scheme, &mut timing, false) {
            Phase::Served(response) => Ok(response),
            Phase::Origin(plan) => match self.execute_plan(&bound, scheme, *plan, &mut timing) {
                Ok(response) => Ok(response),
                Err(error) => self.serve_after_failure(&bound, scheme, error, &mut timing),
            },
        }
    }

    /// The leader's origin phase plus failure handling: on success the
    /// flight resolves with the response; on failure the error is
    /// published to every follower exactly once and the leader falls
    /// back to degraded serving for its own client.
    fn lead_origin(
        &self,
        bound: &BoundQuery,
        scheme: Scheme,
        plan: OriginPlan,
        lease: FlightLease<'_>,
        timing: &mut Timing,
    ) -> Result<ProxyResponse, ProxyError> {
        let lead_start = Instant::now();
        match self.execute_plan(bound, scheme, plan, timing) {
            Ok(response) => {
                self.inner.observe.span(
                    "flight.lead",
                    "flight",
                    lead_start,
                    lead_start.elapsed(),
                    || Some(format!("{:?}", response.metrics.outcome)),
                );
                lease.resolve(response.clone());
                Ok(response)
            }
            Err(error) => {
                self.inner.observe.span(
                    "flight.lead",
                    "flight",
                    lead_start,
                    lead_start.elapsed(),
                    || Some("failed".into()),
                );
                lease.fail(error.clone());
                self.serve_after_failure(bound, scheme, error, timing)
            }
        }
    }

    /// After a failed fetch (this request's own or a followed
    /// leader's): serve degraded from the cache when the failure is
    /// transient and the cache covers any of the query; otherwise
    /// surface the error.
    fn serve_after_failure(
        &self,
        bound: &BoundQuery,
        scheme: Scheme,
        error: ProxyError,
        timing: &mut Timing,
    ) -> Result<ProxyResponse, ProxyError> {
        let transient = matches!(&error, ProxyError::Origin(e) if e.is_transient());
        if transient {
            if let Some(response) = self.degraded_phase(bound, scheme, timing) {
                return Ok(response);
            }
        }
        Err(error)
    }

    /// One pass over the shard, then off-lock local evaluation: classify
    /// and either answer from the cache or plan the origin work.
    fn cache_phase(
        &self,
        bound: &BoundQuery,
        scheme: Scheme,
        timing: &mut Timing,
        coalesced: bool,
    ) -> Phase {
        match self.cache_phase_locked(bound, scheme, timing) {
            LockedPhase::Exact {
                result,
                sim_ms,
                life,
                ..
            } => {
                let cached = result.len();
                let mut response =
                    self.respond(result, Outcome::Exact, cached, sim_ms, timing, coalesced);
                self.apply_life(&mut response.metrics, &life, true);
                Phase::Served(response)
            }
            LockedPhase::Contained(plan) => self.finish_contained(bound, &plan, timing, coalesced),
            LockedPhase::Disk(plan) => self.finish_disk_rows(bound, *plan, timing, coalesced),
            LockedPhase::Origin(plan) => Phase::Origin(plan),
        }
    }

    /// The shard-lock window: exact lookup, classification, and `Arc`
    /// snapshots of whatever entries the answer needs. Never fetches,
    /// never scans tuples — contained-hit selection and overlap probe
    /// filtering both run after the lock is released.
    fn cache_phase_locked(
        &self,
        bound: &BoundQuery,
        scheme: Scheme,
        timing: &mut Timing,
    ) -> LockedPhase {
        let (mut store, wait) = self.inner.store.lock(&bound.residual_key);
        self.note_lock_wait(timing, wait);
        let config = &self.inner.config;
        if self.inner.lifecycle_active {
            // Expiry is lazy: entries die when next probed, not on a
            // timer, so retire this probe's dead candidates first.
            store.sweep_dead(&bound.residual_key, &bound.region);
        }

        let check_start = Instant::now();
        // An exact entry past its serveable windows (Grace on the
        // healthy path) falls through to classification, which applies
        // the same freshness grade to every candidate.
        let status = match store.lookup_exact(&bound.sql) {
            Some(id) if store.freshness(id).is_some_and(|f| f.serveable(false)) => {
                QueryStatus::ExactMatch(id)
            }
            // Passive caching only ever matches exact text.
            _ if scheme == Scheme::Passive => QueryStatus::Disjoint,
            _ => classify(&store, bound),
        };
        timing.check_ms += ms_since(check_start);

        match status {
            QueryStatus::ExactMatch(id) => {
                let life = self.life_of(&store, id);
                if store.peek(id).is_some() {
                    let entry = store.get(id).expect("resident above");
                    LockedPhase::Exact {
                        result: Arc::clone(&entry.result),
                        columnar: entry.columnar.clone(),
                        sim_ms: config.cost.cache_read_ms(entry.bytes),
                        life,
                    }
                } else {
                    self.disk_phase(&mut store, id, bound, true, life)
                }
            }

            QueryStatus::ContainedBy(id) => {
                let life = self.life_of(&store, id);
                if store.peek(id).is_some() {
                    let entry = store.get(id).expect("resident above");
                    LockedPhase::Contained(Box::new(ContainedPlan {
                        result: Arc::clone(&entry.result),
                        columnar: entry.columnar.clone(),
                        coord_idx: entry.coord_indexes(&bound.reg.coord_columns),
                        sim_ms: config.cost.cache_read_ms(entry.bytes),
                        life,
                    }))
                } else {
                    self.disk_phase(&mut store, id, bound, false, life)
                }
            }

            QueryStatus::RegionContainment(ids) if scheme.handles_region_containment() => {
                self.merge_plan(
                    &mut store, bound, ids, /*probe_filters=*/ false, timing,
                )
            }

            QueryStatus::Overlapping(ids)
                if scheme.handles_overlap() && coverage_worthwhile(config, &store, bound, &ids) =>
            {
                self.merge_plan(&mut store, bound, ids, /*probe_filters=*/ true, timing)
            }

            QueryStatus::RegionContainment(_)
            | QueryStatus::Overlapping(_)
            | QueryStatus::Disjoint => LockedPhase::Origin(OriginPlan::forward(bound, Vec::new())),
        }
    }

    /// Builds the serve plan for a classification hit on a demoted
    /// entry: pin its slab segment (zero-copy mmap slice) and snapshot
    /// its resident skeleton, all within the held lock window. An
    /// unreachable segment drops the entry (counting the corruption)
    /// and falls back to forwarding.
    fn disk_phase(
        &self,
        store: &mut CacheStore,
        id: u64,
        bound: &BoundQuery,
        exact: bool,
        life: ServeLife,
    ) -> LockedPhase {
        let Some(d) = store.disk_entry(id) else {
            return LockedPhase::Origin(OriginPlan::forward(bound, Vec::new()));
        };
        let skeleton = Arc::clone(&d.skeleton);
        let residual_key = Arc::clone(&d.residual_key);
        let rows = d.rows;
        let bytes = d.bytes;
        if !exact && skeleton.coord_idx().is_empty() {
            // The skeleton cannot select rows by region — same handling
            // as a malformed contained entry.
            self.inner.stats.note_local_fallback();
            return LockedPhase::Origin(OriginPlan::forward_fallback(bound));
        }
        match store.disk_slice(id) {
            Some(slice) => LockedPhase::Disk(Box::new(DiskPlan {
                id,
                residual_key,
                slice,
                skeleton,
                rows,
                exact,
                sim_ms: self.inner.config.cost.cache_read_ms(bytes),
                life,
            })),
            None => {
                // Read-repair: quarantine the unreadable segment; the
                // forward plan below re-fetches from origin and its
                // insert rewrites the entry.
                if store.quarantine_corrupt_demoted(id).is_some() {
                    self.inner.stats.note_read_repair();
                }
                LockedPhase::Origin(OriginPlan::forward(bound, Vec::new()))
            }
        }
    }

    /// A disk-tier hit as bytes, entirely off-lock: an exact hit splices
    /// the skeleton's XML framing around the mmap'd row slab; a
    /// contained hit selects rows through the resident micro-index first
    /// and assembles only the selected spans. Byte-identical to serving
    /// the entry from RAM.
    fn disk_bytes(&self, bound: &BoundQuery, plan: &DiskPlan, timing: &mut Timing) -> XmlResponse {
        let serve_start = Instant::now();
        let obs = &self.inner.observe;
        let (body, rows, scanned, pruned) = if plan.exact {
            (
                plan.skeleton.full_document_with(plan.slice.row_slab()),
                plan.rows,
                0,
                0,
            )
        } else {
            let (body, rows, stats) = with_scratch(|scratch| {
                let (point, selected) = scratch.parts_mut();
                let stats = plan.skeleton.select_region(&bound.region, selected, point);
                if let Some(n) = bound.query.top {
                    selected.truncate(n as usize);
                }
                let body = plan
                    .skeleton
                    .assemble_document_with(plan.slice.row_slab(), selected);
                (body, selected.len(), stats)
            });
            timing.local_ms += ms_since(serve_start);
            (body, rows, stats.rows_scanned, stats.rows_pruned())
        };
        obs.record_phase(ObsPhase::DiskServe, PathClass::Hit, ms_since(serve_start));
        obs.span(
            "disk.serve",
            "serve",
            serve_start,
            serve_start.elapsed(),
            || Some(if plan.exact { "exact" } else { "contained" }.into()),
        );
        self.inner.stats.note_disk_hit();
        let outcome = if plan.exact {
            Outcome::Exact
        } else {
            Outcome::Contained
        };
        let mut metrics = self.metrics_for(rows, outcome, rows, plan.sim_ms, timing, false);
        metrics.rows_scanned = scanned;
        metrics.rows_pruned = pruned;
        metrics.disk_hit = true;
        self.apply_life(&mut metrics, &plan.life, true);
        XmlResponse { body, metrics }
    }

    /// A disk-tier hit on the row-response path. The slab payload must
    /// be parsed back into tuples anyway, and that parse *is* the
    /// promotion work — so the entry is promoted inline (relock, swap
    /// in the rebuilt result) instead of spawning a worker.
    fn finish_disk_rows(
        &self,
        bound: &BoundQuery,
        plan: DiskPlan,
        timing: &mut Timing,
        coalesced: bool,
    ) -> Phase {
        let serve_start = Instant::now();
        let parsed = std::str::from_utf8(plan.slice.xml())
            .ok()
            .and_then(|text| Element::parse(text).ok())
            .and_then(|doc| entry_from_xml(&doc));
        let Some(((_, _, result, _, _, coord_idx), _stamp)) = parsed else {
            let (mut store, wait) = self.inner.store.lock(&bound.residual_key);
            self.note_lock_wait(timing, wait);
            // Read-repair: quarantine, then let the forward plan's
            // origin fetch and insert rewrite the entry.
            if store.quarantine_corrupt_demoted(plan.id).is_some() {
                self.inner.stats.note_read_repair();
            }
            return Phase::Origin(OriginPlan::forward(bound, Vec::new()));
        };
        let result = Arc::new(result);
        let columnar = ColumnarRows::build(&result, &coord_idx).map(Arc::new);
        timing.local_ms += ms_since(serve_start);
        self.inner
            .observe
            .record_phase(ObsPhase::DiskServe, PathClass::Hit, ms_since(serve_start));
        {
            let (mut store, wait) = self.inner.store.lock(&plan.residual_key);
            self.note_lock_wait(timing, wait);
            store.promote(plan.id, Arc::clone(&result), columnar.clone());
        }
        self.inner.stats.note_disk_hit();
        if plan.exact {
            let cached = result.len();
            let mut response = self.respond(
                result,
                Outcome::Exact,
                cached,
                plan.sim_ms,
                timing,
                coalesced,
            );
            response.metrics.disk_hit = true;
            self.apply_life(&mut response.metrics, &plan.life, true);
            Phase::Served(response)
        } else {
            let contained = ContainedPlan {
                result,
                columnar,
                coord_idx: Some(coord_idx),
                sim_ms: plan.sim_ms,
                life: plan.life.clone(),
            };
            match self.finish_contained(bound, &contained, timing, coalesced) {
                Phase::Served(mut response) => {
                    response.metrics.disk_hit = true;
                    Phase::Served(response)
                }
                phase => phase,
            }
        }
    }

    /// The off-lock half of a contained hit: select the rows inside the
    /// query region from the snapshotted entry (columnar when the forms
    /// match, row-major otherwise).
    fn finish_contained(
        &self,
        bound: &BoundQuery,
        plan: &ContainedPlan,
        timing: &mut Timing,
        coalesced: bool,
    ) -> Phase {
        let local_start = Instant::now();
        let eval = plan.coord_idx.as_deref().and_then(|idx| {
            with_scratch(|scratch| {
                eval_entry_region(
                    &plan.result,
                    plan.columnar.as_deref(),
                    idx,
                    &bound.region,
                    scratch,
                )
            })
        });
        timing.local_ms += ms_since(local_start);
        match eval {
            Some(eval) => {
                let mut result = eval.result;
                if let Some(n) = bound.query.top {
                    result.rows.truncate(n as usize);
                }
                let cached = result.len();
                let mut response = self.respond(
                    Arc::new(result),
                    Outcome::Contained,
                    cached,
                    plan.sim_ms,
                    timing,
                    coalesced,
                );
                response.metrics.rows_scanned = eval.stats.rows_scanned;
                response.metrics.rows_pruned = eval.stats.rows_pruned();
                self.apply_life(&mut response.metrics, &plan.life, true);
                Phase::Served(response)
            }
            // Malformed cached document: fall back to the origin.
            None => {
                self.inner.stats.note_local_fallback();
                Phase::Origin(OriginPlan::forward_fallback(bound))
            }
        }
    }

    /// Cache-only answering after a transient origin failure.
    ///
    /// Re-classifies the query against the cache, ignoring the gates
    /// the full path applies (remainder support, `TOP`, the coverage
    /// threshold) — origin-side completion is off the table, so any
    /// sound cached subset beats a refusal:
    ///
    /// * exact / contained: complete answers, served normally (these
    ///   arise when another group's fetch landed the entry meanwhile);
    /// * region containment: the union of the subsumed cached entries,
    ///   a sound subset of the full answer, marked `degraded`;
    /// * overlap: the cached entries filtered to the query region (the
    ///   cached intersection), likewise sound, marked `degraded`.
    ///
    /// Malformed entries are skipped best-effort rather than failing
    /// the whole answer. Degraded responses are **never** inserted into
    /// the cache. Returns `None` when the cache cannot contribute
    /// (disjoint, passive scheme, nothing usable).
    fn degraded_phase(
        &self,
        bound: &BoundQuery,
        scheme: Scheme,
        timing: &mut Timing,
    ) -> Option<ProxyResponse> {
        let config = &self.inner.config;
        // Passive caching cannot reason spatially; its only possible
        // hit (exact text) was already checked before the fetch.
        if !scheme.caches() || scheme == Scheme::Passive {
            return None;
        }

        let (mut store, wait) = self.inner.store.lock(&bound.residual_key);
        self.note_lock_wait(timing, wait);
        let check_start = Instant::now();
        // The error path's privilege: entries in the stale-if-error
        // Grace window are admitted — an outage extends expired entries
        // instead of abandoning them. No revalidation is spawned here
        // (the origin is known down).
        let status = match store.lookup_exact(&bound.sql) {
            Some(id) if store.freshness(id).is_some_and(|f| f.serveable(true)) => {
                QueryStatus::ExactMatch(id)
            }
            _ => classify_graded(&store, bound, true),
        };
        timing.check_ms += ms_since(check_start);

        let (ids, filtered, outcome) = match status {
            QueryStatus::ExactMatch(id) => {
                let life = self.error_life_of(&store, id);
                if store.peek(id).is_none() {
                    // Demoted: serve (and promote) from the slab.
                    let LockedPhase::Disk(plan) =
                        self.disk_phase(&mut store, id, bound, true, life)
                    else {
                        return None;
                    };
                    drop(store);
                    return match self.finish_disk_rows(bound, *plan, timing, false) {
                        Phase::Served(response) => Some(response),
                        Phase::Origin(_) => None,
                    };
                }
                let entry = store.get(id).expect("resident above");
                let result = Arc::clone(&entry.result);
                let sim_ms = config.cost.cache_read_ms(entry.bytes);
                drop(store);
                let cached = result.len();
                let mut response =
                    self.respond(result, Outcome::Exact, cached, sim_ms, timing, false);
                self.apply_life(&mut response.metrics, &life, false);
                return Some(response);
            }
            QueryStatus::ContainedBy(id) => {
                let life = self.error_life_of(&store, id);
                if store.peek(id).is_none() {
                    let LockedPhase::Disk(plan) =
                        self.disk_phase(&mut store, id, bound, false, life)
                    else {
                        return None;
                    };
                    drop(store);
                    return match self.finish_disk_rows(bound, *plan, timing, false) {
                        Phase::Served(response) => Some(response),
                        Phase::Origin(_) => None,
                    };
                }
                let entry = store.get(id).expect("resident above");
                let plan = ContainedPlan {
                    result: Arc::clone(&entry.result),
                    columnar: entry.columnar.clone(),
                    coord_idx: entry.coord_indexes(&bound.reg.coord_columns),
                    sim_ms: config.cost.cache_read_ms(entry.bytes),
                    life,
                };
                drop(store);
                return match self.finish_contained(bound, &plan, timing, false) {
                    Phase::Served(response) => Some(response),
                    // Malformed entry; nothing else covers the query.
                    Phase::Origin(_) => None,
                };
            }
            QueryStatus::RegionContainment(ids) if scheme.handles_region_containment() => {
                (ids, false, Outcome::RegionContainment)
            }
            QueryStatus::Overlapping(ids) if scheme.handles_overlap() => {
                (ids, true, Outcome::Overlap)
            }
            _ => return None,
        };

        // Snapshot the contributing entries, skipping malformed ones.
        let mut probe_sim_ms = 0.0;
        let mut parts: Vec<ProbePart> = Vec::with_capacity(ids.len());
        for &id in &ids {
            // Demoted entries skip the merge — their rows are on disk,
            // and a degraded answer is best-effort anyway.
            let Some(entry) = store.peek(id) else {
                continue;
            };
            let filter_idx = if filtered {
                match entry.coord_indexes(&bound.reg.coord_columns) {
                    Some(idx) => Some(idx),
                    None => continue,
                }
            } else {
                None
            };
            probe_sim_ms += config.cost.cache_read_ms(entry.bytes);
            parts.push(ProbePart {
                result: Arc::clone(&entry.result),
                columnar: entry.columnar.clone(),
                filter_idx,
                life: self.error_life_of(&store, id),
            });
        }
        drop(store);
        if parts.is_empty() {
            return None;
        }

        // Off-lock: filter the overlap parts and merge by key. Like the
        // healthy merge path, lifecycle facts come only from the parts
        // that contribute rows to the served answer.
        let local_start = Instant::now();
        let mut life = ServeLife::default();
        let mut rows_scanned = 0usize;
        let mut rows_pruned = 0usize;
        let mut pieces: Vec<ResultSet> = Vec::with_capacity(parts.len());
        let mut wholes: Vec<Arc<ResultSet>> = Vec::new();
        for p in &parts {
            match &p.filter_idx {
                None => {
                    if !p.result.rows.is_empty() {
                        life.absorb(&p.life);
                    }
                    wholes.push(Arc::clone(&p.result));
                }
                Some(idx) => {
                    let eval = with_scratch(|scratch| {
                        eval_entry_region(
                            &p.result,
                            p.columnar.as_deref(),
                            idx,
                            &bound.region,
                            scratch,
                        )
                    });
                    if let Some(e) = eval {
                        rows_scanned += e.stats.rows_scanned;
                        rows_pruned += e.stats.rows_pruned();
                        if !e.result.rows.is_empty() {
                            life.absorb(&p.life);
                        }
                        pieces.push(e.result);
                    }
                }
            }
        }
        let refs: Vec<&ResultSet> = wholes.iter().map(|a| &**a).chain(pieces.iter()).collect();
        if refs.is_empty() {
            timing.local_ms += ms_since(local_start);
            return None;
        }
        let mut merged = merge_results(&bound.reg.key_column, &refs);
        if let Some(n) = bound.query.top {
            merged.rows.truncate(n as usize);
        }
        timing.local_ms += ms_since(local_start);

        let result = Arc::new(merged);
        let rows = result.len();
        self.inner.stats.note_degraded(rows);
        let mut response = self.respond(result, outcome, rows, probe_sim_ms, timing, false);
        response.metrics.degraded = true;
        response.metrics.rows_scanned = rows_scanned;
        response.metrics.rows_pruned = rows_pruned;
        self.apply_life(&mut response.metrics, &life, false);
        Some(response)
    }

    /// Plans the merge paths (region containment / overlap): snapshots
    /// the probed entries under the held lock so both the fetch *and*
    /// the probe filtering can run lock-free. Mirrors
    /// [`crate::proxy::FunctionProxy`]'s merge procedure.
    fn merge_plan(
        &self,
        store: &mut CacheStore,
        bound: &BoundQuery,
        mut ids: Vec<u64>,
        probe_filters: bool,
        timing: &mut Timing,
    ) -> LockedPhase {
        let config = &self.inner.config;
        // Remainder queries need server support and a TOP-free query.
        if !self.inner.origin.supports_remainder() || bound.query.top.is_some() {
            // Region containment: the forwarded result still covers the
            // subsumed entries, so compaction remains valid.
            let compact_ids = if probe_filters { Vec::new() } else { ids };
            return LockedPhase::Origin(OriginPlan::forward(bound, compact_ids));
        }

        // Demoted entries never join merges: probing one would drag a
        // slab parse into the lock window. They are excluded here —
        // before the remainder's exclude-regions are computed, so the
        // fetch covers their regions again — but under region
        // containment they are still subsumed and compact away.
        let mut demoted_ids: Vec<u64> = Vec::new();
        ids.retain(|id| {
            if store.peek(*id).is_some() {
                true
            } else {
                demoted_ids.push(*id);
                false
            }
        });
        if ids.is_empty() {
            let compact_ids = if probe_filters {
                Vec::new()
            } else {
                demoted_ids
            };
            return LockedPhase::Origin(OriginPlan::forward(bound, compact_ids));
        }

        // Bound the fan-in; prefer the largest cached parts.
        ids.sort_by_key(|id| std::cmp::Reverse(store.peek(*id).map_or(0, |e| e.bytes)));
        ids.truncate(config.max_merge_entries);

        // Stale parts may still contribute (the merged result is
        // re-anchored by the fresh remainder fetch, and region
        // containment compacts them away). Each part carries its own
        // lifecycle facts; `execute_plan` folds in only the parts whose
        // rows actually reach the served answer, so a stale-but-empty
        // probe can never flag (or age) the response.
        // Probe phase: snapshot each entry (shared, not deep-copied) and
        // charge the simulated read cost. Actual filtering is deferred
        // to `execute_plan`, outside this lock window.
        let local_start = Instant::now();
        let mut probe_sim_ms = 0.0;
        let mut probe_parts: Vec<ProbePart> = Vec::with_capacity(ids.len());
        for &id in &ids {
            let entry = store.peek(id).expect("classify returned live ids");
            probe_sim_ms += config.cost.cache_read_ms(entry.bytes);
            let filter_idx = if probe_filters {
                match entry.coord_indexes(&bound.reg.coord_columns) {
                    Some(idx) => Some(idx),
                    // The entry cannot map the template's coordinate
                    // columns: treat like a malformed entry.
                    None => {
                        self.inner.stats.note_local_fallback();
                        return LockedPhase::Origin(OriginPlan::forward_fallback(bound));
                    }
                }
            } else {
                None
            };
            probe_parts.push(ProbePart {
                result: Arc::clone(&entry.result),
                columnar: entry.columnar.clone(),
                filter_idx,
                life: self.life_of(store, id),
            });
        }

        // Remainder phase setup (the fetch itself happens off-lock).
        let exclude: Vec<fp_geometry::Region> = ids
            .iter()
            .map(|id| store.peek(*id).expect("live id").region.clone())
            .collect();
        let exclude_refs: Vec<&fp_geometry::Region> = exclude.iter().collect();
        timing.local_ms += ms_since(local_start);
        let Some(rq) = remainder_query(bound, &exclude_refs) else {
            return LockedPhase::Origin(OriginPlan::forward(bound, Vec::new()));
        };

        let (compact_ids, outcome) = if probe_filters {
            (Vec::new(), Outcome::Overlap)
        } else {
            ids.extend(demoted_ids);
            (ids, Outcome::RegionContainment)
        };
        LockedPhase::Origin(Box::new(OriginPlan {
            query: rq,
            is_remainder: true,
            probe_parts,
            probe_sim_ms,
            compact_ids,
            outcome,
            local_fallback: false,
            life: ServeLife::default(),
        }))
    }

    /// The leader's origin phase, entirely off-lock until the final
    /// insert: filter the snapshotted probes, fetch, merge, then one
    /// more shard-lock window to insert and compact.
    fn execute_plan(
        &self,
        bound: &BoundQuery,
        scheme: Scheme,
        mut plan: OriginPlan,
        timing: &mut Timing,
    ) -> Result<ProxyResponse, ProxyError> {
        // Probe filtering runs here, off-lock, against the `Arc`
        // snapshots taken in `merge_plan` (entries are immutable, so
        // concurrent eviction cannot invalidate them).
        enum Part {
            Whole(Arc<ResultSet>),
            Filtered(ResultSet),
        }
        let mut rows_scanned = 0usize;
        let mut rows_pruned = 0usize;
        let mut cached_part: Option<ResultSet> = None;
        if !plan.probe_parts.is_empty() {
            let local_start = Instant::now();
            let mut served_life = ServeLife::default();
            let mut parts: Vec<Part> = Vec::with_capacity(plan.probe_parts.len());
            let mut malformed = false;
            for p in &plan.probe_parts {
                match &p.filter_idx {
                    None => {
                        if !p.result.rows.is_empty() {
                            served_life.absorb(&p.life);
                        }
                        parts.push(Part::Whole(Arc::clone(&p.result)));
                    }
                    Some(idx) => {
                        let eval = with_scratch(|scratch| {
                            eval_entry_region(
                                &p.result,
                                p.columnar.as_deref(),
                                idx,
                                &bound.region,
                                scratch,
                            )
                        });
                        match eval {
                            Some(e) => {
                                rows_scanned += e.stats.rows_scanned;
                                rows_pruned += e.stats.rows_pruned();
                                if !e.result.rows.is_empty() {
                                    served_life.absorb(&p.life);
                                }
                                parts.push(Part::Filtered(e.result));
                            }
                            None => {
                                malformed = true;
                                break;
                            }
                        }
                    }
                }
            }
            if malformed {
                // Malformed probe entry: forward the original query.
                self.inner.stats.note_local_fallback();
                plan = *OriginPlan::forward_fallback(bound);
                rows_scanned = 0;
                rows_pruned = 0;
            } else {
                let refs: Vec<&ResultSet> = parts
                    .iter()
                    .map(|p| match p {
                        Part::Whole(a) => &**a,
                        Part::Filtered(r) => r,
                    })
                    .collect();
                cached_part = Some(merge_results(&bound.reg.key_column, &refs));
                // Only the entries whose rows reached the merged answer
                // shape its lifecycle facts (staleness flag and age).
                plan.life = served_life;
            }
            timing.local_ms += ms_since(local_start);
        }

        // Overlap remainders are batchable: concurrent overlap misses
        // sharing the residual key ride one combined origin round trip.
        let (fetched, origin_sim_ms) = if plan.is_remainder && plan.outcome == Outcome::Overlap {
            self.fetch_overlap_remainder(bound, &plan.query)?
        } else {
            self.fetch(&plan.query, plan.is_remainder, PathClass::Miss)?
        };

        let (result, rows_from_cache, truncated) = match cached_part {
            Some(part) => {
                let merge_start = Instant::now();
                let merged = merge_results(&bound.reg.key_column, &[&part, &fetched]);
                timing.local_ms += ms_since(merge_start);
                (merged, part.len(), false)
            }
            None => {
                let truncated = bound.query.top.is_some_and(|n| fetched.len() as u64 >= n);
                (fetched, 0, truncated)
            }
        };
        let result = Arc::new(result);

        // The expensive halves of an insert — serialized size and the
        // columnar form (row slab, micro-index) — are prebuilt here,
        // off-lock, so the locked window below is just map updates.
        // Building them under the shard lock made every miss landing
        // serialize the shard's concurrent hits: the 8-thread hit p99
        // sat three orders of magnitude above single-thread.
        let prebuilt = if scheme.caches() {
            let build_start = Instant::now();
            let coord_idx: Option<Vec<usize>> = bound
                .reg
                .coord_columns
                .iter()
                .map(|c| result.column_index(c))
                .collect();
            let bytes = result.xml_bytes();
            let columnar =
                ColumnarRows::build(&result, coord_idx.as_deref().unwrap_or(&[])).map(Arc::new);
            timing.local_ms += ms_since(build_start);
            Some((bytes, columnar))
        } else {
            None
        };

        {
            let (mut store, wait) = self.inner.store.lock(&bound.residual_key);
            self.note_lock_wait(timing, wait);
            if let Some((bytes, columnar)) = prebuilt {
                let inserted = store.insert_prebuilt(
                    &bound.residual_key,
                    bound.region.clone(),
                    Arc::clone(&result),
                    truncated,
                    &bound.sql,
                    bytes,
                    columnar,
                );
                // Seed the entry's measured refetch cost for the
                // cost-aware replacement policy: what this fetch just
                // charged is what re-acquiring the entry would cost.
                if let Some(id) = inserted {
                    store.note_refetch_cost(id, (origin_sim_ms * 1000.0) as u64);
                }
            }
            // Some ids may have been evicted while we fetched; compact
            // skips missing entries, and ids are never reused.
            store.compact(&plan.compact_ids);
        }

        let mut response = self.respond(
            result,
            plan.outcome,
            rows_from_cache,
            origin_sim_ms + plan.probe_sim_ms,
            timing,
            false,
        );
        response.metrics.rows_scanned = rows_scanned;
        response.metrics.rows_pruned = rows_pruned;
        response.metrics.local_fallback = plan.local_fallback;
        // Stale probe parts flag the merged answer; no revalidation —
        // the remainder fetch just refreshed this region's coverage.
        self.apply_life(&mut response.metrics, &plan.life, false);
        Ok(response)
    }

    /// Builds an exact follower's response from the leader's. The
    /// simulated cost stays the leader's (the follower really did wait
    /// out that fetch); the measured time is the follower's own.
    fn adopt(&self, leader: ProxyResponse, timing: &Timing) -> ProxyResponse {
        let mut metrics = leader.metrics;
        // A degraded leader response stays what it is — relabelling a
        // partial answer as an exact hit would hide its partiality.
        if !metrics.degraded {
            metrics.outcome = Outcome::Exact;
        }
        metrics.rows_from_cache = metrics.rows_total;
        metrics.coalesced = true;
        metrics.check_ms = timing.check_ms;
        metrics.local_ms = 0.0;
        metrics.lock_wait_ms = timing.lock_wait_ms;
        metrics.proxy_ms = ms_since(timing.start);
        metrics.response_ms = metrics.sim_ms + metrics.proxy_ms;
        metrics.rows_scanned = 0;
        metrics.rows_pruned = 0;
        metrics.local_fallback = false;
        ProxyResponse {
            result: leader.result,
            metrics,
        }
    }

    /// The overlap path's origin interaction, with cross-request
    /// remainder batching. The first remainder out for a residual key
    /// fetches alone; remainders that arrive while it is in flight
    /// park in the batch table, and the finishing leader serves the
    /// whole queue with **one** combined round trip — the OR of their
    /// remainder predicates (sound because a shared residual key pins
    /// everything but the spatial clauses). Each follower then filters
    /// the shared result down to its own region; rows the filter
    /// admits beyond the follower's remainder are already covered by
    /// its cached probe parts and deduplicate in the key-based merge.
    fn fetch_overlap_remainder(
        &self,
        bound: &BoundQuery,
        query: &Query,
    ) -> Result<(ResultSet, f64), ProxyError> {
        let enlisted = {
            let mut table = self
                .inner
                .remainder_batches
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            match table.get_mut(&bound.residual_key) {
                None => {
                    table.insert(
                        bound.residual_key.clone(),
                        RemainderBatch {
                            waiters: Vec::new(),
                        },
                    );
                    None
                }
                Some(batch) => {
                    let slot = BatchSlot::new();
                    batch.waiters.push(BatchTicket {
                        query: query.clone(),
                        region: bound.region.clone(),
                        slot: Arc::clone(&slot),
                    });
                    Some(slot)
                }
            }
        };

        let Some(slot) = enlisted else {
            // Leader: own fetch first, then serve whoever queued up
            // meanwhile. The batch entry is removed in `drain`
            // regardless of the fetch's outcome, so a failed leader
            // never wedges the key.
            let own = self.fetch(query, true, PathClass::Miss);
            let waiters = self.drain_batch(&bound.residual_key);
            if !waiters.is_empty() {
                match &own {
                    Ok(_) => self.serve_batch(bound, waiters),
                    // Origin just failed; followers decide their own
                    // fate with their own (likely also failing, but
                    // independently retried/breakered) attempts.
                    Err(e) => {
                        for w in waiters {
                            w.slot.fill(Err(e.clone()));
                        }
                    }
                }
            }
            return own;
        };

        // Follower: wait out the leader's combined fetch.
        match slot.wait() {
            Ok((combined, sim_ms)) => {
                let coord_idx: Option<Vec<usize>> = bound
                    .reg
                    .coord_columns
                    .iter()
                    .map(|c| combined.column_index(c))
                    .collect();
                let filtered = coord_idx.and_then(|idx| {
                    with_scratch(|scratch| {
                        eval_entry_region(&combined, None, &idx, &bound.region, scratch)
                    })
                });
                match filtered {
                    // The follower waited out the combined fetch, so it
                    // is charged that fetch's simulated cost (the same
                    // convention as coalesced exact followers).
                    Some(eval) => Ok((eval.result, sim_ms)),
                    // The combined result cannot map the coordinate
                    // columns: fetch solo rather than serve bad rows.
                    None => self.fetch(query, true, PathClass::Miss),
                }
            }
            Err(_) => self.fetch(query, true, PathClass::Miss),
        }
    }

    /// Removes and returns the batch queue for `residual_key`.
    fn drain_batch(&self, residual_key: &str) -> Vec<BatchTicket> {
        let mut table = self
            .inner
            .remainder_batches
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        table
            .remove(residual_key)
            .map_or_else(Vec::new, |b| b.waiters)
    }

    /// The leader's follower service: one combined fetch covering
    /// every parked remainder, distributed through their slots.
    fn serve_batch(&self, bound: &BoundQuery, waiters: Vec<BatchTicket>) {
        let Some(combined) = combined_batch_query(bound, &waiters) else {
            // The queries' shape defeats the rewrite; every follower
            // falls back to its own solo fetch.
            let e = ProxyError::Template("remainder batch is not combinable".into());
            for w in waiters {
                w.slot.fill(Err(e.clone()));
            }
            return;
        };
        self.inner.stats.note_remainder_batch(waiters.len());

        match self.fetch(&combined, true, PathClass::Miss) {
            Ok((result, sim_ms)) => {
                let shared = Arc::new(result);
                for w in waiters {
                    w.slot.fill(Ok((Arc::clone(&shared), sim_ms)));
                }
            }
            Err(e) => {
                for w in waiters {
                    w.slot.fill(Err(e.clone()));
                }
            }
        }
    }

    /// One origin interaction: execute + charge the cost model. A
    /// successful fetch also picks up the origin's advertised
    /// data-release epoch, bumping ours when the site moved ahead.
    fn fetch(
        &self,
        query: &Query,
        is_remainder: bool,
        path: PathClass,
    ) -> Result<(ResultSet, f64), ProxyError> {
        let fetch_start = Instant::now();
        let executed = self.inner.origin.execute(query);
        let elapsed = fetch_start.elapsed();
        let obs = &self.inner.observe;
        obs.record_phase(ObsPhase::OriginFetch, path, elapsed.as_secs_f64() * 1e3);
        let failed = executed.is_err();
        obs.span("origin.fetch", "origin", fetch_start, elapsed, || {
            Some(format!(
                "{}{}",
                if is_remainder { "remainder" } else { "forward" },
                if failed { " failed" } else { "" }
            ))
        });
        let outcome = executed?;
        if let Some(epoch) = self.inner.origin.advertised_epoch() {
            // No-op (and lock-free) unless the epoch actually advances.
            self.set_epoch(epoch);
        }
        let sim_ms = self
            .inner
            .config
            .cost
            .origin_ms(&outcome.stats, is_remainder);
        Ok((outcome.result, sim_ms))
    }

    /// Lifecycle facts about entry `id`, read under the held shard lock.
    /// Stale (or Grace, on the error path) entries carry their exact SQL
    /// for a background refresh.
    fn life_of(&self, store: &CacheStore, id: u64) -> ServeLife {
        if !self.inner.lifecycle_active {
            return ServeLife::default();
        }
        let age_ms = store.entry_age_ms(id);
        match store.freshness(id) {
            Some(Freshness::Fresh) | None => ServeLife {
                stale: false,
                age_ms,
                revalidate: None,
            },
            Some(_) => ServeLife {
                stale: true,
                age_ms,
                revalidate: store.exact_sql_of(id).map(|sql| sql.to_string()),
            },
        }
    }

    /// [`Self::life_of`] for the degraded path: same staleness facts,
    /// but never a revalidation target — the origin is known down.
    fn error_life_of(&self, store: &CacheStore, id: u64) -> ServeLife {
        let mut life = self.life_of(store, id);
        life.revalidate = None;
        life
    }

    /// Folds a response's lifecycle facts into its metrics; when
    /// `revalidate` is allowed and the serving entry was stale, spawns
    /// the background refresh (stale-while-revalidate).
    fn apply_life(&self, metrics: &mut QueryMetrics, life: &ServeLife, revalidate: bool) {
        // `life` already describes exactly the entries whose rows were
        // served (the merge paths absorb per contributing part), and a
        // response passes through `apply_life` at most once — so this
        // is a plain assignment. The old max-fold let the age of an
        // unrelated probed entry leak into the served answer.
        metrics.entry_age_ms = life.age_ms;
        if life.stale {
            metrics.stale = true;
            self.inner.stats.note_stale_hit();
            if revalidate {
                if let Some(sql) = &life.revalidate {
                    self.spawn_revalidation(sql.clone());
                }
            }
        }
    }

    /// Registers `id` in the promotion dedup set and spawns the worker
    /// that parses its slab payload back into a resident entry. A
    /// second disk hit on the same entry while the first promotion is
    /// in flight is a no-op.
    fn spawn_promotion(&self, plan: &DiskPlan) {
        {
            let mut inflight = self
                .inner
                .promoting
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            if !inflight.insert(plan.id) {
                return;
            }
        }
        let handle = self.clone();
        let id = plan.id;
        let residual_key = Arc::clone(&plan.residual_key);
        let slice = plan.slice.clone();
        let spawned = std::thread::Builder::new()
            .name("fp-promote".into())
            .spawn(move || handle.promote_demoted(id, &residual_key, slice));
        match spawned {
            Ok(thread) => self
                .inner
                .reval_threads
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(thread),
            Err(_) => {
                self.inner
                    .promoting
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .remove(&id);
            }
        }
    }

    /// The promotion worker body: parse the pinned slab slice (XML →
    /// tuples, rebuild the columnar form) entirely off-lock, then one
    /// short lock window to swap the entry back into RAM. A payload
    /// that fails to parse drops the demoted entry and counts the
    /// corruption — the next request re-fetches from the origin.
    fn promote_demoted(&self, id: u64, residual_key: &str, slice: SlabSlice) {
        let _trace = self.inner.observe.begin_trace();
        let start = Instant::now();
        let parsed = std::str::from_utf8(slice.xml())
            .ok()
            .and_then(|text| Element::parse(text).ok())
            .and_then(|doc| entry_from_xml(&doc));
        match parsed {
            Some(((_, _, result, _, _, coord_idx), _stamp)) => {
                let result = Arc::new(result);
                let columnar = ColumnarRows::build(&result, &coord_idx).map(Arc::new);
                let (mut store, _) = self.inner.store.lock(residual_key);
                store.promote(id, result, columnar);
            }
            None => {
                // Read-repair: no client request is waiting on this
                // background promotion, so the rewrite must be spawned
                // explicitly — quarantine, then re-fetch the entry's
                // own SQL through the resilient origin path and
                // reinsert (the revalidation machinery is exactly that
                // fetch-and-replace).
                let repair = {
                    let (mut store, _) = self.inner.store.lock(residual_key);
                    store.quarantine_corrupt_demoted(id)
                };
                if let Some(sql) = repair {
                    self.inner.stats.note_read_repair();
                    self.spawn_revalidation(sql.to_string());
                }
            }
        }
        self.inner
            .observe
            .span("promote", "lifecycle", start, start.elapsed(), || None);
        self.inner
            .promoting
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&id);
    }

    /// Registers `sql` in the dedup set and spawns its background
    /// refresh thread. A second stale hit on the same key while the
    /// first refresh is in flight is a no-op — exactly one refresh per
    /// expired key.
    fn spawn_revalidation(&self, sql: String) {
        {
            let mut inflight = self
                .inner
                .revalidating
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            if !inflight.insert(sql.clone()) {
                return;
            }
        }
        let handle = self.clone();
        let spawned = std::thread::Builder::new()
            .name("fp-revalidate".into())
            .spawn({
                let sql = sql.clone();
                move || handle.revalidate(sql)
            });
        match spawned {
            Ok(thread) => self
                .inner
                .reval_threads
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(thread),
            Err(_) => {
                // Could not spawn: release the reservation so a later
                // stale hit can retry.
                self.inner
                    .revalidating
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .remove(&sql);
            }
        }
    }

    /// The background refresh body: re-resolve the entry's own SQL,
    /// skip if someone already refreshed it, fetch on the resilient
    /// origin path, and replace the entry on success. A failed fetch
    /// leaves the stale entry in place — that is what stale-if-error
    /// serves during the outage.
    fn revalidate(&self, sql: String) {
        // Background threads get their own sampled trace: the client
        // request that spawned this refresh already returned.
        let _trace = self.inner.observe.begin_trace();
        let reval_start = Instant::now();
        if let Some(Ok(bound)) = self.inner.manager.resolve_sql(&sql) {
            let already_fresh = {
                let (store, _) = self.inner.store.lock(&bound.residual_key);
                store
                    .lookup_exact(&bound.sql)
                    .and_then(|id| store.freshness(id))
                    == Some(Freshness::Fresh)
            };
            if !already_fresh {
                self.inner.stats.note_revalidation();
                if let Ok((result, _sim_ms)) =
                    self.fetch(&bound.query, false, PathClass::Background)
                {
                    let truncated = bound.query.top.is_some_and(|n| result.len() as u64 >= n);
                    // Prebuild off-lock, like the request path's insert.
                    let result = Arc::new(result);
                    let coord_idx: Option<Vec<usize>> = bound
                        .reg
                        .coord_columns
                        .iter()
                        .map(|c| result.column_index(c))
                        .collect();
                    let bytes = result.xml_bytes();
                    let columnar =
                        ColumnarRows::build(&result, coord_idx.as_deref().unwrap_or(&[]))
                            .map(Arc::new);
                    let (mut store, _) = self.inner.store.lock(&bound.residual_key);
                    store.insert_prebuilt(
                        &bound.residual_key,
                        bound.region.clone(),
                        result,
                        truncated,
                        &bound.sql,
                        bytes,
                        columnar,
                    );
                }
            }
        }
        self.inner.observe.span(
            "revalidate",
            "lifecycle",
            reval_start,
            reval_start.elapsed(),
            || None,
        );
        self.inner
            .revalidating
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&sql);
    }

    fn note_lock_wait(&self, timing: &mut Timing, wait: std::time::Duration) {
        self.inner
            .stats
            .note_lock_wait(u64::try_from(wait.as_nanos()).unwrap_or(u64::MAX));
        timing.lock_wait_ms += wait.as_secs_f64() * 1000.0;
    }

    fn respond(
        &self,
        result: Arc<ResultSet>,
        outcome: Outcome,
        rows_from_cache: usize,
        sim_ms: f64,
        timing: &Timing,
        coalesced: bool,
    ) -> ProxyResponse {
        let metrics = self.metrics_for(
            result.len(),
            outcome,
            rows_from_cache,
            sim_ms,
            timing,
            coalesced,
        );
        ProxyResponse { result, metrics }
    }

    fn metrics_for(
        &self,
        rows_total: usize,
        outcome: Outcome,
        rows_from_cache: usize,
        sim_ms: f64,
        timing: &Timing,
        coalesced: bool,
    ) -> QueryMetrics {
        let proxy_ms = ms_since(timing.start);
        QueryMetrics {
            outcome,
            response_ms: sim_ms + proxy_ms,
            sim_ms,
            proxy_ms,
            check_ms: timing.check_ms,
            local_ms: timing.local_ms,
            rows_total,
            rows_from_cache,
            coalesced,
            lock_wait_ms: timing.lock_wait_ms,
            rows_scanned: 0,
            rows_pruned: 0,
            local_fallback: false,
            degraded: false,
            stale: false,
            entry_age_ms: 0.0,
            disk_hit: false,
        }
    }

    /// End-of-request snapshot check: when persistence is configured and
    /// the virtual-clock schedule is due, write the shards that changed.
    /// `try_lock` keeps concurrent requests from queueing behind one
    /// writer; write errors are swallowed (a failed snapshot must never
    /// fail a query — the previous snapshot generation stays on disk).
    fn maybe_snapshot(&self) {
        let (Some(sched), Some(policy)) = (&self.inner.snap, &self.inner.config.lifecycle.snapshot)
        else {
            return;
        };
        let Ok(mut s) = sched.try_lock() else { return };
        let now = self.inner.clock.now();
        if now < s.next_due {
            return;
        }
        s.next_due = now + policy.interval;
        let _ = self.write_snapshots(&policy.dir, &mut s.written_gens);
    }

    /// Forces a snapshot pass now (shutdown hooks, tests). Returns how
    /// many shard files were written; unchanged shards are skipped.
    ///
    /// # Errors
    /// Never fails today: a shard whose snapshot write errors (ENOSPC,
    /// EIO) is counted (`snapshot_io_errors`), left dirty so the next
    /// pass retries it, and skipped — a failed snapshot must never
    /// poison the serving path, which keeps answering from RAM. The
    /// `Result` stays for callers that match on it. A partially
    /// completed pass leaves every already-written shard file valid
    /// (each is written to a temporary file and atomically renamed).
    pub fn snapshot_now(&self) -> io::Result<usize> {
        let (Some(sched), Some(policy)) = (&self.inner.snap, &self.inner.config.lifecycle.snapshot)
        else {
            return Ok(0);
        };
        let mut s = sched.lock().unwrap_or_else(|e| e.into_inner());
        Ok(self.write_snapshots(&policy.dir, &mut s.written_gens))
    }

    /// One snapshot pass: serialize each dirty shard's entries (with
    /// relative lifecycle stamps) into the checksummed segment format.
    /// Write errors never escape: the shard stays dirty (its previous
    /// snapshot generation stays on disk, so at worst a restart replays
    /// older metadata) and the error is counted.
    fn write_snapshots(&self, dir: &Path, written_gens: &mut [u64]) -> usize {
        let pass_start = Instant::now();
        if std::fs::create_dir_all(dir).is_err() {
            self.inner.stats.note_snapshot_io_error();
            return 0;
        }
        let epoch = self.current_epoch();
        let mut written = 0;
        for (i, written_gen) in written_gens.iter_mut().enumerate() {
            let dirty = {
                let mut store = self.inner.store.lock_shard(i);
                let generation = store.generation();
                if generation == *written_gen {
                    None
                } else if store.has_tier() {
                    // Tier-unified warm restart: payloads already live in
                    // the slab, so the snapshot is one tiny record per
                    // entry (segment location + lifecycle stamp) —
                    // proportional to entry count, not cached bytes.
                    match store.write_tier_meta() {
                        Ok(_) => {
                            *written_gen = generation;
                            written += 1;
                        }
                        Err(_) => self.inner.stats.note_snapshot_io_error(),
                    }
                    None
                } else {
                    let now = store.now();
                    let segments: Vec<Vec<u8>> = store
                        .iter_entries()
                        .map(|e| entry_to_xml(e, now).to_xml().into_bytes())
                        .collect();
                    Some((generation, segments))
                }
            };
            let Some((generation, segments)) = dirty else {
                continue;
            };
            match write_snapshot_file(&dir.join(format!("shard_{i}.fpsnap")), epoch, &segments) {
                Ok(()) => {
                    *written_gen = generation;
                    written += 1;
                }
                Err(_) => self.inner.stats.note_snapshot_io_error(),
            }
        }
        if written > 0 {
            self.inner.stats.note_snapshot_writes(written);
            let obs = &self.inner.observe;
            obs.record_phase(
                ObsPhase::SnapshotWrite,
                PathClass::Background,
                ms_since(pass_start),
            );
            obs.span(
                "snapshot.write",
                "lifecycle",
                pass_start,
                pass_start.elapsed(),
                || Some(format!("files={written}")),
            );
        }
        written
    }

    /// Startup recovery: load every `*.fpsnap` file in `dir`,
    /// corruption-tolerantly — an unreadable file or segment is counted
    /// and skipped, never fatal. Entries are re-anchored onto the live
    /// clock via their relative stamps; entries from an older epoch (or
    /// aged past every serve window) are dropped by the store. Finishes
    /// by advancing to the highest epoch seen on disk.
    fn recover_from(&self, dir: &Path) {
        // Recovery runs at build time, before any request: give it its
        // own sampled trace so the startup cost is visible.
        let _trace = self.inner.observe.begin_trace();
        let recover_start = Instant::now();
        let Ok(listing) = std::fs::read_dir(dir) else {
            return;
        };
        let mut files: Vec<std::path::PathBuf> = listing
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "fpsnap"))
            .collect();
        files.sort();
        let mut max_epoch = self.inner.config.lifecycle.epoch;
        let mut recovered = 0usize;
        for path in &files {
            match read_snapshot_file(path) {
                // Bad magic/version/header: the whole file is one
                // corrupt unit.
                Err(_) => self.inner.stats.note_snapshot_corrupt(1),
                Ok(file) => {
                    max_epoch = max_epoch.max(file.epoch);
                    if file.corrupt_segments > 0 {
                        self.inner
                            .stats
                            .note_snapshot_corrupt(file.corrupt_segments);
                    }
                    for segment in &file.segments {
                        let parsed = std::str::from_utf8(segment)
                            .ok()
                            .and_then(|text| Element::parse(text).ok())
                            .and_then(|doc| entry_from_xml(&doc));
                        match parsed {
                            Some((
                                (residual_key, region, result, truncated, sql, coord_idx),
                                stamp,
                            )) => {
                                let (mut store, _) = self.inner.store.lock(&residual_key);
                                let restored = store.insert_restored(
                                    &residual_key,
                                    region,
                                    result,
                                    truncated,
                                    &sql,
                                    &coord_idx,
                                    &stamp,
                                );
                                if restored.is_some() {
                                    recovered += 1;
                                }
                            }
                            // A checksum-valid segment that fails to
                            // parse still counts as corrupt.
                            None => self.inner.stats.note_snapshot_corrupt(1),
                        }
                    }
                }
            }
        }
        if recovered > 0 {
            self.inner.stats.note_recovered_entries(recovered);
        }
        self.set_epoch(max_epoch);
        let obs = &self.inner.observe;
        obs.record_phase(
            ObsPhase::SnapshotRecover,
            PathClass::Background,
            ms_since(recover_start),
        );
        obs.span(
            "snapshot.recover",
            "lifecycle",
            recover_start,
            recover_start.elapsed(),
            || Some(format!("entries={recovered}")),
        );
    }
}

/// The §3.2 tradeoff gate against a single shard (see
/// [`crate::proxy::FunctionProxy`]).
fn coverage_worthwhile(
    config: &ProxyConfig,
    store: &CacheStore,
    bound: &BoundQuery,
    ids: &[u64],
) -> bool {
    let threshold = config.min_overlap_coverage;
    if threshold <= 0.0 {
        return true;
    }
    let regions: Vec<&fp_geometry::Region> = ids
        .iter()
        .filter_map(|id| store.peek(*id).map(|e| &e.region))
        .collect();
    if regions.is_empty() {
        return false;
    }
    let coverage = fp_geometry::volume::monte_carlo_union_coverage(&bound.region, &regions, 512);
    coverage >= threshold
}

fn ms_since(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::origin::SiteOrigin;
    use crate::sim::CostModel;
    use fp_skyserver::{Catalog, CatalogSpec, SkySite};

    fn handle(scheme: Scheme) -> ProxyHandle {
        let site = SkySite::new(Catalog::generate(&CatalogSpec::small_test()));
        ProxyHandle::with_shards(
            TemplateManager::with_sky_defaults(),
            Arc::new(SiteOrigin::new(site)),
            ProxyConfig::default()
                .with_scheme(scheme)
                .with_cost(CostModel::free()),
            4,
        )
    }

    fn radial(h: &ProxyHandle, ra: f64, dec: f64, radius: f64) -> ProxyResponse {
        h.handle_form(
            "/search/radial",
            &[
                ("ra".to_string(), ra.to_string()),
                ("dec".to_string(), dec.to_string()),
                ("radius".to_string(), radius.to_string()),
            ],
        )
        .unwrap()
    }

    fn ids_of(r: &ProxyResponse) -> Vec<i64> {
        let k = r.result.column_index("objID").unwrap();
        let mut ids: Vec<i64> = r
            .result
            .rows
            .iter()
            .map(|row| row[k].as_i64().unwrap())
            .collect();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn handle_serves_exact_and_contained_like_the_proxy() {
        let h = handle(Scheme::FullSemantic);
        let big = radial(&h, 185.0, 0.0, 25.0);
        assert_eq!(big.metrics.outcome, Outcome::Forwarded);
        let again = radial(&h, 185.0, 0.0, 25.0);
        assert_eq!(again.metrics.outcome, Outcome::Exact);
        let small = radial(&h, 185.0, 0.0, 10.0);
        assert_eq!(small.metrics.outcome, Outcome::Contained);

        let oracle = handle(Scheme::NoCache);
        let truth = radial(&oracle, 185.0, 0.0, 10.0);
        assert_eq!(ids_of(&small), ids_of(&truth));
    }

    #[test]
    fn handle_merges_overlap_and_region_containment() {
        let h = handle(Scheme::FullSemantic);
        radial(&h, 185.0, 0.0, 20.0);
        let o = radial(&h, 185.0 + 25.0 / 60.0, 0.0, 15.0);
        assert_eq!(o.metrics.outcome, Outcome::Overlap);
        assert!(o.metrics.rows_from_cache > 0);

        let oracle = handle(Scheme::NoCache);
        let truth = radial(&oracle, 185.0 + 25.0 / 60.0, 0.0, 15.0);
        assert_eq!(ids_of(&o), ids_of(&truth));

        let rc = handle(Scheme::RegionContainment);
        radial(&rc, 185.0 - 10.0 / 60.0, 0.0, 8.0);
        radial(&rc, 185.0 + 10.0 / 60.0, 0.0, 8.0);
        let big = radial(&rc, 185.0, 0.0, 40.0);
        assert_eq!(big.metrics.outcome, Outcome::RegionContainment);
        assert_eq!(rc.cache_stats().entries, 1);
        assert_eq!(rc.cache_stats().compactions, 2);
        let truth = radial(&oracle, 185.0, 0.0, 40.0);
        assert_eq!(ids_of(&big), ids_of(&truth));
    }

    #[test]
    fn passive_handle_hits_only_exact_text() {
        let h = handle(Scheme::Passive);
        assert_eq!(
            radial(&h, 185.0, 0.0, 20.0).metrics.outcome,
            Outcome::Forwarded
        );
        assert_eq!(radial(&h, 185.0, 0.0, 20.0).metrics.outcome, Outcome::Exact);
        assert_eq!(
            radial(&h, 185.0, 0.0, 10.0).metrics.outcome,
            Outcome::Forwarded
        );
    }

    #[test]
    fn no_cache_handle_always_forwards() {
        let h = handle(Scheme::NoCache);
        radial(&h, 185.0, 0.0, 20.0);
        radial(&h, 185.0, 0.0, 20.0);
        assert_eq!(h.cache_stats().entries, 0);
        assert_eq!(h.runtime_stats().requests, 2);
    }

    #[test]
    fn clones_share_one_cache() {
        let h = handle(Scheme::FullSemantic);
        let clone = h.clone();
        radial(&h, 185.0, 0.0, 20.0);
        let hit = radial(&clone, 185.0, 0.0, 20.0);
        assert_eq!(hit.metrics.outcome, Outcome::Exact);
        assert_eq!(clone.runtime_stats().requests, 2);
    }

    /// A [`SiteOrigin`] behind a closable gate: while closed, `execute`
    /// blocks (after counting its arrival) until the gate reopens — the
    /// measuring device for the remainder-batching rendezvous.
    struct GateOrigin {
        site: SiteOrigin,
        open: Mutex<bool>,
        cv: Condvar,
        executes: std::sync::atomic::AtomicUsize,
    }

    impl GateOrigin {
        fn new() -> Self {
            let site = SkySite::new(Catalog::generate(&CatalogSpec::small_test()));
            GateOrigin {
                site: SiteOrigin::new(site),
                open: Mutex::new(true),
                cv: Condvar::new(),
                executes: std::sync::atomic::AtomicUsize::new(0),
            }
        }

        fn set_open(&self, open: bool) {
            *self.open.lock().unwrap() = open;
            self.cv.notify_all();
        }

        fn executes(&self) -> usize {
            self.executes.load(Ordering::SeqCst)
        }
    }

    impl Origin for GateOrigin {
        fn execute(
            &self,
            query: &Query,
        ) -> Result<fp_skyserver::result::QueryOutcome, crate::origin::OriginError> {
            self.executes.fetch_add(1, Ordering::SeqCst);
            let mut open = self.open.lock().unwrap();
            while !*open {
                open = self.cv.wait(open).unwrap();
            }
            drop(open);
            self.site.execute(query)
        }
    }

    fn spin_until(deadline_ms: u64, mut done: impl FnMut() -> bool) {
        let start = Instant::now();
        while !done() {
            assert!(
                start.elapsed().as_millis() < deadline_ms as u128,
                "condition not reached within {deadline_ms}ms"
            );
            std::thread::yield_now();
        }
    }

    #[test]
    fn concurrent_overlap_remainders_share_one_combined_round_trip() {
        let origin = Arc::new(GateOrigin::new());
        let h = ProxyHandle::with_shards(
            TemplateManager::with_sky_defaults(),
            Arc::clone(&origin) as Arc<dyn Origin>,
            ProxyConfig::default()
                .with_scheme(Scheme::FullSemantic)
                .with_cost(CostModel::free()),
            1,
        );

        // Seed one cached entry every later query overlaps.
        radial(&h, 185.0, 0.0, 20.0);
        assert_eq!(origin.executes(), 1);

        // Close the gate and launch the batch leader: its remainder
        // fetch parks inside the origin, holding the batch open.
        origin.set_open(false);
        let queries = [
            (185.0 + 25.0 / 60.0, 0.0, 15.0),
            (185.0 - 25.0 / 60.0, 0.1, 15.0),
            (185.0, 0.4, 15.0),
        ];
        let spawn = |&(ra, dec, r): &(f64, f64, f64)| {
            let h = h.clone();
            std::thread::spawn(move || radial(&h, ra, dec, r))
        };
        let leader = spawn(&queries[0]);
        spin_until(10_000, || origin.executes() == 2);

        // Two more overlap misses arrive mid-flight and must enlist.
        let followers: Vec<_> = queries[1..].iter().map(spawn).collect();
        spin_until(10_000, || {
            let table = h.inner.remainder_batches.lock().unwrap();
            table.values().map(|b| b.waiters.len()).sum::<usize>() == 2
        });

        origin.set_open(true);
        let mut responses = vec![leader.join().unwrap()];
        for f in followers {
            responses.push(f.join().unwrap());
        }

        // Seed + leader remainder + ONE combined fetch for both
        // followers: three origin round trips, not four.
        assert_eq!(origin.executes(), 3);
        let stats = h.runtime_stats();
        assert_eq!(stats.remainder_batches, 1);
        assert_eq!(stats.batched_remainders, 2);

        // Soundness: every batched answer is row-identical to a
        // no-cache oracle's.
        let oracle = handle(Scheme::NoCache);
        for (response, &(ra, dec, r)) in responses.iter().zip(&queries) {
            assert_eq!(response.metrics.outcome, Outcome::Overlap);
            assert!(response.metrics.rows_from_cache > 0);
            assert_eq!(ids_of(response), ids_of(&radial(&oracle, ra, dec, r)));
        }
    }

    #[test]
    fn adaptive_handle_abandons_expensive_overlap_handling() {
        // Remainder trips cost a fortune, plain forwards are cheap:
        // the paper's "First loses" regime. The adaptive runtime must
        // discover this and stop taking the overlap path.
        let site = SkySite::new(Catalog::generate(&CatalogSpec::small_test()));
        let cost = CostModel {
            rtt_ms: 100.0,
            remainder_overhead_ms: 10_000.0,
            ..CostModel::free()
        };
        let h = ProxyHandle::with_shards(
            TemplateManager::with_sky_defaults(),
            Arc::new(SiteOrigin::new(site)),
            ProxyConfig::default()
                .with_adaptive_params(crate::cache::ProfitParams {
                    explore_samples: 12,
                    refresh_samples: 4,
                    reeval_every: 1000,
                    ..Default::default()
                })
                .with_cost(cost),
            2,
        );

        // Exploration: rotations of fresh-forward, exact repeat, and
        // overlap keep every relationship class observable.
        for i in 0..8 {
            let far = 100.0 + i as f64;
            radial(&h, far, 30.0, 5.0);
            radial(&h, far, 30.0, 5.0);
            radial(&h, 185.0 + i as f64 * 0.05, 0.0, 15.0);
        }

        let est = h.profit_estimate("radial").expect("template observed");
        assert!(!est.exploring, "24 samples exceed the 12-sample window");
        assert!(
            !est.scheme.handles_overlap(),
            "10s remainders vs 100ms forwards must turn overlap handling off, got {}",
            est.scheme
        );
        let stats = h.runtime_stats();
        assert!(stats.scheme_switches >= 1);
        assert_eq!(stats.adaptive_templates, 1);
        assert!(stats.scheme_serves[Scheme::FullSemantic.index()] > 0);

        // Committed: a fresh overlapping query now forwards instead of
        // paying the remainder price.
        let post = radial(&h, 185.0 - 0.03, 0.01, 15.0);
        assert_eq!(post.metrics.outcome, Outcome::Forwarded);
        assert!(stats.scheme_serves.iter().sum::<usize>() >= 24);
    }

    #[test]
    fn fixed_configs_never_consult_the_profit_model() {
        let h = handle(Scheme::FullSemantic);
        radial(&h, 185.0, 0.0, 20.0);
        radial(&h, 185.0, 0.0, 20.0);
        assert!(h.profit_estimate("radial").is_none());
        let stats = h.runtime_stats();
        assert_eq!(stats.scheme_switches, 0);
        assert_eq!(stats.adaptive_templates, 0);
        assert_eq!(stats.scheme_serves[Scheme::FullSemantic.index()], 2);
    }

    #[test]
    fn origin_fetches_seed_measured_refetch_costs() {
        // With a real (non-free) cost model, the inserted entry's
        // refetch estimate must come from the measured fetch, not the
        // size-proportional default.
        let site = SkySite::new(Catalog::generate(&CatalogSpec::small_test()));
        let h = ProxyHandle::with_shards(
            TemplateManager::with_sky_defaults(),
            Arc::new(SiteOrigin::new(site)),
            ProxyConfig::default()
                .with_scheme(Scheme::FullSemantic)
                .with_replacement(crate::cache::Replacement::CostAware),
            1,
        );
        let r = radial(&h, 185.0, 0.0, 20.0);
        assert!(r.metrics.sim_ms > 0.0);
        let again = radial(&h, 185.0, 0.0, 20.0);
        assert_eq!(again.metrics.outcome, Outcome::Exact);
    }

    #[test]
    fn raw_sql_paths_match_the_proxy() {
        let h = handle(Scheme::FullSemantic);
        let sql = "SELECT p.objID, p.ra, p.dec, p.cx, p.cy, p.cz, p.u, p.g, p.r, p.i, p.z \
                   FROM fGetNearbyObjEq(185.0, 0.0, 20.0) n \
                   JOIN PhotoPrimary p ON n.objID = p.objID";
        assert_eq!(
            h.handle_sql(sql).unwrap().metrics.outcome,
            Outcome::Forwarded
        );
        assert_eq!(h.handle_sql(sql).unwrap().metrics.outcome, Outcome::Exact);

        // Non-template SQL is forwarded uncached.
        let raw = "SELECT TOP 3 p.objID FROM fGetNearbyObjEq(185.0, 0.0, 20.0) n \
                   JOIN PhotoPrimary p ON n.objID = p.objID WHERE p.r < 19.0";
        assert_eq!(
            h.handle_sql(raw).unwrap().metrics.outcome,
            Outcome::Forwarded
        );
        assert_eq!(
            h.handle_sql(raw).unwrap().metrics.outcome,
            Outcome::Forwarded
        );
    }
}
