//! [`ProxyHandle`]: the shared, thread-safe proxy front.
//!
//! The handle serves the same decision procedure as
//! [`crate::proxy::FunctionProxy`], restructured into phases so no lock
//! is ever held across an origin fetch:
//!
//! 1. **Cache phase** (one shard lock): exact lookup, relationship
//!    classification, and — when possible — the complete answer (exact
//!    hit or local evaluation over a containing entry). Misses leave
//!    the phase with an origin plan: which query to send and what
//!    cached contribution to merge in.
//! 2. **Flight phase** (flight-table lock only): the request joins or
//!    leads the single flight for its canonical SQL. A leader re-runs
//!    the cache phase after registering its flight; together with
//!    leaders inserting results *before* resolving, that closes the
//!    race where a fetch lands between a miss and the join, so
//!    concurrent identical queries issue exactly one origin fetch.
//! 3. **Origin phase** (no locks): the leader executes its plan, takes
//!    the shard lock once more to insert/compact, resolves the flight.
//!
//! Followers either adopt the leader's response (exact) or retry the
//! cache phase once the flight lands (contained); a failed leader
//! wakes its followers to retry, bounded by
//! [`MAX_COALESCE_ATTEMPTS`], after which a request serves itself
//! without coalescing.

use crate::cache::{CacheStats, CacheStore};
use crate::config::ProxyConfig;
use crate::metrics::{Outcome, QueryMetrics};
use crate::origin::Origin;
use crate::proxy::ProxyResponse;
use crate::query::{classify, eval_region_over, merge_results, remainder_query, QueryStatus};
use crate::runtime::shard::ShardedStore;
use crate::runtime::singleflight::{Coalesce, Joined, SingleFlight};
use crate::runtime::{RuntimeSnapshot, RuntimeStats};
use crate::schemes::Scheme;
use crate::template::{BoundQuery, TemplateManager};
use crate::ProxyError;
use fp_skyserver::ResultSet;
use fp_sqlmini::Query;
use std::sync::Arc;
use std::time::Instant;

/// How many times a request retries after following a flight that
/// landed without helping it (failed leader, evicted entry) before it
/// serves itself without coalescing.
pub const MAX_COALESCE_ATTEMPTS: usize = 3;

/// A cheaply cloneable, thread-safe handle to one shared proxy.
///
/// All methods take `&self`; clones share the cache shards, the flight
/// table, and the runtime counters. This is the front the HTTP router
/// and the multi-client replayer use.
pub struct ProxyHandle {
    inner: Arc<Runtime>,
}

impl Clone for ProxyHandle {
    fn clone(&self) -> Self {
        ProxyHandle {
            inner: Arc::clone(&self.inner),
        }
    }
}

struct Runtime {
    manager: TemplateManager,
    store: ShardedStore,
    flights: SingleFlight,
    stats: RuntimeStats,
    config: ProxyConfig,
    origin: Arc<dyn Origin>,
}

/// Wall-clock bookkeeping for one request, accumulated across phases.
struct Timing {
    start: Instant,
    check_ms: f64,
    local_ms: f64,
    lock_wait_ms: f64,
}

impl Timing {
    fn begin() -> Self {
        Timing {
            start: Instant::now(),
            check_ms: 0.0,
            local_ms: 0.0,
            lock_wait_ms: 0.0,
        }
    }
}

/// What the cache phase decided.
enum Phase {
    /// Fully answered from the cache.
    Served(ProxyResponse),
    /// Origin work is needed; here is the plan.
    Origin(Box<OriginPlan>),
}

/// Everything a leader needs to finish a request off-lock: the query to
/// send, the cached contribution extracted while the shard lock was
/// held, and the entries to compact afterwards.
struct OriginPlan {
    query: Query,
    is_remainder: bool,
    /// Merged probe rows (region containment / overlap paths).
    cached_part: Option<ResultSet>,
    /// Simulated cost of reading the probed entries.
    probe_sim_ms: f64,
    /// Entries subsumed by the merged result (compacted after insert).
    compact_ids: Vec<u64>,
    outcome: Outcome,
}

impl OriginPlan {
    fn forward(bound: &BoundQuery, compact_ids: Vec<u64>) -> Box<Self> {
        Box::new(OriginPlan {
            query: bound.query.clone(),
            is_remainder: false,
            cached_part: None,
            probe_sim_ms: 0.0,
            compact_ids,
            outcome: Outcome::Forwarded,
        })
    }
}

impl ProxyHandle {
    /// Builds a handle with one cache shard per available CPU (clamped
    /// to 64).
    pub fn new(manager: TemplateManager, origin: Arc<dyn Origin>, config: ProxyConfig) -> Self {
        let shards = std::thread::available_parallelism().map_or(8, |n| n.get().min(64));
        Self::with_shards(manager, origin, config, shards)
    }

    /// Builds a handle with an explicit shard count (at least one).
    pub fn with_shards(
        manager: TemplateManager,
        origin: Arc<dyn Origin>,
        config: ProxyConfig,
        shards: usize,
    ) -> Self {
        let store = ShardedStore::new(&config, shards);
        ProxyHandle {
            inner: Arc::new(Runtime {
                manager,
                store,
                flights: SingleFlight::new(),
                stats: RuntimeStats::default(),
                config,
                origin,
            }),
        }
    }

    /// The template registry.
    pub fn manager(&self) -> &TemplateManager {
        &self.inner.manager
    }

    /// The active configuration.
    pub fn config(&self) -> &ProxyConfig {
        &self.inner.config
    }

    /// Number of cache shards.
    pub fn shard_count(&self) -> usize {
        self.inner.store.shard_count()
    }

    /// Cache statistics aggregated across shards.
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.store.stats()
    }

    /// A snapshot of the runtime's concurrency counters.
    pub fn runtime_stats(&self) -> RuntimeSnapshot {
        self.inner.stats.snapshot(
            self.inner.flights.in_flight_peak(),
            self.inner.store.shard_count(),
        )
    }

    /// Serves an HTML-form request; see
    /// [`crate::proxy::FunctionProxy::handle_form`].
    ///
    /// # Errors
    /// Propagates resolution failures and origin errors.
    pub fn handle_form(
        &self,
        path: &str,
        fields: &[(String, String)],
    ) -> Result<ProxyResponse, ProxyError> {
        let bound = self.inner.manager.resolve_form(path, fields)?;
        self.handle_bound(bound)
    }

    /// Serves a raw SQL request; see
    /// [`crate::proxy::FunctionProxy::handle_sql`].
    ///
    /// # Errors
    /// Propagates resolution failures and origin errors.
    pub fn handle_sql(&self, sql: &str) -> Result<ProxyResponse, ProxyError> {
        match self.inner.manager.resolve_sql(sql) {
            Some(bound) => self.handle_bound(bound?),
            None => {
                self.inner.stats.note_request();
                let query = fp_sqlmini::parse_query(sql)
                    .map_err(|e| ProxyError::BadRequest(e.to_string()))?;
                let timing = Timing::begin();
                let (result, sim_ms) = self.fetch(&query, false)?;
                Ok(self.respond(result, Outcome::Forwarded, 0, sim_ms, &timing, false))
            }
        }
    }

    /// Serves an already-resolved query from any thread.
    ///
    /// # Errors
    /// Propagates origin errors; cache-side failures fall back to
    /// forwarding instead of erroring.
    pub fn handle_bound(&self, bound: BoundQuery) -> Result<ProxyResponse, ProxyError> {
        self.inner.stats.note_request();
        match self.inner.config.scheme {
            Scheme::NoCache => {
                let timing = Timing::begin();
                let (result, sim_ms) = self.fetch(&bound.query, false)?;
                Ok(self.respond(result, Outcome::Forwarded, 0, sim_ms, &timing, false))
            }
            _ => self.serve_caching(bound),
        }
    }

    /// The caching schemes' request loop: cache phase, then flight
    /// phase, retried while coalescing fails to help.
    fn serve_caching(&self, bound: BoundQuery) -> Result<ProxyResponse, ProxyError> {
        let mut timing = Timing::begin();
        // Passive caching cannot answer a query from a containing
        // entry, so it must not wait on a merely containing flight.
        let allow_contained = self.inner.config.scheme != Scheme::Passive;

        // Fast path: a cache hit needs no flight-table traffic.
        if let Phase::Served(response) = self.cache_phase(&bound, &mut timing, false) {
            return Ok(response);
        }

        for _ in 0..MAX_COALESCE_ATTEMPTS {
            match self.inner.flights.join(
                &bound.sql,
                &bound.residual_key,
                &bound.region,
                allow_contained,
            ) {
                Joined::Lead(lease) => {
                    self.inner.stats.note_flight_led();
                    // Re-check under the registered flight: a fetch that
                    // landed between our miss and this join is visible
                    // now, because leaders insert before resolving.
                    let response = match self.cache_phase(&bound, &mut timing, false) {
                        Phase::Served(response) => response,
                        Phase::Origin(plan) => self.execute_plan(&bound, *plan, &mut timing)?,
                    };
                    lease.resolve(response.clone());
                    return Ok(response);
                }
                Joined::Follow(Coalesce::Exact, ticket) => {
                    if let Some(leader) = ticket.wait() {
                        self.inner.stats.note_coalesced_exact();
                        return Ok(self.adopt(leader, &timing));
                    }
                    // Leader failed: retry, maybe leading this time.
                }
                Joined::Follow(Coalesce::Contained, ticket) => {
                    let landed = ticket.wait().is_some();
                    if let Phase::Served(response) = self.cache_phase(&bound, &mut timing, landed) {
                        if landed {
                            self.inner.stats.note_coalesced_contained();
                        }
                        return Ok(response);
                    }
                    // The flight didn't leave a usable entry (failed
                    // leader, truncated or evicted result): retry.
                }
            }
        }

        // Coalescing kept failing; serve uncoalesced rather than loop.
        match self.cache_phase(&bound, &mut timing, false) {
            Phase::Served(response) => Ok(response),
            Phase::Origin(plan) => self.execute_plan(&bound, *plan, &mut timing),
        }
    }

    /// One pass over the shard: classify and either answer from the
    /// cache or plan the origin work. Holds the shard lock throughout;
    /// never fetches.
    fn cache_phase(&self, bound: &BoundQuery, timing: &mut Timing, coalesced: bool) -> Phase {
        let (mut store, wait) = self.inner.store.lock(&bound.residual_key);
        self.note_lock_wait(timing, wait);
        let config = &self.inner.config;

        let check_start = Instant::now();
        let status = match store.lookup_exact(&bound.sql) {
            Some(id) => QueryStatus::ExactMatch(id),
            // Passive caching only ever matches exact text.
            None if config.scheme == Scheme::Passive => QueryStatus::Disjoint,
            None => classify(&store, bound),
        };
        timing.check_ms += ms_since(check_start);

        match status {
            QueryStatus::ExactMatch(id) => {
                let entry = store.get(id).expect("exact map is consistent");
                let sim_ms = config.cost.cache_read_ms(entry.bytes);
                let result = entry.result.clone();
                let cached = result.len();
                Phase::Served(self.respond(
                    result,
                    Outcome::Exact,
                    cached,
                    sim_ms,
                    timing,
                    coalesced,
                ))
            }

            QueryStatus::ContainedBy(id) => {
                let local_start = Instant::now();
                let entry = store.get(id).expect("classify returned a live id");
                let sim_ms = config.cost.cache_read_ms(entry.bytes);
                let filtered = entry
                    .coord_indexes(&bound.reg.coord_columns)
                    .and_then(|idx| eval_region_over(&entry.result, &idx, &bound.region));
                timing.local_ms += ms_since(local_start);
                match filtered {
                    Some(mut result) => {
                        if let Some(n) = bound.query.top {
                            result.rows.truncate(n as usize);
                        }
                        let cached = result.len();
                        Phase::Served(self.respond(
                            result,
                            Outcome::Contained,
                            cached,
                            sim_ms,
                            timing,
                            coalesced,
                        ))
                    }
                    // Malformed cached document: fall back to the origin.
                    None => Phase::Origin(OriginPlan::forward(bound, Vec::new())),
                }
            }

            QueryStatus::RegionContainment(ids) if config.scheme.handles_region_containment() => {
                self.merge_plan(
                    &mut store, bound, ids, /*probe_filters=*/ false, timing,
                )
            }

            QueryStatus::Overlapping(ids)
                if config.scheme.handles_overlap()
                    && coverage_worthwhile(config, &store, bound, &ids) =>
            {
                self.merge_plan(&mut store, bound, ids, /*probe_filters=*/ true, timing)
            }

            QueryStatus::RegionContainment(_)
            | QueryStatus::Overlapping(_)
            | QueryStatus::Disjoint => Phase::Origin(OriginPlan::forward(bound, Vec::new())),
        }
    }

    /// Plans the merge paths (region containment / overlap): extracts
    /// the cached contribution under the held lock so the fetch can run
    /// lock-free. Mirrors [`crate::proxy::FunctionProxy`]'s merge
    /// procedure.
    fn merge_plan(
        &self,
        store: &mut CacheStore,
        bound: &BoundQuery,
        mut ids: Vec<u64>,
        probe_filters: bool,
        timing: &mut Timing,
    ) -> Phase {
        let config = &self.inner.config;
        // Remainder queries need server support and a TOP-free query.
        if !self.inner.origin.supports_remainder() || bound.query.top.is_some() {
            // Region containment: the forwarded result still covers the
            // subsumed entries, so compaction remains valid.
            let compact_ids = if probe_filters { Vec::new() } else { ids };
            return Phase::Origin(OriginPlan::forward(bound, compact_ids));
        }

        // Bound the fan-in; prefer the largest cached parts.
        ids.sort_by_key(|id| std::cmp::Reverse(store.peek(*id).map_or(0, |e| e.bytes)));
        ids.truncate(config.max_merge_entries);

        // Probe phase: collect the cached contribution.
        let local_start = Instant::now();
        let mut probe_sim_ms = 0.0;
        let mut probes: Vec<ResultSet> = Vec::with_capacity(ids.len());
        for &id in &ids {
            let entry = store.peek(id).expect("classify returned live ids");
            probe_sim_ms += config.cost.cache_read_ms(entry.bytes);
            let part = if probe_filters {
                match entry
                    .coord_indexes(&bound.reg.coord_columns)
                    .and_then(|idx| eval_region_over(&entry.result, &idx, &bound.region))
                {
                    Some(p) => p,
                    None => return Phase::Origin(OriginPlan::forward(bound, Vec::new())),
                }
            } else {
                entry.result.clone()
            };
            probes.push(part);
        }
        let probe_refs: Vec<&ResultSet> = probes.iter().collect();
        let cached_part = merge_results(&bound.reg.key_column, &probe_refs);

        // Remainder phase setup (the fetch itself happens off-lock).
        let exclude: Vec<fp_geometry::Region> = ids
            .iter()
            .map(|id| store.peek(*id).expect("live id").region.clone())
            .collect();
        let exclude_refs: Vec<&fp_geometry::Region> = exclude.iter().collect();
        timing.local_ms += ms_since(local_start);
        let Some(rq) = remainder_query(bound, &exclude_refs) else {
            return Phase::Origin(OriginPlan::forward(bound, Vec::new()));
        };

        let (compact_ids, outcome) = if probe_filters {
            (Vec::new(), Outcome::Overlap)
        } else {
            (ids, Outcome::RegionContainment)
        };
        Phase::Origin(Box::new(OriginPlan {
            query: rq,
            is_remainder: true,
            cached_part: Some(cached_part),
            probe_sim_ms,
            compact_ids,
            outcome,
        }))
    }

    /// The leader's origin phase: fetch (no locks), merge, then one
    /// more shard-lock window to insert and compact.
    fn execute_plan(
        &self,
        bound: &BoundQuery,
        plan: OriginPlan,
        timing: &mut Timing,
    ) -> Result<ProxyResponse, ProxyError> {
        let (fetched, origin_sim_ms) = self.fetch(&plan.query, plan.is_remainder)?;

        let (result, rows_from_cache, truncated) = match plan.cached_part {
            Some(part) => {
                let merge_start = Instant::now();
                let merged = merge_results(&bound.reg.key_column, &[&part, &fetched]);
                timing.local_ms += ms_since(merge_start);
                (merged, part.len(), false)
            }
            None => {
                let truncated = bound.query.top.is_some_and(|n| fetched.len() as u64 >= n);
                (fetched, 0, truncated)
            }
        };

        {
            let (mut store, wait) = self.inner.store.lock(&bound.residual_key);
            self.note_lock_wait(timing, wait);
            if self.inner.config.scheme.caches() {
                store.insert(
                    &bound.residual_key,
                    bound.region.clone(),
                    result.clone(),
                    truncated,
                    &bound.sql,
                );
            }
            // Some ids may have been evicted while we fetched; compact
            // skips missing entries, and ids are never reused.
            store.compact(&plan.compact_ids);
        }

        Ok(self.respond(
            result,
            plan.outcome,
            rows_from_cache,
            origin_sim_ms + plan.probe_sim_ms,
            timing,
            false,
        ))
    }

    /// Builds an exact follower's response from the leader's. The
    /// simulated cost stays the leader's (the follower really did wait
    /// out that fetch); the measured time is the follower's own.
    fn adopt(&self, leader: ProxyResponse, timing: &Timing) -> ProxyResponse {
        let mut metrics = leader.metrics;
        metrics.outcome = Outcome::Exact;
        metrics.rows_from_cache = metrics.rows_total;
        metrics.coalesced = true;
        metrics.check_ms = timing.check_ms;
        metrics.local_ms = 0.0;
        metrics.lock_wait_ms = timing.lock_wait_ms;
        metrics.proxy_ms = ms_since(timing.start);
        metrics.response_ms = metrics.sim_ms + metrics.proxy_ms;
        ProxyResponse {
            result: leader.result,
            metrics,
        }
    }

    /// One origin interaction: execute + charge the cost model.
    fn fetch(&self, query: &Query, is_remainder: bool) -> Result<(ResultSet, f64), ProxyError> {
        let outcome = self.inner.origin.execute(query)?;
        let sim_ms = self
            .inner
            .config
            .cost
            .origin_ms(&outcome.stats, is_remainder);
        Ok((outcome.result, sim_ms))
    }

    fn note_lock_wait(&self, timing: &mut Timing, wait: std::time::Duration) {
        self.inner
            .stats
            .note_lock_wait(u64::try_from(wait.as_nanos()).unwrap_or(u64::MAX));
        timing.lock_wait_ms += wait.as_secs_f64() * 1000.0;
    }

    fn respond(
        &self,
        result: ResultSet,
        outcome: Outcome,
        rows_from_cache: usize,
        sim_ms: f64,
        timing: &Timing,
        coalesced: bool,
    ) -> ProxyResponse {
        let proxy_ms = ms_since(timing.start);
        let metrics = QueryMetrics {
            outcome,
            response_ms: sim_ms + proxy_ms,
            sim_ms,
            proxy_ms,
            check_ms: timing.check_ms,
            local_ms: timing.local_ms,
            rows_total: result.len(),
            rows_from_cache,
            coalesced,
            lock_wait_ms: timing.lock_wait_ms,
        };
        ProxyResponse { result, metrics }
    }
}

/// The §3.2 tradeoff gate against a single shard (see
/// [`crate::proxy::FunctionProxy`]).
fn coverage_worthwhile(
    config: &ProxyConfig,
    store: &CacheStore,
    bound: &BoundQuery,
    ids: &[u64],
) -> bool {
    let threshold = config.min_overlap_coverage;
    if threshold <= 0.0 {
        return true;
    }
    let regions: Vec<&fp_geometry::Region> = ids
        .iter()
        .filter_map(|id| store.peek(*id).map(|e| &e.region))
        .collect();
    if regions.is_empty() {
        return false;
    }
    let coverage = fp_geometry::volume::monte_carlo_union_coverage(&bound.region, &regions, 512);
    coverage >= threshold
}

fn ms_since(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::origin::SiteOrigin;
    use crate::sim::CostModel;
    use fp_skyserver::{Catalog, CatalogSpec, SkySite};

    fn handle(scheme: Scheme) -> ProxyHandle {
        let site = SkySite::new(Catalog::generate(&CatalogSpec::small_test()));
        ProxyHandle::with_shards(
            TemplateManager::with_sky_defaults(),
            Arc::new(SiteOrigin::new(site)),
            ProxyConfig::default()
                .with_scheme(scheme)
                .with_cost(CostModel::free()),
            4,
        )
    }

    fn radial(h: &ProxyHandle, ra: f64, dec: f64, radius: f64) -> ProxyResponse {
        h.handle_form(
            "/search/radial",
            &[
                ("ra".to_string(), ra.to_string()),
                ("dec".to_string(), dec.to_string()),
                ("radius".to_string(), radius.to_string()),
            ],
        )
        .unwrap()
    }

    fn ids_of(r: &ProxyResponse) -> Vec<i64> {
        let k = r.result.column_index("objID").unwrap();
        let mut ids: Vec<i64> = r
            .result
            .rows
            .iter()
            .map(|row| row[k].as_i64().unwrap())
            .collect();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn handle_serves_exact_and_contained_like_the_proxy() {
        let h = handle(Scheme::FullSemantic);
        let big = radial(&h, 185.0, 0.0, 25.0);
        assert_eq!(big.metrics.outcome, Outcome::Forwarded);
        let again = radial(&h, 185.0, 0.0, 25.0);
        assert_eq!(again.metrics.outcome, Outcome::Exact);
        let small = radial(&h, 185.0, 0.0, 10.0);
        assert_eq!(small.metrics.outcome, Outcome::Contained);

        let oracle = handle(Scheme::NoCache);
        let truth = radial(&oracle, 185.0, 0.0, 10.0);
        assert_eq!(ids_of(&small), ids_of(&truth));
    }

    #[test]
    fn handle_merges_overlap_and_region_containment() {
        let h = handle(Scheme::FullSemantic);
        radial(&h, 185.0, 0.0, 20.0);
        let o = radial(&h, 185.0 + 25.0 / 60.0, 0.0, 15.0);
        assert_eq!(o.metrics.outcome, Outcome::Overlap);
        assert!(o.metrics.rows_from_cache > 0);

        let oracle = handle(Scheme::NoCache);
        let truth = radial(&oracle, 185.0 + 25.0 / 60.0, 0.0, 15.0);
        assert_eq!(ids_of(&o), ids_of(&truth));

        let rc = handle(Scheme::RegionContainment);
        radial(&rc, 185.0 - 10.0 / 60.0, 0.0, 8.0);
        radial(&rc, 185.0 + 10.0 / 60.0, 0.0, 8.0);
        let big = radial(&rc, 185.0, 0.0, 40.0);
        assert_eq!(big.metrics.outcome, Outcome::RegionContainment);
        assert_eq!(rc.cache_stats().entries, 1);
        assert_eq!(rc.cache_stats().compactions, 2);
        let truth = radial(&oracle, 185.0, 0.0, 40.0);
        assert_eq!(ids_of(&big), ids_of(&truth));
    }

    #[test]
    fn passive_handle_hits_only_exact_text() {
        let h = handle(Scheme::Passive);
        assert_eq!(
            radial(&h, 185.0, 0.0, 20.0).metrics.outcome,
            Outcome::Forwarded
        );
        assert_eq!(radial(&h, 185.0, 0.0, 20.0).metrics.outcome, Outcome::Exact);
        assert_eq!(
            radial(&h, 185.0, 0.0, 10.0).metrics.outcome,
            Outcome::Forwarded
        );
    }

    #[test]
    fn no_cache_handle_always_forwards() {
        let h = handle(Scheme::NoCache);
        radial(&h, 185.0, 0.0, 20.0);
        radial(&h, 185.0, 0.0, 20.0);
        assert_eq!(h.cache_stats().entries, 0);
        assert_eq!(h.runtime_stats().requests, 2);
    }

    #[test]
    fn clones_share_one_cache() {
        let h = handle(Scheme::FullSemantic);
        let clone = h.clone();
        radial(&h, 185.0, 0.0, 20.0);
        let hit = radial(&clone, 185.0, 0.0, 20.0);
        assert_eq!(hit.metrics.outcome, Outcome::Exact);
        assert_eq!(clone.runtime_stats().requests, 2);
    }

    #[test]
    fn raw_sql_paths_match_the_proxy() {
        let h = handle(Scheme::FullSemantic);
        let sql = "SELECT p.objID, p.ra, p.dec, p.cx, p.cy, p.cz, p.u, p.g, p.r, p.i, p.z \
                   FROM fGetNearbyObjEq(185.0, 0.0, 20.0) n \
                   JOIN PhotoPrimary p ON n.objID = p.objID";
        assert_eq!(
            h.handle_sql(sql).unwrap().metrics.outcome,
            Outcome::Forwarded
        );
        assert_eq!(h.handle_sql(sql).unwrap().metrics.outcome, Outcome::Exact);

        // Non-template SQL is forwarded uncached.
        let raw = "SELECT TOP 3 p.objID FROM fGetNearbyObjEq(185.0, 0.0, 20.0) n \
                   JOIN PhotoPrimary p ON n.objID = p.objID WHERE p.r < 19.0";
        assert_eq!(
            h.handle_sql(raw).unwrap().metrics.outcome,
            Outcome::Forwarded
        );
        assert_eq!(
            h.handle_sql(raw).unwrap().metrics.outcome,
            Outcome::Forwarded
        );
    }
}
