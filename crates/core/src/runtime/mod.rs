//! The concurrent proxy runtime: a shared, thread-safe front over the
//! single-threaded pipeline.
//!
//! [`crate::proxy::FunctionProxy`] takes `&mut self` everywhere, which
//! makes the whole cache one critical section — fine for replaying the
//! paper's trace one query at a time, useless behind a threaded HTTP
//! server. This module adds the concurrency layer:
//!
//! * [`shard`] — the cache split into `N` independently locked
//!   [`crate::cache::CacheStore`] shards, keyed by the bound query's
//!   residual key. Queries against different templates or predicate
//!   groups never touch the same lock; statistics and replacement
//!   accounting aggregate across shards.
//! * [`singleflight`] — coalescing of origin fetches. Concurrent
//!   requests whose regions are exact-equal to an in-flight query's
//!   region block on that flight and share its result; requests
//!   *contained* in an in-flight region wait for the flight to land and
//!   then take the normal local-evaluation path against the freshly
//!   cached entry. Either way, only one WAN fetch is issued.
//! * [`handle`] — [`ProxyHandle`], the cheap `Arc`-cloneable front the
//!   HTTP router and the trace replayer both use: `handle_sql(&self)`,
//!   `handle_form(&self)` from any thread.
//!
//! Lock discipline: the flight table lock and a shard lock are never
//! held at the same time, condition-variable waits never hold either,
//! and every request touches exactly one shard (a residual group lives
//! wholly inside one shard, so region-containment compaction never
//! crosses shards). That ordering is what makes the runtime
//! deadlock-free by construction.

pub mod handle;
pub mod shard;
pub mod singleflight;

pub use handle::{ProxyHandle, XmlResponse};
pub use shard::ShardedStore;
pub use singleflight::SingleFlight;

use serde::Serialize;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Cumulative counters of the concurrent runtime, updated lock-free by
/// every request.
#[derive(Debug, Default)]
pub struct RuntimeStats {
    requests: AtomicUsize,
    coalesced_exact: AtomicUsize,
    coalesced_contained: AtomicUsize,
    flights_led: AtomicUsize,
    local_eval_fallbacks: AtomicUsize,
    lock_waits: AtomicUsize,
    lock_wait_ns: AtomicU64,
    degraded_hits: AtomicUsize,
    degraded_partial_rows: AtomicUsize,
    stale_hits: AtomicUsize,
    revalidations: AtomicUsize,
    snapshot_writes: AtomicUsize,
    recovered_entries: AtomicUsize,
    snapshot_corrupt_segments: AtomicUsize,
}

impl RuntimeStats {
    pub(crate) fn note_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_coalesced_exact(&self) {
        self.coalesced_exact.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_coalesced_contained(&self) {
        self.coalesced_contained.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_flight_led(&self) {
        self.flights_led.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_local_fallback(&self) {
        self.local_eval_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_lock_wait(&self, nanos: u64) {
        self.lock_waits.fetch_add(1, Ordering::Relaxed);
        self.lock_wait_ns.fetch_add(nanos, Ordering::Relaxed);
    }

    pub(crate) fn note_degraded(&self, partial_rows: usize) {
        self.degraded_hits.fetch_add(1, Ordering::Relaxed);
        self.degraded_partial_rows
            .fetch_add(partial_rows, Ordering::Relaxed);
    }

    pub(crate) fn note_stale_hit(&self) {
        self.stale_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_revalidation(&self) {
        self.revalidations.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_snapshot_writes(&self, files: usize) {
        self.snapshot_writes.fetch_add(files, Ordering::Relaxed);
    }

    pub(crate) fn note_recovered_entries(&self, entries: usize) {
        self.recovered_entries.fetch_add(entries, Ordering::Relaxed);
    }

    pub(crate) fn note_snapshot_corrupt(&self, segments: usize) {
        self.snapshot_corrupt_segments
            .fetch_add(segments, Ordering::Relaxed);
    }
}

/// A point-in-time copy of the runtime counters, for reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct RuntimeSnapshot {
    /// Requests served through the runtime.
    pub requests: usize,
    /// Requests served by piggybacking on an in-flight identical query.
    pub coalesced_exact: usize,
    /// Requests that waited for a containing in-flight query and were
    /// then answered from the freshly cached entry.
    pub coalesced_contained: usize,
    /// Origin-bound flights actually led (each is at most one WAN fetch).
    pub flights_led: usize,
    /// Contained hits whose cached entry turned out malformed
    /// (non-numeric coordinate cell) and fell back to the origin.
    pub local_eval_fallbacks: usize,
    /// Duplicate origin fetches avoided by coalescing
    /// (`coalesced_exact + coalesced_contained`).
    pub duplicate_fetches_avoided: usize,
    /// Peak number of simultaneously in-flight origin fetches.
    pub in_flight_peak: usize,
    /// Shard lock acquisitions.
    pub lock_acquisitions: usize,
    /// Total time spent waiting on shard locks, milliseconds.
    pub lock_wait_ms: f64,
    /// Number of cache shards.
    pub shards: usize,
    /// Requests answered degraded (from cache alone, origin down).
    pub degraded_hits: usize,
    /// Rows served by degraded partial answers.
    pub degraded_partial_rows: usize,
    /// Fetches whose deadline expired (zero without a resilience layer).
    pub origin_timeouts: u64,
    /// Origin retries issued by the resilience layer.
    pub origin_retries: u64,
    /// Fetches failed fast because the circuit was open.
    pub origin_fast_fails: u64,
    /// Times the circuit breaker opened.
    pub breaker_opens: u64,
    /// Breaker state at snapshot time (`"none"` without a resilience
    /// layer).
    pub breaker_state: &'static str,
    /// Milliseconds until an open breaker admits its next probe (`0`
    /// unless the breaker is open right now).
    pub breaker_retry_after_ms: u64,
    /// Requests answered from expired entries (stale-while-revalidate
    /// or stale-if-error).
    pub stale_hits: usize,
    /// Background refreshes that reached the origin on behalf of stale
    /// entries.
    pub revalidations: usize,
    /// Entries retired by data-release epoch bumps (across all shards).
    pub epoch_invalidations: usize,
    /// Entries retired for aging past every staleness window.
    pub entries_expired: usize,
    /// Snapshot shard files written so far.
    pub snapshot_writes: usize,
    /// Entries recovered from disk at startup.
    pub recovered_entries: usize,
    /// Snapshot segments (or whole files) skipped as corrupt during
    /// recovery.
    pub snapshot_corrupt_segments: usize,
}

impl RuntimeStats {
    /// Snapshot the counters (relaxed reads; exact totals once the
    /// producing threads have quiesced).
    pub fn snapshot(&self, in_flight_peak: usize, shards: usize) -> RuntimeSnapshot {
        let coalesced_exact = self.coalesced_exact.load(Ordering::Relaxed);
        let coalesced_contained = self.coalesced_contained.load(Ordering::Relaxed);
        RuntimeSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            coalesced_exact,
            coalesced_contained,
            flights_led: self.flights_led.load(Ordering::Relaxed),
            local_eval_fallbacks: self.local_eval_fallbacks.load(Ordering::Relaxed),
            duplicate_fetches_avoided: coalesced_exact + coalesced_contained,
            in_flight_peak,
            lock_acquisitions: self.lock_waits.load(Ordering::Relaxed),
            lock_wait_ms: self.lock_wait_ns.load(Ordering::Relaxed) as f64 / 1e6,
            shards,
            degraded_hits: self.degraded_hits.load(Ordering::Relaxed),
            degraded_partial_rows: self.degraded_partial_rows.load(Ordering::Relaxed),
            origin_timeouts: 0,
            origin_retries: 0,
            origin_fast_fails: 0,
            breaker_opens: 0,
            breaker_state: "none",
            breaker_retry_after_ms: 0,
            stale_hits: self.stale_hits.load(Ordering::Relaxed),
            revalidations: self.revalidations.load(Ordering::Relaxed),
            epoch_invalidations: 0,
            entries_expired: 0,
            snapshot_writes: self.snapshot_writes.load(Ordering::Relaxed),
            recovered_entries: self.recovered_entries.load(Ordering::Relaxed),
            snapshot_corrupt_segments: self.snapshot_corrupt_segments.load(Ordering::Relaxed),
        }
    }
}
