//! The concurrent proxy runtime: a shared, thread-safe front over the
//! single-threaded pipeline.
//!
//! [`crate::proxy::FunctionProxy`] takes `&mut self` everywhere, which
//! makes the whole cache one critical section — fine for replaying the
//! paper's trace one query at a time, useless behind a threaded HTTP
//! server. This module adds the concurrency layer:
//!
//! * [`shard`] — the cache split into `N` independently locked
//!   [`crate::cache::CacheStore`] shards, keyed by the bound query's
//!   residual key. Queries against different templates or predicate
//!   groups never touch the same lock; statistics and replacement
//!   accounting aggregate across shards.
//! * [`singleflight`] — coalescing of origin fetches. Concurrent
//!   requests whose regions are exact-equal to an in-flight query's
//!   region block on that flight and share its result; requests
//!   *contained* in an in-flight region wait for the flight to land and
//!   then take the normal local-evaluation path against the freshly
//!   cached entry. Either way, only one WAN fetch is issued.
//! * [`handle`] — [`ProxyHandle`], the cheap `Arc`-cloneable front the
//!   HTTP router and the trace replayer both use: `handle_sql(&self)`,
//!   `handle_form(&self)` from any thread.
//!
//! Lock discipline: the flight table lock and a shard lock are never
//! held at the same time, condition-variable waits never hold either,
//! and every request touches exactly one shard (a residual group lives
//! wholly inside one shard, so region-containment compaction never
//! crosses shards). That ordering is what makes the runtime
//! deadlock-free by construction.

pub mod handle;
pub mod shard;
pub mod singleflight;

pub use handle::{ProxyHandle, XmlResponse};
pub use shard::ShardedStore;
pub use singleflight::SingleFlight;

use crate::observe::LatencySummary;
use serde::Serialize;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Cumulative counters of the concurrent runtime, updated lock-free by
/// every request.
///
/// # Snapshot consistency
///
/// The counters are independent atomics, so a snapshot is not one
/// consistent cut — but it is *invariant-preserving*. Every derived
/// counter (coalesced hits, flights led, stale hits, …) is incremented
/// **after** the same request's `note_request`, in program order, with
/// `Release` stores; [`RuntimeStats::snapshot`] reads the derived
/// counters first with `Acquire` loads and reads `requests` **last**.
/// An acquire load that observes a derived increment therefore also
/// observes the `requests` increment that preceded it, which makes
/// `coalesced_exact + coalesced_contained ≤ requests`,
/// `flights_led ≤ requests`, `stale_hits ≤ requests` and
/// `revalidations ≤ stale_hits` hold in *every* snapshot, even one
/// taken mid-storm (asserted by `runtime_stress.rs`). Before this
/// ordering existed, relaxed loads in arbitrary order could report
/// more hits than requests.
#[derive(Debug, Default)]
pub struct RuntimeStats {
    requests: AtomicUsize,
    coalesced_exact: AtomicUsize,
    coalesced_contained: AtomicUsize,
    flights_led: AtomicUsize,
    local_eval_fallbacks: AtomicUsize,
    lock_waits: AtomicUsize,
    lock_wait_ns: AtomicU64,
    degraded_hits: AtomicUsize,
    degraded_partial_rows: AtomicUsize,
    stale_hits: AtomicUsize,
    revalidations: AtomicUsize,
    disk_hits: AtomicUsize,
    snapshot_writes: AtomicUsize,
    recovered_entries: AtomicUsize,
    snapshot_corrupt_segments: AtomicUsize,
    peer_probes: AtomicUsize,
    peer_hits: AtomicUsize,
    peer_probe_failures: AtomicUsize,
    read_repairs: AtomicUsize,
    snapshot_io_errors: AtomicUsize,
    /// Requests served under each scheme, indexed by
    /// [`crate::schemes::Scheme::index`] — all in one bucket under a
    /// fixed scheme, spread across buckets under adaptive selection.
    scheme_serves: [AtomicUsize; 5],
    /// Combined remainder round trips executed on behalf of queued
    /// overlap requests (each replaced ≥ 2 would-be origin trips).
    remainder_batches: AtomicUsize,
    /// Overlap requests whose remainder was answered from a combined
    /// round trip instead of a solo origin fetch.
    batched_remainders: AtomicUsize,
}

impl RuntimeStats {
    pub(crate) fn note_request(&self) {
        self.requests.fetch_add(1, Ordering::Release);
    }

    pub(crate) fn note_coalesced_exact(&self) {
        self.coalesced_exact.fetch_add(1, Ordering::Release);
    }

    pub(crate) fn note_coalesced_contained(&self) {
        self.coalesced_contained.fetch_add(1, Ordering::Release);
    }

    pub(crate) fn note_flight_led(&self) {
        self.flights_led.fetch_add(1, Ordering::Release);
    }

    pub(crate) fn note_local_fallback(&self) {
        self.local_eval_fallbacks.fetch_add(1, Ordering::Release);
    }

    pub(crate) fn note_lock_wait(&self, nanos: u64) {
        self.lock_waits.fetch_add(1, Ordering::Release);
        self.lock_wait_ns.fetch_add(nanos, Ordering::Release);
    }

    pub(crate) fn note_degraded(&self, partial_rows: usize) {
        self.degraded_hits.fetch_add(1, Ordering::Release);
        self.degraded_partial_rows
            .fetch_add(partial_rows, Ordering::Release);
    }

    pub(crate) fn note_stale_hit(&self) {
        self.stale_hits.fetch_add(1, Ordering::Release);
    }

    pub(crate) fn note_revalidation(&self) {
        self.revalidations.fetch_add(1, Ordering::Release);
    }

    pub(crate) fn note_disk_hit(&self) {
        self.disk_hits.fetch_add(1, Ordering::Release);
    }

    pub(crate) fn note_snapshot_writes(&self, files: usize) {
        self.snapshot_writes.fetch_add(files, Ordering::Release);
    }

    pub(crate) fn note_recovered_entries(&self, entries: usize) {
        self.recovered_entries.fetch_add(entries, Ordering::Release);
    }

    pub(crate) fn note_snapshot_corrupt(&self, segments: usize) {
        self.snapshot_corrupt_segments
            .fetch_add(segments, Ordering::Release);
    }

    pub(crate) fn note_peer_probe(&self, hit: bool) {
        self.peer_probes.fetch_add(1, Ordering::Release);
        if hit {
            self.peer_hits.fetch_add(1, Ordering::Release);
        }
    }

    pub(crate) fn note_peer_probe_failure(&self) {
        self.peer_probes.fetch_add(1, Ordering::Release);
        self.peer_probe_failures.fetch_add(1, Ordering::Release);
    }

    pub(crate) fn note_read_repair(&self) {
        self.read_repairs.fetch_add(1, Ordering::Release);
    }

    pub(crate) fn note_snapshot_io_error(&self) {
        self.snapshot_io_errors.fetch_add(1, Ordering::Release);
    }

    pub(crate) fn note_scheme_serve(&self, scheme: crate::schemes::Scheme) {
        self.scheme_serves[scheme.index()].fetch_add(1, Ordering::Release);
    }

    pub(crate) fn note_remainder_batch(&self, waiters: usize) {
        self.remainder_batches.fetch_add(1, Ordering::Release);
        self.batched_remainders
            .fetch_add(waiters, Ordering::Release);
    }
}

/// A point-in-time copy of the runtime counters, for reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct RuntimeSnapshot {
    /// Requests served through the runtime.
    pub requests: usize,
    /// Requests served by piggybacking on an in-flight identical query.
    pub coalesced_exact: usize,
    /// Requests that waited for a containing in-flight query and were
    /// then answered from the freshly cached entry.
    pub coalesced_contained: usize,
    /// Origin-bound flights actually led (each is at most one WAN fetch).
    pub flights_led: usize,
    /// Contained hits whose cached entry turned out malformed
    /// (non-numeric coordinate cell) and fell back to the origin.
    pub local_eval_fallbacks: usize,
    /// Duplicate origin fetches avoided by coalescing
    /// (`coalesced_exact + coalesced_contained`).
    pub duplicate_fetches_avoided: usize,
    /// Peak number of simultaneously in-flight origin fetches.
    pub in_flight_peak: usize,
    /// Shard lock acquisitions.
    pub lock_acquisitions: usize,
    /// Total time spent waiting on shard locks, milliseconds.
    pub lock_wait_ms: f64,
    /// Number of cache shards.
    pub shards: usize,
    /// Requests answered degraded (from cache alone, origin down).
    pub degraded_hits: usize,
    /// Rows served by degraded partial answers.
    pub degraded_partial_rows: usize,
    /// Fetches whose deadline expired (zero without a resilience layer).
    pub origin_timeouts: u64,
    /// Origin retries issued by the resilience layer.
    pub origin_retries: u64,
    /// Fetches failed fast because the circuit was open.
    pub origin_fast_fails: u64,
    /// Times the circuit breaker opened.
    pub breaker_opens: u64,
    /// Breaker state at snapshot time (`"none"` without a resilience
    /// layer).
    pub breaker_state: &'static str,
    /// Milliseconds until an open breaker admits its next probe (`0`
    /// unless the breaker is open right now).
    pub breaker_retry_after_ms: u64,
    /// Requests answered from expired entries (stale-while-revalidate
    /// or stale-if-error).
    pub stale_hits: usize,
    /// Background refreshes that reached the origin on behalf of stale
    /// entries.
    pub revalidations: usize,
    /// Exact/contained hits served straight from the disk tier's
    /// mmap'd slab (the demoted long tail).
    pub disk_hits: usize,
    /// Entries currently resident in the disk tier (across all shards).
    pub disk_entries: usize,
    /// Bytes held by the disk tier's slab files.
    pub slab_bytes: usize,
    /// RAM→disk demotions performed by the eviction manager.
    pub demotions: usize,
    /// Disk→RAM promotions performed on access.
    pub promotions: usize,
    /// Slab compaction passes that reclaimed dead segments.
    pub slab_compactions: usize,
    /// Slab segments skipped or dropped as corrupt (bad CRC, torn
    /// tail, unreadable during compaction).
    pub slab_corrupt_segments: usize,
    /// Entries retired by data-release epoch bumps (across all shards).
    pub epoch_invalidations: usize,
    /// Entries retired for aging past every staleness window.
    pub entries_expired: usize,
    /// Snapshot shard files written so far.
    pub snapshot_writes: usize,
    /// Entries recovered from disk at startup.
    pub recovered_entries: usize,
    /// Snapshot segments (or whole files) skipped as corrupt during
    /// recovery.
    pub snapshot_corrupt_segments: usize,
    /// Next backoff delay the resilience layer would prescribe before
    /// retrying the origin, in milliseconds (`0` without a resilience
    /// layer) — the `Retry-After` fallback when the breaker is closed.
    pub origin_backoff_hint_ms: u64,
    /// Cluster peer-cache probes this node issued on local misses
    /// (hits + clean misses + transport failures; zero outside a
    /// fleet).
    pub peer_probes: usize,
    /// Peer probes a remote cache answered (each saved one origin
    /// fetch).
    pub peer_hits: usize,
    /// Peer probes that failed transport after retries and fell
    /// through to the local origin path.
    pub peer_probe_failures: usize,
    /// CRC-failing slab segments read-repaired: quarantined, re-fetched
    /// from origin through the resilient path, and rewritten.
    pub read_repairs: usize,
    /// Snapshot/`.fpmeta` writes that failed (ENOSPC, EIO) — counted
    /// and retried next pass, never surfaced to the serving path.
    pub snapshot_io_errors: usize,
    /// Times the disk tier entered eviction-only degraded mode
    /// (persistent slab I/O errors; demotion suspended).
    pub tier_degraded: usize,
    /// Times a degraded tier's re-probe append succeeded and demotion
    /// resumed.
    pub tier_recoveries: usize,
    /// Slab I/O errors observed (failed appends and compactions).
    pub slab_io_errors: usize,
    /// Requests served under each scheme, indexed by
    /// [`crate::schemes::Scheme::index`] (declaration order: no-cache,
    /// passive, full-semantic, region-containment, containment-only).
    /// One bucket under a fixed scheme; spread across buckets when the
    /// adaptive profit model is choosing per template.
    pub scheme_serves: [usize; 5],
    /// Times any template's committed scheme changed (adaptive mode).
    pub scheme_switches: usize,
    /// Templates the profit model is currently tracking.
    pub adaptive_templates: usize,
    /// Combined remainder round trips executed for queued overlap
    /// requests.
    pub remainder_batches: usize,
    /// Overlap requests answered from a combined remainder round trip
    /// rather than a solo origin fetch.
    pub batched_remainders: usize,
    /// Measured end-to-end latency quantiles over every served request.
    pub request_latency: LatencySummary,
    /// Measured latency quantiles over fresh cache hits (exact +
    /// contained).
    pub hit_latency: LatencySummary,
    /// Measured latency quantiles of blocking origin fetches on the
    /// request path.
    pub origin_fetch_latency: LatencySummary,
}

impl RuntimeStats {
    /// Snapshot the counters. Exact totals once the producing threads
    /// have quiesced; mid-storm the snapshot still preserves the
    /// cross-counter invariants — see the [`RuntimeStats`] docs for the
    /// read-ordering argument (derived counters first, with `Acquire`;
    /// `revalidations` before `stale_hits`; `requests` last).
    pub fn snapshot(&self, in_flight_peak: usize, shards: usize) -> RuntimeSnapshot {
        let revalidations = self.revalidations.load(Ordering::Acquire);
        let stale_hits = self.stale_hits.load(Ordering::Acquire);
        let disk_hits = self.disk_hits.load(Ordering::Acquire);
        let coalesced_exact = self.coalesced_exact.load(Ordering::Acquire);
        let coalesced_contained = self.coalesced_contained.load(Ordering::Acquire);
        let flights_led = self.flights_led.load(Ordering::Acquire);
        let local_eval_fallbacks = self.local_eval_fallbacks.load(Ordering::Acquire);
        let lock_acquisitions = self.lock_waits.load(Ordering::Acquire);
        let lock_wait_ms = self.lock_wait_ns.load(Ordering::Acquire) as f64 / 1e6;
        let degraded_hits = self.degraded_hits.load(Ordering::Acquire);
        let degraded_partial_rows = self.degraded_partial_rows.load(Ordering::Acquire);
        let snapshot_writes = self.snapshot_writes.load(Ordering::Acquire);
        let recovered_entries = self.recovered_entries.load(Ordering::Acquire);
        let snapshot_corrupt_segments = self.snapshot_corrupt_segments.load(Ordering::Acquire);
        let peer_hits = self.peer_hits.load(Ordering::Acquire);
        let peer_probe_failures = self.peer_probe_failures.load(Ordering::Acquire);
        let peer_probes = self.peer_probes.load(Ordering::Acquire);
        let read_repairs = self.read_repairs.load(Ordering::Acquire);
        let snapshot_io_errors = self.snapshot_io_errors.load(Ordering::Acquire);
        let mut scheme_serves = [0usize; 5];
        for (slot, counter) in scheme_serves.iter_mut().zip(&self.scheme_serves) {
            *slot = counter.load(Ordering::Acquire);
        }
        let remainder_batches = self.remainder_batches.load(Ordering::Acquire);
        let batched_remainders = self.batched_remainders.load(Ordering::Acquire);
        // Read last: every derived increment observed above was preceded
        // by its request's `note_request`, so this load sees it too.
        let requests = self.requests.load(Ordering::Acquire);
        RuntimeSnapshot {
            requests,
            coalesced_exact,
            coalesced_contained,
            flights_led,
            local_eval_fallbacks,
            duplicate_fetches_avoided: coalesced_exact + coalesced_contained,
            in_flight_peak,
            lock_acquisitions,
            lock_wait_ms,
            shards,
            degraded_hits,
            degraded_partial_rows,
            origin_timeouts: 0,
            origin_retries: 0,
            origin_fast_fails: 0,
            breaker_opens: 0,
            breaker_state: "none",
            breaker_retry_after_ms: 0,
            stale_hits,
            revalidations,
            disk_hits,
            disk_entries: 0,
            slab_bytes: 0,
            demotions: 0,
            promotions: 0,
            slab_compactions: 0,
            slab_corrupt_segments: 0,
            epoch_invalidations: 0,
            entries_expired: 0,
            snapshot_writes,
            recovered_entries,
            snapshot_corrupt_segments,
            origin_backoff_hint_ms: 0,
            peer_probes,
            peer_hits,
            peer_probe_failures,
            read_repairs,
            snapshot_io_errors,
            tier_degraded: 0,
            tier_recoveries: 0,
            slab_io_errors: 0,
            scheme_serves,
            scheme_switches: 0,
            adaptive_templates: 0,
            remainder_batches,
            batched_remainders,
            request_latency: LatencySummary::default(),
            hit_latency: LatencySummary::default(),
            origin_fetch_latency: LatencySummary::default(),
        }
    }
}

impl RuntimeSnapshot {
    /// Renders the counter/gauge half of the `/metrics` payload in
    /// Prometheus text format; `ProxyHandle::metrics_text` appends the
    /// histogram families from
    /// [`crate::observe::Observer::render_prometheus`].
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(2048);
        let mut counter = |name: &str, help: &str, value: f64| {
            let _ = writeln!(
                out,
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}"
            );
        };
        counter(
            "funcproxy_requests_total",
            "Requests served through the runtime.",
            self.requests as f64,
        );
        counter(
            "funcproxy_coalesced_total",
            "Requests answered by piggybacking on an in-flight fetch.",
            self.duplicate_fetches_avoided as f64,
        );
        counter(
            "funcproxy_flights_led_total",
            "Origin-bound flights led.",
            self.flights_led as f64,
        );
        counter(
            "funcproxy_degraded_hits_total",
            "Requests answered degraded (origin down).",
            self.degraded_hits as f64,
        );
        counter(
            "funcproxy_stale_hits_total",
            "Requests answered from expired entries.",
            self.stale_hits as f64,
        );
        counter(
            "funcproxy_revalidations_total",
            "Background refreshes reaching the origin.",
            self.revalidations as f64,
        );
        counter(
            "funcproxy_disk_hits_total",
            "Hits served from the disk tier's mmap'd slab.",
            self.disk_hits as f64,
        );
        counter(
            "funcproxy_demotions_total",
            "RAM-to-disk demotions by the eviction manager.",
            self.demotions as f64,
        );
        counter(
            "funcproxy_promotions_total",
            "Disk-to-RAM promotions on access.",
            self.promotions as f64,
        );
        counter(
            "funcproxy_slab_compactions_total",
            "Slab compaction passes.",
            self.slab_compactions as f64,
        );
        counter(
            "funcproxy_slab_corrupt_segments_total",
            "Slab segments skipped or dropped as corrupt.",
            self.slab_corrupt_segments as f64,
        );
        counter(
            "funcproxy_tier_degraded_total",
            "Times the disk tier entered eviction-only degraded mode.",
            self.tier_degraded as f64,
        );
        counter(
            "funcproxy_tier_recoveries_total",
            "Times a degraded disk tier recovered and resumed demotion.",
            self.tier_recoveries as f64,
        );
        counter(
            "funcproxy_slab_io_errors_total",
            "Slab I/O errors observed (failed appends and compactions).",
            self.slab_io_errors as f64,
        );
        counter(
            "funcproxy_read_repairs_total",
            "Corrupt slab segments quarantined and re-fetched from origin.",
            self.read_repairs as f64,
        );
        counter(
            "funcproxy_snapshot_io_errors_total",
            "Snapshot/.fpmeta writes that failed and were retried later.",
            self.snapshot_io_errors as f64,
        );
        counter(
            "funcproxy_origin_timeouts_total",
            "Origin fetches whose deadline expired.",
            self.origin_timeouts as f64,
        );
        counter(
            "funcproxy_origin_retries_total",
            "Origin retries issued by the resilience layer.",
            self.origin_retries as f64,
        );
        counter(
            "funcproxy_breaker_opens_total",
            "Times the circuit breaker opened.",
            self.breaker_opens as f64,
        );
        counter(
            "funcproxy_peer_probes_total",
            "Cluster peer-cache probes issued on local misses.",
            self.peer_probes as f64,
        );
        counter(
            "funcproxy_peer_hits_total",
            "Peer probes answered from a remote cache.",
            self.peer_hits as f64,
        );
        counter(
            "funcproxy_peer_probe_failures_total",
            "Peer probes that failed transport and fell through.",
            self.peer_probe_failures as f64,
        );
        counter(
            "funcproxy_lock_wait_seconds_total",
            "Total time spent waiting on cache shard locks.",
            self.lock_wait_ms / 1e3,
        );
        counter(
            "funcproxy_scheme_switches_total",
            "Times the adaptive profit model changed a template's scheme.",
            self.scheme_switches as f64,
        );
        counter(
            "funcproxy_remainder_batches_total",
            "Combined remainder round trips executed for queued overlaps.",
            self.remainder_batches as f64,
        );
        counter(
            "funcproxy_batched_remainders_total",
            "Overlap requests answered from a combined remainder trip.",
            self.batched_remainders as f64,
        );
        let _ = writeln!(
            out,
            "# HELP funcproxy_scheme_serves_total Requests served under each caching scheme.\n\
             # TYPE funcproxy_scheme_serves_total counter"
        );
        for scheme in crate::schemes::Scheme::all() {
            let _ = writeln!(
                out,
                "funcproxy_scheme_serves_total{{scheme=\"{scheme}\"}} {}",
                self.scheme_serves[scheme.index()],
            );
        }
        let _ = writeln!(
            out,
            "# HELP funcproxy_breaker_open Whether the circuit breaker is open.\n\
             # TYPE funcproxy_breaker_open gauge\n\
             funcproxy_breaker_open{{state=\"{}\"}} {}",
            self.breaker_state,
            u8::from(self.breaker_state == "open"),
        );
        let _ = writeln!(
            out,
            "# HELP funcproxy_origin_backoff_hint_ms Next origin retry backoff delay.\n\
             # TYPE funcproxy_origin_backoff_hint_ms gauge\n\
             funcproxy_origin_backoff_hint_ms {}",
            self.origin_backoff_hint_ms,
        );
        let _ = writeln!(
            out,
            "# HELP funcproxy_disk_entries Entries resident in the disk tier.\n\
             # TYPE funcproxy_disk_entries gauge\n\
             funcproxy_disk_entries {}",
            self.disk_entries,
        );
        let _ = writeln!(
            out,
            "# HELP funcproxy_slab_bytes Bytes held by disk-tier slab files.\n\
             # TYPE funcproxy_slab_bytes gauge\n\
             funcproxy_slab_bytes {}",
            self.slab_bytes,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_rendering_is_well_formed() {
        let stats = RuntimeStats::default();
        stats.note_request();
        stats.note_request();
        stats.note_stale_hit();
        let snap = stats.snapshot(1, 2);
        assert_eq!(snap.requests, 2);
        assert_eq!(snap.stale_hits, 1);
        let text = snap.render_prometheus();
        assert!(text.contains("funcproxy_requests_total 2"));
        assert!(text.contains("funcproxy_stale_hits_total 1"));
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (_, value) = line.rsplit_once(' ').expect("space-separated");
            assert!(value.parse::<f64>().is_ok(), "numeric value in {line}");
        }
    }
}
