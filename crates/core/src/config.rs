//! Proxy configuration.

use crate::cache::{DescriptionKind, ProfitParams, Replacement, TierConfig};
use crate::lifecycle::LifecycleConfig;
use crate::observe::ObserveConfig;
use crate::resilience::ResilienceConfig;
use crate::schemes::Scheme;
use crate::sim::CostModel;
use std::path::PathBuf;

/// How the runtime picks the caching scheme for a request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchemeChoice {
    /// Every template serves with the one configured scheme — the
    /// paper's static configurations.
    Fixed(Scheme),
    /// Each template's scheme is chosen at runtime by the per-template
    /// profit model (ROADMAP item 4): templates explore under full
    /// semantic caching, then commit to whichever scheme the measured
    /// workload makes cheapest, re-exploring periodically.
    Adaptive(ProfitParams),
}

impl SchemeChoice {
    /// The adaptive choice with default tunables.
    pub fn adaptive() -> Self {
        SchemeChoice::Adaptive(ProfitParams::default())
    }
}

/// Configuration of one proxy instance — the paper's "configuration"
/// triple (caching scheme, cache description implementation, cache size)
/// plus the cost model and the overlap fan-out bound.
#[derive(Debug, Clone, PartialEq)]
pub struct ProxyConfig {
    /// Which caching scheme runs.
    pub scheme: Scheme,
    /// Whether `scheme` is served as-is or overridden per template by
    /// the runtime profit model. [`SchemeChoice::Fixed`] of `scheme`
    /// by default; [`ProxyConfig::with_adaptive_scheme`] switches to
    /// runtime selection. (Only the concurrent [`ProxyHandle`] runtime
    /// consults this; the single-threaded [`FunctionProxy`] always
    /// serves its fixed `scheme`.)
    ///
    /// [`ProxyHandle`]: crate::runtime::ProxyHandle
    /// [`FunctionProxy`]: crate::proxy::FunctionProxy
    pub scheme_choice: SchemeChoice,
    /// Array ("ACNR") or R-tree ("ACR") cache description.
    pub description: DescriptionKind,
    /// Cache capacity in bytes (`None` = unlimited).
    pub capacity: Option<usize>,
    /// Victim selection when the cache is full.
    pub replacement: Replacement,
    /// The WAN/server cost model used for simulated timing.
    pub cost: CostModel,
    /// Maximum cached entries one overlap/region-containment answer may
    /// combine (bounds remainder-query complexity; extra overlapping
    /// entries are ignored, costing efficiency but never correctness).
    pub max_merge_entries: usize,
    /// Minimum estimated fraction of a new query's region the cache must
    /// cover before the overlap path (probe + remainder) is taken; below
    /// it the original query is forwarded. `0.0` (default) always takes
    /// the remainder path, like the paper's full semantic caching. This is
    /// the §3.2 processing/transfer tradeoff made tunable.
    pub min_overlap_coverage: f64,
    /// Fault-tolerance policy for the origin fetch path. `None`
    /// (default) keeps the pre-resilience behaviour: no deadlines, no
    /// retries, no breaker, failures surface directly.
    pub resilience: Option<ResilienceConfig>,
    /// Cache lifecycle policy: TTLs, staleness windows, epoch, and
    /// crash-safe snapshots. The default is inert (entries never age,
    /// nothing is persisted).
    pub lifecycle: LifecycleConfig,
    /// Observability tuning: trace sampling rate and span retention.
    /// Latency histograms are always on regardless.
    pub observe: ObserveConfig,
    /// Disk tier beneath the RAM cache: per-shard append-only slab
    /// files that cold entries demote to (and serve from, via mmap)
    /// when the RAM budget is exceeded. `None` (default) = RAM-only.
    pub tier: Option<TierConfig>,
}

impl Default for ProxyConfig {
    fn default() -> Self {
        ProxyConfig {
            scheme: Scheme::FullSemantic,
            scheme_choice: SchemeChoice::Fixed(Scheme::FullSemantic),
            description: DescriptionKind::Array,
            capacity: None,
            replacement: Replacement::Lru,
            cost: CostModel::default(),
            max_merge_entries: 8,
            min_overlap_coverage: 0.0,
            resilience: None,
            lifecycle: LifecycleConfig::default(),
            observe: ObserveConfig::default(),
            tier: None,
        }
    }
}

impl ProxyConfig {
    /// Convenience builder for the scheme. Also pins the scheme choice
    /// to [`SchemeChoice::Fixed`] of it.
    pub fn with_scheme(mut self, scheme: Scheme) -> Self {
        self.scheme = scheme;
        self.scheme_choice = SchemeChoice::Fixed(scheme);
        self
    }

    /// Convenience builder for adaptive runtime scheme selection with
    /// default tunables. `scheme` stays as the exploration fallback
    /// (full semantic caching observes every relationship class).
    pub fn with_adaptive_scheme(mut self) -> Self {
        self.scheme_choice = SchemeChoice::adaptive();
        self.scheme = Scheme::FullSemantic;
        self
    }

    /// Convenience builder for adaptive scheme selection with explicit
    /// profit-model tunables.
    pub fn with_adaptive_params(mut self, params: ProfitParams) -> Self {
        self.scheme_choice = SchemeChoice::Adaptive(params);
        self.scheme = Scheme::FullSemantic;
        self
    }

    /// Convenience builder for the description kind.
    pub fn with_description(mut self, description: DescriptionKind) -> Self {
        self.description = description;
        self
    }

    /// Convenience builder for the capacity.
    pub fn with_capacity(mut self, capacity: Option<usize>) -> Self {
        self.capacity = capacity;
        self
    }

    /// Convenience builder for the cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Convenience builder for the replacement policy.
    pub fn with_replacement(mut self, replacement: Replacement) -> Self {
        self.replacement = replacement;
        self
    }

    /// Convenience builder for the overlap coverage threshold.
    pub fn with_min_overlap_coverage(mut self, threshold: f64) -> Self {
        self.min_overlap_coverage = threshold;
        self
    }

    /// Convenience builder for the fault-tolerance policy.
    pub fn with_resilience(mut self, resilience: ResilienceConfig) -> Self {
        self.resilience = Some(resilience);
        self
    }

    /// Convenience builder for the cache lifecycle policy.
    pub fn with_lifecycle(mut self, lifecycle: LifecycleConfig) -> Self {
        self.lifecycle = lifecycle;
        self
    }

    /// Convenience builder for the observability tuning.
    pub fn with_observe(mut self, observe: ObserveConfig) -> Self {
        self.observe = observe;
        self
    }

    /// Convenience builder for the disk tier, rooted at `dir`.
    pub fn with_tier(mut self, dir: impl Into<PathBuf>) -> Self {
        self.tier = Some(TierConfig::new(dir));
        self
    }

    /// Convenience builder for a fully specified disk tier.
    pub fn with_tier_config(mut self, tier: TierConfig) -> Self {
        self.tier = Some(tier);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let c = ProxyConfig::default()
            .with_scheme(Scheme::Passive)
            .with_description(DescriptionKind::RTree)
            .with_capacity(Some(1024))
            .with_cost(CostModel::free());
        assert_eq!(c.scheme, Scheme::Passive);
        assert_eq!(c.description, DescriptionKind::RTree);
        assert_eq!(c.capacity, Some(1024));
        assert_eq!(c.cost, CostModel::free());
        assert_eq!(c.max_merge_entries, 8);
    }
}
