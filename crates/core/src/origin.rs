//! The origin-site abstraction.

use fp_skyserver::result::QueryOutcome;
use fp_skyserver::{SiteError, SkySite};
use fp_sqlmini::Query;

/// An error from the origin web site.
#[derive(Debug)]
pub enum OriginError {
    /// The site rejected the query (parse/execution failure).
    Rejected(String),
    /// The site could not be reached.
    Unavailable(String),
}

impl std::fmt::Display for OriginError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OriginError::Rejected(m) => write!(f, "origin rejected the query: {m}"),
            OriginError::Unavailable(m) => write!(f, "origin unavailable: {m}"),
        }
    }
}

impl std::error::Error for OriginError {}

/// What the proxy needs from the origin web site: execute a query of the
/// supported class and report execution statistics.
///
/// `supports_remainder` mirrors the paper's observation that remainder
/// queries need a server-side facility (SkyServer's free-form SQL page);
/// against an origin without one, the proxy always sends the original
/// query.
pub trait Origin: Send + Sync {
    /// Executes `query`, returning rows and statistics.
    ///
    /// # Errors
    /// Returns [`OriginError`] when the query is rejected or the site is
    /// unreachable.
    fn execute(&self, query: &Query) -> Result<QueryOutcome, OriginError>;

    /// Whether the site accepts synthesized remainder queries.
    fn supports_remainder(&self) -> bool {
        true
    }
}

/// The in-process origin: a [`SkySite`] called directly. The simulation
/// cost model accounts for the WAN the paper's testbed had.
pub struct SiteOrigin {
    site: SkySite,
    remainder: bool,
}

impl SiteOrigin {
    /// Wraps a site with full remainder support.
    pub fn new(site: SkySite) -> Self {
        SiteOrigin {
            site,
            remainder: true,
        }
    }

    /// Wraps a site that refuses remainder queries (for the paper's
    /// "web site does not support modified queries" discussion).
    pub fn without_remainder(site: SkySite) -> Self {
        SiteOrigin {
            site,
            remainder: false,
        }
    }

    /// The wrapped site.
    pub fn site(&self) -> &SkySite {
        &self.site
    }
}

impl Origin for SiteOrigin {
    fn execute(&self, query: &Query) -> Result<QueryOutcome, OriginError> {
        self.site.execute_query(query).map_err(|e| match e {
            SiteError::Parse(p) => OriginError::Rejected(p.to_string()),
            SiteError::Exec(x) => OriginError::Rejected(x.to_string()),
        })
    }

    fn supports_remainder(&self) -> bool {
        self.remainder
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_skyserver::{Catalog, CatalogSpec};
    use fp_sqlmini::parse_query;

    #[test]
    fn site_origin_executes_and_reports() {
        let origin = SiteOrigin::new(SkySite::new(Catalog::generate(&CatalogSpec::small_test())));
        let q = parse_query("SELECT TOP 2 * FROM fGetNearbyObjEq(185.0, 0.0, 20.0) n").unwrap();
        let out = origin.execute(&q).unwrap();
        assert!(out.result.len() <= 2);
        assert!(origin.supports_remainder());

        let bad = parse_query("SELECT * FROM Nope t").unwrap();
        assert!(matches!(
            origin.execute(&bad),
            Err(OriginError::Rejected(_))
        ));
    }

    #[test]
    fn remainder_support_flag() {
        let origin = SiteOrigin::without_remainder(SkySite::new(Catalog::generate(
            &CatalogSpec::small_test(),
        )));
        assert!(!origin.supports_remainder());
    }
}
