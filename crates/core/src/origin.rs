//! The origin-site abstraction.

use fp_skyserver::result::QueryOutcome;
use fp_skyserver::{SiteError, SkySite};
use fp_sqlmini::Query;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// An error from the origin web site.
#[derive(Debug, Clone)]
pub enum OriginError {
    /// The site rejected the query (parse/execution failure). The origin
    /// is alive; retrying the same query cannot help.
    Rejected(String),
    /// The site could not be reached.
    Unavailable(String),
    /// The fetch (including any retries) exceeded the per-request
    /// deadline; the result, if one eventually arrives, is discarded.
    Timeout {
        /// Time the request had actually consumed.
        elapsed: Duration,
        /// The configured per-request deadline.
        deadline: Duration,
    },
    /// The circuit breaker is open: the origin is known unhealthy and
    /// the fetch failed fast without a network attempt.
    Overloaded {
        /// Hint for when the breaker will admit a probe again.
        retry_after: Duration,
    },
}

impl OriginError {
    /// Whether the failure is transient — the origin may recover, so
    /// the proxy should serve degraded from its cache (or ask the
    /// client to retry later) rather than report a permanent error.
    pub fn is_transient(&self) -> bool {
        !matches!(self, OriginError::Rejected(_))
    }

    /// The `Retry-After` hint to surface to clients, if the error
    /// carries one.
    pub fn retry_after(&self) -> Option<Duration> {
        match self {
            OriginError::Overloaded { retry_after } => Some(*retry_after),
            _ => None,
        }
    }
}

impl std::fmt::Display for OriginError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OriginError::Rejected(m) => write!(f, "origin rejected the query: {m}"),
            OriginError::Unavailable(m) => write!(f, "origin unavailable: {m}"),
            OriginError::Timeout { elapsed, deadline } => write!(
                f,
                "origin deadline exceeded: {elapsed:?} elapsed against a {deadline:?} budget"
            ),
            OriginError::Overloaded { retry_after } => write!(
                f,
                "origin circuit open: fetch failed fast, retry after {retry_after:?}"
            ),
        }
    }
}

impl std::error::Error for OriginError {}

/// What the proxy needs from the origin web site: execute a query of the
/// supported class and report execution statistics.
///
/// `supports_remainder` mirrors the paper's observation that remainder
/// queries need a server-side facility (SkyServer's free-form SQL page);
/// against an origin without one, the proxy always sends the original
/// query.
pub trait Origin: Send + Sync {
    /// Executes `query`, returning rows and statistics.
    ///
    /// # Errors
    /// Returns [`OriginError`] when the query is rejected or the site is
    /// unreachable.
    fn execute(&self, query: &Query) -> Result<QueryOutcome, OriginError>;

    /// Whether the site accepts synthesized remainder queries.
    fn supports_remainder(&self) -> bool {
        true
    }

    /// The data-release epoch the origin currently advertises (e.g. a
    /// survey's DR number), checked by the runtime after each successful
    /// fetch: a higher value than the proxy's current epoch retires
    /// every entry cached under older releases. `None` (the default)
    /// means the origin does not version its catalog.
    fn advertised_epoch(&self) -> Option<u64> {
        None
    }
}

/// The in-process origin: a [`SkySite`] called directly. The simulation
/// cost model accounts for the WAN the paper's testbed had.
pub struct SiteOrigin {
    site: SkySite,
    remainder: bool,
}

impl SiteOrigin {
    /// Wraps a site with full remainder support.
    pub fn new(site: SkySite) -> Self {
        SiteOrigin {
            site,
            remainder: true,
        }
    }

    /// Wraps a site that refuses remainder queries (for the paper's
    /// "web site does not support modified queries" discussion).
    pub fn without_remainder(site: SkySite) -> Self {
        SiteOrigin {
            site,
            remainder: false,
        }
    }

    /// The wrapped site.
    pub fn site(&self) -> &SkySite {
        &self.site
    }
}

impl Origin for SiteOrigin {
    fn execute(&self, query: &Query) -> Result<QueryOutcome, OriginError> {
        self.site.execute_query(query).map_err(|e| match e {
            SiteError::Parse(p) => OriginError::Rejected(p.to_string()),
            SiteError::Exec(x) => OriginError::Rejected(x.to_string()),
        })
    }

    fn supports_remainder(&self) -> bool {
        self.remainder
    }
}

/// An origin wrapper that counts executions per query text and can
/// slow each fetch down — the measuring device for single-flight
/// coalescing tests and the throughput harness's duplicate-fetch
/// accounting.
pub struct CountingOrigin {
    inner: Arc<dyn Origin>,
    delay: Option<Duration>,
    counts: Mutex<HashMap<String, usize>>,
    /// Advertised data-release epoch; `0` defers to the wrapped origin.
    advertised_epoch: std::sync::atomic::AtomicU64,
}

impl CountingOrigin {
    /// Wraps `inner`, counting every `execute` call.
    pub fn new(inner: Arc<dyn Origin>) -> Self {
        CountingOrigin {
            inner,
            delay: None,
            counts: Mutex::new(HashMap::new()),
            advertised_epoch: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Like [`CountingOrigin::new`], but each fetch additionally sleeps
    /// for `delay` first — a stand-in for WAN latency that widens race
    /// windows in concurrency tests.
    pub fn with_delay(inner: Arc<dyn Origin>, delay: Duration) -> Self {
        CountingOrigin {
            inner,
            delay: Some(delay),
            counts: Mutex::new(HashMap::new()),
            advertised_epoch: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Makes this origin advertise a data-release epoch (as a real site
    /// would via a version endpoint); `0` defers to the wrapped origin.
    pub fn set_advertised_epoch(&self, epoch: u64) {
        self.advertised_epoch
            .store(epoch, std::sync::atomic::Ordering::SeqCst);
    }

    fn counts(&self) -> std::sync::MutexGuard<'_, HashMap<String, usize>> {
        self.counts.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Total `execute` calls so far.
    pub fn fetches(&self) -> usize {
        self.counts().values().sum()
    }

    /// `execute` calls for one exact query text.
    pub fn fetch_count(&self, sql: &str) -> usize {
        self.counts().get(sql).copied().unwrap_or(0)
    }

    /// Fetches beyond the first per distinct query text — the number a
    /// perfect request coalescer would have avoided.
    pub fn duplicate_fetches(&self) -> usize {
        self.counts().values().map(|&c| c.saturating_sub(1)).sum()
    }
}

impl Origin for CountingOrigin {
    fn execute(&self, query: &Query) -> Result<QueryOutcome, OriginError> {
        *self.counts().entry(query.to_sql()).or_insert(0) += 1;
        if let Some(delay) = self.delay {
            std::thread::sleep(delay);
        }
        self.inner.execute(query)
    }

    fn supports_remainder(&self) -> bool {
        self.inner.supports_remainder()
    }

    fn advertised_epoch(&self) -> Option<u64> {
        match self
            .advertised_epoch
            .load(std::sync::atomic::Ordering::SeqCst)
        {
            0 => self.inner.advertised_epoch(),
            epoch => Some(epoch),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_skyserver::{Catalog, CatalogSpec};
    use fp_sqlmini::parse_query;

    #[test]
    fn site_origin_executes_and_reports() {
        let origin = SiteOrigin::new(SkySite::new(Catalog::generate(&CatalogSpec::small_test())));
        let q = parse_query("SELECT TOP 2 * FROM fGetNearbyObjEq(185.0, 0.0, 20.0) n").unwrap();
        let out = origin.execute(&q).unwrap();
        assert!(out.result.len() <= 2);
        assert!(origin.supports_remainder());

        let bad = parse_query("SELECT * FROM Nope t").unwrap();
        assert!(matches!(
            origin.execute(&bad),
            Err(OriginError::Rejected(_))
        ));
    }

    #[test]
    fn counting_origin_tracks_per_query_counts() {
        let site = SiteOrigin::new(SkySite::new(Catalog::generate(&CatalogSpec::small_test())));
        let counting = CountingOrigin::new(Arc::new(site));
        let q = parse_query("SELECT TOP 2 * FROM fGetNearbyObjEq(185.0, 0.0, 20.0) n").unwrap();
        counting.execute(&q).unwrap();
        counting.execute(&q).unwrap();
        assert_eq!(counting.fetches(), 2);
        assert_eq!(counting.fetch_count(&q.to_sql()), 2);
        assert_eq!(counting.duplicate_fetches(), 1);
        assert_eq!(counting.fetch_count("SELECT nothing"), 0);
        assert!(counting.supports_remainder());
    }

    #[test]
    fn remainder_support_flag() {
        let origin = SiteOrigin::without_remainder(SkySite::new(Catalog::generate(
            &CatalogSpec::small_test(),
        )));
        assert!(!origin.supports_remainder());
    }
}
