//! The function proxy: the paper's system, end to end.

use crate::cache::{CacheStats, CacheStore};
use crate::config::ProxyConfig;
use crate::metrics::{Outcome, QueryMetrics};
use crate::origin::Origin;
use crate::query::{
    classify, eval_entry_region, merge_results, remainder_query, EvalScratch, QueryStatus,
};
use crate::schemes::Scheme;
use crate::template::{BoundQuery, TemplateManager};
use crate::ProxyError;
use fp_skyserver::ResultSet;
use fp_sqlmini::Query;
use std::sync::Arc;
use std::time::Instant;

/// A served request: the result plus its metrics record.
///
/// The result is `Arc`-shared with the cache entry that holds (or was
/// served from) it, so responding never deep-copies tuples.
#[derive(Debug, Clone)]
pub struct ProxyResponse {
    /// Rows returned to the client.
    pub result: Arc<ResultSet>,
    /// The per-query metrics the proxy servlet logs.
    pub metrics: QueryMetrics,
}

/// The function proxy.
///
/// One instance = one of the paper's experiment configurations: a caching
/// scheme, a cache-description implementation, and a cache size, wired to
/// an origin site through the simulated WAN cost model.
pub struct FunctionProxy {
    manager: TemplateManager,
    store: CacheStore,
    config: ProxyConfig,
    origin: Arc<dyn Origin>,
    /// Reusable local-evaluation buffers (one proxy = one thread).
    scratch: EvalScratch,
}

impl FunctionProxy {
    /// Builds a proxy over a template registry and an origin site.
    pub fn new(manager: TemplateManager, origin: Arc<dyn Origin>, config: ProxyConfig) -> Self {
        let store =
            CacheStore::with_replacement(config.description, config.capacity, config.replacement);
        FunctionProxy {
            manager,
            store,
            config,
            origin,
            scratch: EvalScratch::default(),
        }
    }

    /// The template registry.
    pub fn manager(&self) -> &TemplateManager {
        &self.manager
    }

    /// The active configuration.
    pub fn config(&self) -> &ProxyConfig {
        &self.config
    }

    /// Cache statistics (entries, bytes, evictions, compactions).
    pub fn cache_stats(&self) -> CacheStats {
        self.store.stats()
    }

    /// Persists the cache to `dir` as XML result files (the paper's
    /// on-disk "Query Result Files"); returns the number written.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn save_cache(&self, dir: &std::path::Path) -> std::io::Result<usize> {
        self.store.save_snapshot(dir)
    }

    /// Restores a cache snapshot from `dir` on top of the current
    /// contents (malformed files are skipped).
    ///
    /// # Errors
    /// Propagates the directory-listing error.
    pub fn load_cache(
        &mut self,
        dir: &std::path::Path,
    ) -> std::io::Result<crate::cache::SnapshotLoad> {
        self.store.load_snapshot(dir)
    }

    /// Serves an HTML-form request: resolve against the registered info
    /// files and templates, then answer per the configured scheme.
    ///
    /// # Errors
    /// Propagates resolution failures and origin errors.
    pub fn handle_form(
        &mut self,
        path: &str,
        fields: &[(String, String)],
    ) -> Result<ProxyResponse, ProxyError> {
        let bound = self.manager.resolve_form(path, fields)?;
        self.handle_bound(bound)
    }

    /// Serves a raw SQL request (the power-user path). Queries that match
    /// a registered template get full active caching; anything else is
    /// forwarded to the origin uncached (the proxy has no semantics to
    /// cache it by — exactly the paper's motivation for templates).
    ///
    /// # Errors
    /// Propagates resolution failures and origin errors.
    pub fn handle_sql(&mut self, sql: &str) -> Result<ProxyResponse, ProxyError> {
        match self.manager.resolve_sql(sql) {
            Some(bound) => self.handle_bound(bound?),
            None => {
                let query = fp_sqlmini::parse_query(sql)
                    .map_err(|e| ProxyError::BadRequest(e.to_string()))?;
                let start = Instant::now();
                let (result, sim_ms) = self.forward(&query, false)?;
                Ok(self.respond(
                    Arc::new(result),
                    Outcome::Forwarded,
                    0,
                    sim_ms,
                    start,
                    0.0,
                    0.0,
                ))
            }
        }
    }

    /// Serves an already-resolved query — the core decision procedure.
    ///
    /// # Errors
    /// Propagates origin errors; cache-side failures fall back to
    /// forwarding instead of erroring.
    pub fn handle_bound(&mut self, bound: BoundQuery) -> Result<ProxyResponse, ProxyError> {
        match self.config.scheme {
            Scheme::NoCache => self.serve_no_cache(&bound),
            Scheme::Passive => self.serve_passive(&bound),
            _ => self.serve_active(bound),
        }
    }

    fn serve_no_cache(&mut self, bound: &BoundQuery) -> Result<ProxyResponse, ProxyError> {
        let start = Instant::now();
        let (result, sim_ms) = self.forward(&bound.query, false)?;
        Ok(self.respond(
            Arc::new(result),
            Outcome::Forwarded,
            0,
            sim_ms,
            start,
            0.0,
            0.0,
        ))
    }

    fn serve_passive(&mut self, bound: &BoundQuery) -> Result<ProxyResponse, ProxyError> {
        let start = Instant::now();
        let check_start = Instant::now();
        let hit = self.store.lookup_exact(&bound.sql);
        let check_ms = ms_since(check_start);

        if let Some(id) = hit {
            let entry = self.store.get(id).expect("exact map is consistent");
            let sim_ms = self.config.cost.cache_read_ms(entry.bytes);
            let result = Arc::clone(&entry.result);
            let cached = result.len();
            return Ok(self.respond(result, Outcome::Exact, cached, sim_ms, start, check_ms, 0.0));
        }

        let (result, sim_ms) = self.forward(&bound.query, false)?;
        let truncated = self.is_truncated(bound, &result);
        let result = Arc::new(result);
        let inserted = self.store.insert(
            &bound.residual_key,
            bound.region.clone(),
            Arc::clone(&result),
            truncated,
            &bound.sql,
            &bound.reg.coord_columns,
        );
        if let Some(id) = inserted {
            self.store.note_refetch_cost(id, (sim_ms * 1000.0) as u64);
        }
        Ok(self.respond(result, Outcome::Forwarded, 0, sim_ms, start, check_ms, 0.0))
    }

    fn serve_active(&mut self, bound: BoundQuery) -> Result<ProxyResponse, ProxyError> {
        let start = Instant::now();
        let check_start = Instant::now();
        // Exact match by canonical SQL first: cheaper than geometry, and
        // complete even for shapes whose pairwise region check is
        // conservative (polytopes).
        let status = match self.store.lookup_exact(&bound.sql) {
            Some(id) => QueryStatus::ExactMatch(id),
            None => classify(&self.store, &bound),
        };
        let check_ms = ms_since(check_start);

        match status {
            QueryStatus::ExactMatch(id) => {
                let entry = self.store.get(id).expect("classify returned a live id");
                let sim_ms = self.config.cost.cache_read_ms(entry.bytes);
                let result = Arc::clone(&entry.result);
                let cached = result.len();
                Ok(self.respond(result, Outcome::Exact, cached, sim_ms, start, check_ms, 0.0))
            }

            QueryStatus::ContainedBy(id) => {
                let local_start = Instant::now();
                let scratch = &mut self.scratch;
                let (eval, sim_ms) = {
                    let entry = self.store.get(id).expect("classify returned a live id");
                    let sim_ms = self.config.cost.cache_read_ms(entry.bytes);
                    let eval = entry
                        .coord_indexes(&bound.reg.coord_columns)
                        .and_then(|idx| {
                            eval_entry_region(
                                &entry.result,
                                entry.columnar.as_deref(),
                                &idx,
                                &bound.region,
                                scratch,
                            )
                        });
                    (eval, sim_ms)
                };
                let local_ms = ms_since(local_start);
                match eval {
                    Some(eval) => {
                        let mut result = eval.result;
                        if let Some(n) = bound.query.top {
                            result.rows.truncate(n as usize);
                        }
                        let cached = result.len();
                        let mut response = self.respond(
                            Arc::new(result),
                            Outcome::Contained,
                            cached,
                            sim_ms,
                            start,
                            check_ms,
                            local_ms,
                        );
                        response.metrics.rows_scanned = eval.stats.rows_scanned;
                        response.metrics.rows_pruned = eval.stats.rows_pruned();
                        Ok(response)
                    }
                    // Malformed cached document: fall back to the origin.
                    None => {
                        let mut response =
                            self.forward_and_cache(&bound, start, check_ms, local_ms)?;
                        response.metrics.local_fallback = true;
                        Ok(response)
                    }
                }
            }

            QueryStatus::RegionContainment(ids)
                if self.config.scheme.handles_region_containment() =>
            {
                self.serve_merge(bound, ids, /*probe_filters=*/ false, start, check_ms)
            }

            QueryStatus::Overlapping(ids)
                if self.config.scheme.handles_overlap()
                    && self.coverage_worthwhile(&bound, &ids) =>
            {
                self.serve_merge(bound, ids, /*probe_filters=*/ true, start, check_ms)
            }

            // Disjoint, or a relationship this scheme does not exploit.
            QueryStatus::RegionContainment(_)
            | QueryStatus::Overlapping(_)
            | QueryStatus::Disjoint => self.forward_and_cache(&bound, start, check_ms, 0.0),
        }
    }

    /// The §3.2 tradeoff gate: is enough of the new region cached to make
    /// probe + remainder cheaper than forwarding? Estimated by
    /// quasi-Monte-Carlo coverage sampling; always `true` at the default
    /// threshold of zero.
    fn coverage_worthwhile(&self, bound: &BoundQuery, ids: &[u64]) -> bool {
        let threshold = self.config.min_overlap_coverage;
        if threshold <= 0.0 {
            return true;
        }
        let regions: Vec<&fp_geometry::Region> = ids
            .iter()
            .filter_map(|id| self.store.peek(*id).map(|e| &e.region))
            .collect();
        if regions.is_empty() {
            return false;
        }
        let coverage =
            fp_geometry::volume::monte_carlo_union_coverage(&bound.region, &regions, 512);
        coverage >= threshold
    }

    /// Shared path for region containment and general overlap: evaluate
    /// probe queries over the involved entries, fetch a remainder for the
    /// uncovered part, merge, cache the complete merged result, and (for
    /// region containment) compact away the subsumed entries.
    fn serve_merge(
        &mut self,
        bound: BoundQuery,
        mut ids: Vec<u64>,
        probe_filters: bool,
        start: Instant,
        check_ms: f64,
    ) -> Result<ProxyResponse, ProxyError> {
        // Remainder queries need server support and a TOP-free query.
        if !self.origin.supports_remainder() || bound.query.top.is_some() {
            let response = self.forward_and_cache(&bound, start, check_ms, 0.0)?;
            if !probe_filters {
                // Region containment: the forwarded result still covers the
                // subsumed entries, so compaction remains valid.
                self.store.compact(&ids);
            }
            return Ok(response);
        }

        // Bound the fan-in; prefer the largest cached parts.
        ids.sort_by_key(|id| std::cmp::Reverse(self.store.peek(*id).map_or(0, |e| e.bytes)));
        ids.truncate(self.config.max_merge_entries);

        // Probe phase: collect the cached contribution. Each entry read
        // pays the simulated XML open/parse cost — the expense that made
        // overlap handling marginal in the paper's measurements.
        let local_start = Instant::now();
        let mut probe_sim_ms = 0.0;
        let mut rows_scanned = 0usize;
        let mut rows_pruned = 0usize;
        let mut probes: Vec<Arc<ResultSet>> = Vec::with_capacity(ids.len());
        for &id in &ids {
            let scratch = &mut self.scratch;
            let entry = self.store.peek(id).expect("classify returned live ids");
            probe_sim_ms += self.config.cost.cache_read_ms(entry.bytes);
            let part = if probe_filters {
                let eval = entry
                    .coord_indexes(&bound.reg.coord_columns)
                    .and_then(|idx| {
                        eval_entry_region(
                            &entry.result,
                            entry.columnar.as_deref(),
                            &idx,
                            &bound.region,
                            scratch,
                        )
                    });
                match eval {
                    Some(e) => {
                        rows_scanned += e.stats.rows_scanned;
                        rows_pruned += e.stats.rows_pruned();
                        Arc::new(e.result)
                    }
                    None => {
                        let mut response = self.forward_and_cache(&bound, start, check_ms, 0.0)?;
                        response.metrics.local_fallback = true;
                        return Ok(response);
                    }
                }
            } else {
                // Region containment: the entry lies wholly inside the new
                // region; its result contributes unfiltered (shared, not
                // deep-copied).
                Arc::clone(&entry.result)
            };
            probes.push(part);
        }
        let probe_refs: Vec<&ResultSet> = probes.iter().map(|p| &**p).collect();
        let cached_part = merge_results(&bound.reg.key_column, &probe_refs);
        let rows_from_cache = cached_part.len();
        let mut local_ms = ms_since(local_start);

        // Remainder phase.
        let exclude: Vec<&fp_geometry::Region> = ids
            .iter()
            .map(|id| &self.store.peek(*id).expect("live id").region)
            .collect();
        let Some(rq) = remainder_query(&bound, &exclude) else {
            return self.forward_and_cache(&bound, start, check_ms, local_ms);
        };
        let (remainder, origin_sim_ms) = self.forward(&rq, true)?;
        let sim_ms = origin_sim_ms + probe_sim_ms;

        // Merge phase.
        let merge_start = Instant::now();
        let result = merge_results(&bound.reg.key_column, &[&cached_part, &remainder]);
        local_ms += ms_since(merge_start);

        // The merged result is complete for the new region: cache it and,
        // in the region-containment case, drop the now-redundant entries.
        let result = Arc::new(result);
        let inserted = self.store.insert(
            &bound.residual_key,
            bound.region.clone(),
            Arc::clone(&result),
            false,
            &bound.sql,
            &bound.reg.coord_columns,
        );
        if let Some(id) = inserted {
            self.store
                .note_refetch_cost(id, (origin_sim_ms * 1000.0) as u64);
        }
        if !probe_filters {
            self.store.compact(&ids);
        }

        let outcome = if probe_filters {
            Outcome::Overlap
        } else {
            Outcome::RegionContainment
        };
        let mut response = self.respond(
            result,
            outcome,
            rows_from_cache,
            sim_ms,
            start,
            check_ms,
            local_ms,
        );
        response.metrics.rows_scanned = rows_scanned;
        response.metrics.rows_pruned = rows_pruned;
        Ok(response)
    }

    /// Forward to the origin and (for caching schemes) store the result.
    fn forward_and_cache(
        &mut self,
        bound: &BoundQuery,
        start: Instant,
        check_ms: f64,
        local_ms: f64,
    ) -> Result<ProxyResponse, ProxyError> {
        let (result, sim_ms) = self.forward(&bound.query, false)?;
        let truncated = self.is_truncated(bound, &result);
        let result = Arc::new(result);
        if self.config.scheme.caches() {
            let inserted = self.store.insert(
                &bound.residual_key,
                bound.region.clone(),
                Arc::clone(&result),
                truncated,
                &bound.sql,
                &bound.reg.coord_columns,
            );
            if let Some(id) = inserted {
                self.store.note_refetch_cost(id, (sim_ms * 1000.0) as u64);
            }
        }
        Ok(self.respond(
            result,
            Outcome::Forwarded,
            0,
            sim_ms,
            start,
            check_ms,
            local_ms,
        ))
    }

    /// One origin interaction: execute + charge the cost model.
    fn forward(&self, query: &Query, is_remainder: bool) -> Result<(ResultSet, f64), ProxyError> {
        let outcome = self.origin.execute(query)?;
        let sim_ms = self.config.cost.origin_ms(&outcome.stats, is_remainder);
        Ok((outcome.result, sim_ms))
    }

    /// A result may have been clipped when the query carried `TOP n` and
    /// exactly `n` rows came back.
    fn is_truncated(&self, bound: &BoundQuery, result: &ResultSet) -> bool {
        bound.query.top.is_some_and(|n| result.len() as u64 >= n)
    }

    #[allow(clippy::too_many_arguments)]
    fn respond(
        &self,
        result: Arc<ResultSet>,
        outcome: Outcome,
        rows_from_cache: usize,
        sim_ms: f64,
        start: Instant,
        check_ms: f64,
        local_ms: f64,
    ) -> ProxyResponse {
        let proxy_ms = ms_since(start);
        let metrics = QueryMetrics {
            outcome,
            response_ms: sim_ms + proxy_ms,
            sim_ms,
            proxy_ms,
            check_ms,
            local_ms,
            rows_total: result.len(),
            rows_from_cache,
            coalesced: false,
            lock_wait_ms: 0.0,
            rows_scanned: 0,
            rows_pruned: 0,
            local_fallback: false,
            degraded: false,
            stale: false,
            entry_age_ms: 0.0,
            disk_hit: false,
        };
        ProxyResponse { result, metrics }
    }
}

fn ms_since(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::origin::SiteOrigin;
    use crate::sim::CostModel;
    use fp_skyserver::{Catalog, CatalogSpec, SkySite};

    fn proxy(scheme: Scheme) -> FunctionProxy {
        let site = SkySite::new(Catalog::generate(&CatalogSpec::small_test()));
        FunctionProxy::new(
            TemplateManager::with_sky_defaults(),
            Arc::new(SiteOrigin::new(site)),
            ProxyConfig::default()
                .with_scheme(scheme)
                .with_cost(CostModel::free()),
        )
    }

    fn radial(p: &mut FunctionProxy, ra: f64, dec: f64, radius: f64) -> ProxyResponse {
        p.handle_form(
            "/search/radial",
            &[
                ("ra".to_string(), ra.to_string()),
                ("dec".to_string(), dec.to_string()),
                ("radius".to_string(), radius.to_string()),
            ],
        )
        .unwrap()
    }

    fn ids_of(r: &ProxyResponse) -> Vec<i64> {
        let k = r.result.column_index("objID").unwrap();
        let mut ids: Vec<i64> = r
            .result
            .rows
            .iter()
            .map(|row| row[k].as_i64().unwrap())
            .collect();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn no_cache_always_forwards() {
        let mut p = proxy(Scheme::NoCache);
        let a = radial(&mut p, 185.0, 0.0, 20.0);
        let b = radial(&mut p, 185.0, 0.0, 20.0);
        assert_eq!(a.metrics.outcome, Outcome::Forwarded);
        assert_eq!(b.metrics.outcome, Outcome::Forwarded);
        assert_eq!(p.cache_stats().entries, 0);
        assert_eq!(ids_of(&a), ids_of(&b));
    }

    #[test]
    fn passive_hits_only_exact_text() {
        let mut p = proxy(Scheme::Passive);
        let a = radial(&mut p, 185.0, 0.0, 20.0);
        assert_eq!(a.metrics.outcome, Outcome::Forwarded);
        let b = radial(&mut p, 185.0, 0.0, 20.0);
        assert_eq!(b.metrics.outcome, Outcome::Exact);
        assert_eq!(b.metrics.cache_efficiency(), 1.0);
        assert_eq!(ids_of(&a), ids_of(&b));
        // A subsumed query is a passive miss.
        let c = radial(&mut p, 185.0, 0.0, 10.0);
        assert_eq!(c.metrics.outcome, Outcome::Forwarded);
    }

    #[test]
    fn active_answers_contained_queries_locally() {
        let mut p = proxy(Scheme::ContainmentOnly);
        let big = radial(&mut p, 185.0, 0.0, 25.0);
        assert_eq!(big.metrics.outcome, Outcome::Forwarded);

        let small = radial(&mut p, 185.0, 0.0, 10.0);
        assert_eq!(small.metrics.outcome, Outcome::Contained);
        assert_eq!(small.metrics.cache_efficiency(), 1.0);

        // The locally evaluated answer must equal the origin's.
        let mut oracle = proxy(Scheme::NoCache);
        let truth = radial(&mut oracle, 185.0, 0.0, 10.0);
        assert_eq!(ids_of(&small), ids_of(&truth));
        assert!(
            !small.result.is_empty(),
            "hotspot region should be populated"
        );
    }

    #[test]
    fn containment_only_ignores_overlap_and_region_containment() {
        let mut p = proxy(Scheme::ContainmentOnly);
        radial(&mut p, 185.0, 0.0, 15.0);
        // Overlapping query → forwarded, cached.
        let o = radial(&mut p, 185.0 + 20.0 / 60.0, 0.0, 15.0);
        assert_eq!(o.metrics.outcome, Outcome::Forwarded);
        // Covering query → forwarded too (no region containment in Third).
        let big = radial(&mut p, 185.0, 0.0, 60.0);
        assert_eq!(big.metrics.outcome, Outcome::Forwarded);
        assert_eq!(p.cache_stats().compactions, 0);
    }

    #[test]
    fn full_semantic_merges_overlap_correctly() {
        let mut p = proxy(Scheme::FullSemantic);
        radial(&mut p, 185.0, 0.0, 20.0);
        let o = radial(&mut p, 185.0 + 25.0 / 60.0, 0.0, 15.0);
        assert_eq!(o.metrics.outcome, Outcome::Overlap);
        assert!(o.metrics.rows_from_cache > 0, "probe should contribute");
        assert!(o.metrics.cache_efficiency() > 0.0 && o.metrics.cache_efficiency() < 1.0);

        let mut oracle = proxy(Scheme::NoCache);
        let truth = radial(&mut oracle, 185.0 + 25.0 / 60.0, 0.0, 15.0);
        assert_eq!(ids_of(&o), ids_of(&truth));
    }

    #[test]
    fn region_containment_merges_and_compacts() {
        let mut p = proxy(Scheme::RegionContainment);
        radial(&mut p, 185.0 - 10.0 / 60.0, 0.0, 8.0);
        radial(&mut p, 185.0 + 10.0 / 60.0, 0.0, 8.0);
        assert_eq!(p.cache_stats().entries, 2);

        let big = radial(&mut p, 185.0, 0.0, 40.0);
        assert_eq!(big.metrics.outcome, Outcome::RegionContainment);
        assert!(big.metrics.rows_from_cache > 0);
        // The two subsumed entries were replaced by the one merged entry.
        assert_eq!(p.cache_stats().entries, 1);
        assert_eq!(p.cache_stats().compactions, 2);

        let mut oracle = proxy(Scheme::NoCache);
        let truth = radial(&mut oracle, 185.0, 0.0, 40.0);
        assert_eq!(ids_of(&big), ids_of(&truth));

        // The merged entry now answers subsumed queries.
        let small = radial(&mut p, 185.0, 0.0, 12.0);
        assert_eq!(small.metrics.outcome, Outcome::Contained);
        let truth = radial(&mut oracle, 185.0, 0.0, 12.0);
        assert_eq!(ids_of(&small), ids_of(&truth));
    }

    #[test]
    fn region_containment_scheme_skips_general_overlap() {
        let mut p = proxy(Scheme::RegionContainment);
        radial(&mut p, 185.0, 0.0, 20.0);
        let o = radial(&mut p, 185.0 + 25.0 / 60.0, 0.0, 15.0);
        assert_eq!(o.metrics.outcome, Outcome::Forwarded);
    }

    #[test]
    fn origin_without_remainder_forces_original_queries() {
        let site = SkySite::new(Catalog::generate(&CatalogSpec::small_test()));
        let mut p = FunctionProxy::new(
            TemplateManager::with_sky_defaults(),
            Arc::new(SiteOrigin::without_remainder(site)),
            ProxyConfig::default()
                .with_scheme(Scheme::FullSemantic)
                .with_cost(CostModel::free()),
        );
        radial(&mut p, 185.0, 0.0, 20.0);
        let o = radial(&mut p, 185.0 + 25.0 / 60.0, 0.0, 15.0);
        // Overlap still answered correctly, but by forwarding the original.
        assert_eq!(o.metrics.outcome, Outcome::Forwarded);
    }

    #[test]
    fn raw_sql_matching_a_template_gets_active_caching() {
        let mut p = proxy(Scheme::FullSemantic);
        let sql = "SELECT p.objID, p.ra, p.dec, p.cx, p.cy, p.cz, p.u, p.g, p.r, p.i, p.z \
                   FROM fGetNearbyObjEq(185.0, 0.0, 20.0) n \
                   JOIN PhotoPrimary p ON n.objID = p.objID";
        let a = p.handle_sql(sql).unwrap();
        assert_eq!(a.metrics.outcome, Outcome::Forwarded);
        let b = p.handle_sql(sql).unwrap();
        assert_eq!(b.metrics.outcome, Outcome::Exact);
    }

    #[test]
    fn raw_sql_without_template_is_forwarded_uncached() {
        let mut p = proxy(Scheme::FullSemantic);
        let sql = "SELECT TOP 3 p.objID FROM fGetNearbyObjEq(185.0, 0.0, 20.0) n \
                   JOIN PhotoPrimary p ON n.objID = p.objID WHERE p.r < 19.0";
        let a = p.handle_sql(sql).unwrap();
        assert_eq!(a.metrics.outcome, Outcome::Forwarded);
        assert_eq!(p.cache_stats().entries, 0);
        let b = p.handle_sql(sql).unwrap();
        assert_eq!(b.metrics.outcome, Outcome::Forwarded);
    }

    #[test]
    fn capacity_bound_is_respected() {
        let site = SkySite::new(Catalog::generate(&CatalogSpec::small_test()));
        let mut p = FunctionProxy::new(
            TemplateManager::with_sky_defaults(),
            Arc::new(SiteOrigin::new(site)),
            ProxyConfig::default()
                .with_scheme(Scheme::FullSemantic)
                .with_cost(CostModel::free())
                .with_capacity(Some(64 * 1024)),
        );
        for i in 0..12 {
            radial(&mut p, 183.0 + i as f64 * 0.5, 0.0, 12.0);
        }
        assert!(p.cache_stats().bytes <= 64 * 1024);
    }

    #[test]
    fn coverage_threshold_gates_the_overlap_path() {
        let site = SkySite::new(Catalog::generate(&CatalogSpec::small_test()));
        let strict = |threshold: f64| {
            FunctionProxy::new(
                TemplateManager::with_sky_defaults(),
                Arc::new(SiteOrigin::new(site.clone())),
                ProxyConfig::default()
                    .with_scheme(Scheme::FullSemantic)
                    .with_cost(CostModel::free())
                    .with_min_overlap_coverage(threshold),
            )
        };

        // A sliver of overlap: centers 28' apart, radii 20' and 10'.
        let mut p = strict(0.9);
        radial(&mut p, 185.0, 0.0, 20.0);
        let slim = radial(&mut p, 185.0 + 28.0 / 60.0, 0.0, 10.0);
        assert_eq!(
            slim.metrics.outcome,
            Outcome::Forwarded,
            "thin overlap must not clear a 0.9 coverage threshold"
        );

        // Near-total coverage: same center, slightly shifted, must pass a
        // modest threshold.
        let mut p = strict(0.5);
        radial(&mut p, 185.0, 0.0, 20.0);
        let broad = radial(&mut p, 185.0 + 2.0 / 60.0, 0.0, 19.0);
        assert_eq!(broad.metrics.outcome, Outcome::Overlap);
        assert!(broad.metrics.cache_efficiency() > 0.5);
    }

    #[test]
    fn metrics_breakdown_is_consistent() {
        let mut p = proxy(Scheme::FullSemantic);
        let a = radial(&mut p, 185.0, 0.0, 20.0);
        assert!(a.metrics.response_ms >= a.metrics.proxy_ms);
        assert!((a.metrics.response_ms - a.metrics.sim_ms - a.metrics.proxy_ms).abs() < 1e-9);
        assert_eq!(a.metrics.rows_total, a.result.len());
    }
}
