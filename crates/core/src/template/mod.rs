//! Templates: the semantic contracts between the web site and the proxy.
//!
//! Three artifacts, exactly as in the paper's Section 2:
//!
//! * [`FunctionTemplate`] — XML description of a table-valued function's
//!   spatial semantics (shape, dimensionality, parameter→geometry mapping).
//! * [`RegisteredQueryTemplate`] — a parameterized SQL query of the
//!   supported class, referencing the embedded function, plus the metadata
//!   local evaluation needs (which result columns carry the point
//!   coordinates, which column is the row key).
//! * [`InfoFile`] — the binding from an HTML form path to a query template.

mod function_template;
mod info;
mod manager;
mod query_template;

pub use function_template::{FunctionTemplate, Shape};
pub use info::InfoFile;
pub use manager::{BoundQuery, TemplateManager};
pub use query_template::RegisteredQueryTemplate;
