//! Information files: form-path → query-template bindings.

use crate::ProxyError;
use fp_xmlite::Element;

/// The paper's third artifact: "we use information files to associate an
/// HTML search form with a function-embedded query template."
///
/// Form fields are mapped to template parameters; a field may carry a
/// default so optional form inputs (like a fixed magnitude limit) still
/// bind.
#[derive(Debug, Clone, PartialEq)]
pub struct InfoFile {
    /// Request path of the form handler, e.g. `/search/radial`.
    pub form_path: String,
    /// Name of the query template the form instantiates.
    pub query_template: String,
    /// `(form field, template parameter)` pairs.
    pub field_map: Vec<(String, String)>,
    /// `(template parameter, default text)` for absent fields.
    pub defaults: Vec<(String, String)>,
}

impl InfoFile {
    /// An info file whose form fields are named exactly like the template
    /// parameters.
    pub fn identity(
        form_path: impl Into<String>,
        query_template: impl Into<String>,
        params: &[&str],
    ) -> InfoFile {
        InfoFile {
            form_path: form_path.into(),
            query_template: query_template.into(),
            field_map: params
                .iter()
                .map(|p| (p.to_string(), p.to_string()))
                .collect(),
            defaults: Vec::new(),
        }
    }

    /// Parses the XML artifact form.
    ///
    /// # Errors
    /// Returns [`ProxyError::Template`] on structural problems.
    pub fn from_xml(doc: &Element) -> Result<InfoFile, ProxyError> {
        let err = |m: &str| ProxyError::Template(m.to_string());
        if doc.name() != "InfoFile" {
            return Err(err("expected <InfoFile>"));
        }
        let form_path = doc
            .child_text("FormPath")
            .ok_or_else(|| err("missing <FormPath>"))?
            .to_string();
        let query_template = doc
            .child_text("QueryTemplate")
            .ok_or_else(|| err("missing <QueryTemplate>"))?
            .to_string();
        let mut field_map = Vec::new();
        for f in doc.children_named("Field") {
            let name = f
                .attr("name")
                .ok_or_else(|| err("field missing name attribute"))?;
            let param = f.attr("param").unwrap_or(name);
            field_map.push((name.to_string(), param.to_string()));
        }
        let mut defaults = Vec::new();
        for d in doc.children_named("Default") {
            let param = d
                .attr("param")
                .ok_or_else(|| err("default missing param attribute"))?;
            defaults.push((param.to_string(), d.text()));
        }
        Ok(InfoFile {
            form_path,
            query_template,
            field_map,
            defaults,
        })
    }

    /// Serializes back to XML.
    pub fn to_xml(&self) -> Element {
        let mut doc = Element::new("InfoFile")
            .with_child(Element::new("FormPath").with_text(self.form_path.clone()))
            .with_child(Element::new("QueryTemplate").with_text(self.query_template.clone()));
        for (name, param) in &self.field_map {
            doc.push_child(
                Element::new("Field")
                    .with_attr("name", name.clone())
                    .with_attr("param", param.clone()),
            );
        }
        for (param, value) in &self.defaults {
            doc.push_child(
                Element::new("Default")
                    .with_attr("param", param.clone())
                    .with_text(value.clone()),
            );
        }
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_maps_fields() {
        let info = InfoFile::identity("/search/radial", "radial", &["ra", "dec", "radius"]);
        assert_eq!(info.field_map.len(), 3);
        assert_eq!(info.field_map[0], ("ra".into(), "ra".into()));
    }

    #[test]
    fn xml_roundtrip() {
        let mut info = InfoFile::identity("/search/radial", "radial", &["ra", "dec"]);
        info.defaults.push(("maxmag".into(), "22.5".into()));
        let back = InfoFile::from_xml(&info.to_xml()).unwrap();
        assert_eq!(back, info);
    }

    #[test]
    fn rejects_malformed() {
        assert!(InfoFile::from_xml(&Element::new("Nope")).is_err());
        assert!(InfoFile::from_xml(&Element::new("InfoFile")).is_err());
    }
}
