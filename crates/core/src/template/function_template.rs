//! Function templates: the XML-described spatial semantics of a TVF.

use crate::ProxyError;
use fp_geometry::{HalfSpace, HyperRect, HyperSphere, Point, Polytope, Region};
use fp_skyserver::exec::eval_const;
use fp_sqlmini::template::substitute_expr;
use fp_sqlmini::{parser::parse_expr, Bindings, Expr};
use fp_xmlite::Element;

/// The region shape a function template declares, with the parameter→
/// geometry mapping as parsed SQL scalar expressions over `$params`.
///
/// Trigonometry in the formulas is evaluated in **degrees** (the SkyServer
/// convention this repository's executor follows); e.g. the Radial search
/// template maps `radius` arc minutes to a chord via `2*sin($radius/120.0)`.
#[derive(Debug, Clone, PartialEq)]
pub enum Shape {
    /// A ball: per-dimension center formulas plus a radius formula.
    Sphere {
        /// One formula per dimension.
        center: Vec<Expr>,
        /// Radius formula.
        radius: Expr,
    },
    /// An axis-aligned box: per-dimension low/high formulas.
    Rect {
        /// Lower-corner formulas.
        lo: Vec<Expr>,
        /// Upper-corner formulas.
        hi: Vec<Expr>,
    },
    /// A convex polytope: faces (`normal·x <= offset`) plus a declared
    /// bounding box.
    Polytope {
        /// Face normals (one formula per dimension) and offsets.
        faces: Vec<(Vec<Expr>, Expr)>,
        /// Bounding-box lower corner formulas.
        bbox_lo: Vec<Expr>,
        /// Bounding-box upper corner formulas.
        bbox_hi: Vec<Expr>,
    },
}

/// The parsed form of the paper's Figure-3 XML artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionTemplate {
    /// Function name (`fGetNearbyObjEq`, …).
    pub name: String,
    /// Positional parameter names (argument order of the function).
    pub params: Vec<String>,
    /// The declared region semantics.
    pub shape: Shape,
}

impl FunctionTemplate {
    /// Dimensionality of the declared region.
    pub fn dims(&self) -> usize {
        match &self.shape {
            Shape::Sphere { center, .. } => center.len(),
            Shape::Rect { lo, .. } => lo.len(),
            Shape::Polytope { bbox_lo, .. } => bbox_lo.len(),
        }
    }

    /// The built-in template of `fGetNearbyObjEq(ra, dec, radius)`:
    /// a 3-D hypersphere over unit-vector coordinates, with the arcminute
    /// radius converted to a chord length (paper Figure 3).
    pub fn sky_radial() -> FunctionTemplate {
        let parse = |s: &str| parse_expr(s).expect("built-in formula parses");
        FunctionTemplate {
            name: "fGetNearbyObjEq".into(),
            params: vec!["ra".into(), "dec".into(), "radius".into()],
            shape: Shape::Sphere {
                center: vec![
                    parse("cos($ra)*cos($dec)"),
                    parse("sin($ra)*cos($dec)"),
                    parse("sin($dec)"),
                ],
                radius: parse("2.0*sin($radius/120.0)"),
            },
        }
    }

    /// The built-in template of
    /// `fGetObjFromRect(min_ra, max_ra, min_dec, max_dec)`: a 2-D box in
    /// equatorial coordinates.
    pub fn sky_rect() -> FunctionTemplate {
        let parse = |s: &str| parse_expr(s).expect("built-in formula parses");
        FunctionTemplate {
            name: "fGetObjFromRect".into(),
            params: vec![
                "min_ra".into(),
                "max_ra".into(),
                "min_dec".into(),
                "max_dec".into(),
            ],
            shape: Shape::Rect {
                lo: vec![parse("$min_ra"), parse("$min_dec")],
                hi: vec![parse("$max_ra"), parse("$max_dec")],
            },
        }
    }

    /// The built-in template of
    /// `fGetObjFromTriangle(ra1, dec1, ra2, dec2, ra3, dec3)`: a 2-D
    /// convex polytope in equatorial coordinates. Vertices must be in
    /// counter-clockwise order (the origin site rejects other windings),
    /// which makes the half-space formulas below describe the interior.
    pub fn sky_triangle() -> FunctionTemplate {
        let parse = |s: &str| parse_expr(s).expect("built-in formula parses");
        let faces = vec![
            // Edge 1→2: outward normal (dec2-dec1, -(ra2-ra1)).
            (
                vec![parse("$dec2 - $dec1"), parse("0.0 - ($ra2 - $ra1)")],
                parse("($dec2 - $dec1) * $ra1 - ($ra2 - $ra1) * $dec1"),
            ),
            // Edge 2→3.
            (
                vec![parse("$dec3 - $dec2"), parse("0.0 - ($ra3 - $ra2)")],
                parse("($dec3 - $dec2) * $ra2 - ($ra3 - $ra2) * $dec2"),
            ),
            // Edge 3→1.
            (
                vec![parse("$dec1 - $dec3"), parse("0.0 - ($ra1 - $ra3)")],
                parse("($dec1 - $dec3) * $ra3 - ($ra1 - $ra3) * $dec3"),
            ),
        ];
        FunctionTemplate {
            name: "fGetObjFromTriangle".into(),
            params: vec![
                "ra1".into(),
                "dec1".into(),
                "ra2".into(),
                "dec2".into(),
                "ra3".into(),
                "dec3".into(),
            ],
            shape: Shape::Polytope {
                faces,
                bbox_lo: vec![
                    parse("least(least($ra1, $ra2), $ra3)"),
                    parse("least(least($dec1, $dec2), $dec3)"),
                ],
                bbox_hi: vec![
                    parse("greatest(greatest($ra1, $ra2), $ra3)"),
                    parse("greatest(greatest($dec1, $dec2), $dec3)"),
                ],
            },
        }
    }

    /// Evaluates the shape formulas under `bindings` into a concrete
    /// [`Region`].
    ///
    /// # Errors
    /// Returns [`ProxyError::Template`] when a formula references an
    /// unbound parameter, evaluates to a non-number, or produces an
    /// invalid region (negative radius, inverted box).
    pub fn region_for(&self, bindings: &Bindings) -> Result<Region, ProxyError> {
        let eval = |e: &Expr| -> Result<f64, ProxyError> {
            let bound = substitute_expr(e, bindings);
            eval_const(&bound).and_then(|v| v.as_f64()).ok_or_else(|| {
                ProxyError::Template(format!(
                    "formula `{e}` did not evaluate to a number under {bindings:?}"
                ))
            })
        };
        let eval_all =
            |es: &[Expr]| -> Result<Vec<f64>, ProxyError> { es.iter().map(eval).collect() };

        let bad = |e: fp_geometry::GeometryError| ProxyError::Template(e.to_string());
        match &self.shape {
            Shape::Sphere { center, radius } => {
                let c = Point::new(eval_all(center)?).map_err(bad)?;
                let r = eval(radius)?;
                Ok(Region::Sphere(HyperSphere::new(c, r).map_err(bad)?))
            }
            Shape::Rect { lo, hi } => {
                let rect = HyperRect::new(eval_all(lo)?, eval_all(hi)?).map_err(bad)?;
                Ok(Region::Rect(rect))
            }
            Shape::Polytope {
                faces,
                bbox_lo,
                bbox_hi,
            } => {
                let bbox = HyperRect::new(eval_all(bbox_lo)?, eval_all(bbox_hi)?).map_err(bad)?;
                let mut hs = Vec::with_capacity(faces.len());
                for (normal, offset) in faces {
                    hs.push(HalfSpace::new(eval_all(normal)?, eval(offset)?).map_err(bad)?);
                }
                Ok(Region::Polytope(Polytope::new(hs, bbox).map_err(bad)?))
            }
        }
    }

    /// Parses the XML artifact form.
    ///
    /// # Errors
    /// Returns [`ProxyError::Template`] with a description of the first
    /// structural problem.
    pub fn from_xml(doc: &Element) -> Result<FunctionTemplate, ProxyError> {
        let err = |m: String| ProxyError::Template(m);
        if doc.name() != "FunctionTemplate" {
            return Err(err(format!(
                "expected <FunctionTemplate>, got <{}>",
                doc.name()
            )));
        }
        let name = doc
            .child_text("Name")
            .ok_or_else(|| err("missing <Name>".into()))?
            .to_string();
        let params: Vec<String> = doc
            .child("Params")
            .ok_or_else(|| err("missing <Params>".into()))?
            .child_elements()
            .map(|p| p.text())
            .collect();
        let shape_name = doc
            .child_text("Shape")
            .ok_or_else(|| err("missing <Shape>".into()))?
            .to_ascii_lowercase();
        let dims: usize = doc
            .child_text("NumDimensions")
            .ok_or_else(|| err("missing <NumDimensions>".into()))?
            .parse()
            .map_err(|_| err("bad <NumDimensions>".into()))?;

        let exprs_of = |el: &Element| -> Result<Vec<Expr>, ProxyError> {
            el.child_elements()
                .map(|c| parse_expr(&c.text()).map_err(|e| err(format!("bad formula: {e}"))))
                .collect()
        };
        let required = |tag: &str| -> Result<&Element, ProxyError> {
            doc.child(tag)
                .ok_or_else(|| err(format!("missing <{tag}>")))
        };

        let shape = match shape_name.as_str() {
            "hypersphere" => {
                let center = exprs_of(required("CenterCoordinate")?)?;
                let radius = parse_expr(
                    doc.child_text("Radius")
                        .ok_or_else(|| err("missing <Radius>".into()))?,
                )
                .map_err(|e| err(format!("bad radius formula: {e}")))?;
                if center.len() != dims {
                    return Err(err(format!(
                        "center has {} formulas, NumDimensions is {dims}",
                        center.len()
                    )));
                }
                Shape::Sphere { center, radius }
            }
            "hyperrect" | "hypercube" => {
                let lo = exprs_of(required("Low")?)?;
                let hi = exprs_of(required("High")?)?;
                if lo.len() != dims || hi.len() != dims {
                    return Err(err("Low/High arity disagrees with NumDimensions".into()));
                }
                Shape::Rect { lo, hi }
            }
            "polytope" => {
                let bbox_lo = exprs_of(required("BBoxLow")?)?;
                let bbox_hi = exprs_of(required("BBoxHigh")?)?;
                let mut faces = Vec::new();
                for face in doc.children_named("Face") {
                    let normal = exprs_of(
                        face.child("Normal")
                            .ok_or_else(|| err("face missing <Normal>".into()))?,
                    )?;
                    let offset = parse_expr(
                        face.child_text("Offset")
                            .ok_or_else(|| err("face missing <Offset>".into()))?,
                    )
                    .map_err(|e| err(format!("bad offset formula: {e}")))?;
                    if normal.len() != dims {
                        return Err(err("face normal arity disagrees".into()));
                    }
                    faces.push((normal, offset));
                }
                if faces.is_empty() {
                    return Err(err("polytope needs at least one <Face>".into()));
                }
                Shape::Polytope {
                    faces,
                    bbox_lo,
                    bbox_hi,
                }
            }
            other => return Err(err(format!("unknown shape `{other}`"))),
        };

        Ok(FunctionTemplate {
            name,
            params,
            shape,
        })
    }

    /// Serializes back to the XML artifact form (inverse of
    /// [`FunctionTemplate::from_xml`]).
    pub fn to_xml(&self) -> Element {
        let exprs = |tag: &str, es: &[Expr]| {
            let mut el = Element::new(tag);
            for e in es {
                el.push_child(Element::new("C").with_text(e.to_sql()));
            }
            el
        };
        let mut params = Element::new("Params");
        for p in &self.params {
            params.push_child(Element::new("P").with_text(p.clone()));
        }
        let mut doc = Element::new("FunctionTemplate")
            .with_child(Element::new("Name").with_text(self.name.clone()))
            .with_child(params)
            .with_child(Element::new("Shape").with_text(match &self.shape {
                Shape::Sphere { .. } => "hypersphere",
                Shape::Rect { .. } => "hyperrect",
                Shape::Polytope { .. } => "polytope",
            }))
            .with_child(Element::new("NumDimensions").with_text(self.dims().to_string()));
        match &self.shape {
            Shape::Sphere { center, radius } => {
                doc.push_child(exprs("CenterCoordinate", center));
                doc.push_child(Element::new("Radius").with_text(radius.to_sql()));
            }
            Shape::Rect { lo, hi } => {
                doc.push_child(exprs("Low", lo));
                doc.push_child(exprs("High", hi));
            }
            Shape::Polytope {
                faces,
                bbox_lo,
                bbox_hi,
            } => {
                doc.push_child(exprs("BBoxLow", bbox_lo));
                doc.push_child(exprs("BBoxHigh", bbox_hi));
                for (normal, offset) in faces {
                    doc.push_child(
                        Element::new("Face")
                            .with_child(exprs("Normal", normal))
                            .with_child(Element::new("Offset").with_text(offset.to_sql())),
                    );
                }
            }
        }
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_geometry::celestial::radial_query_sphere;
    use fp_sqlmini::Value;

    fn radial_bindings(ra: f64, dec: f64, radius: f64) -> Bindings {
        let mut b = Bindings::new();
        b.insert("ra".into(), Value::Float(ra));
        b.insert("dec".into(), Value::Float(dec));
        b.insert("radius".into(), Value::Float(radius));
        b
    }

    #[test]
    fn radial_template_matches_geometry_helper() {
        let t = FunctionTemplate::sky_radial();
        let region = t.region_for(&radial_bindings(185.0, 1.5, 30.0)).unwrap();
        let Region::Sphere(s) = region else {
            panic!("expected sphere")
        };
        let expected = radial_query_sphere(185.0, 1.5, 30.0).unwrap();
        assert!(s.approx_eq(&expected), "template {s} vs helper {expected}");
    }

    #[test]
    fn rect_template_builds_boxes() {
        let t = FunctionTemplate::sky_rect();
        let mut b = Bindings::new();
        b.insert("min_ra".into(), Value::Float(184.0));
        b.insert("max_ra".into(), Value::Float(186.0));
        b.insert("min_dec".into(), Value::Float(-1.0));
        b.insert("max_dec".into(), Value::Float(1.0));
        let Region::Rect(r) = t.region_for(&b).unwrap() else {
            panic!()
        };
        assert_eq!(r.lo(), &[184.0, -1.0]);
        assert_eq!(r.hi(), &[186.0, 1.0]);
    }

    #[test]
    fn xml_roundtrip_sphere_and_rect() {
        for t in [FunctionTemplate::sky_radial(), FunctionTemplate::sky_rect()] {
            let xml = t.to_xml();
            let back = FunctionTemplate::from_xml(&xml).unwrap();
            assert_eq!(back, t);
            // And through text.
            let doc = Element::parse(&xml.to_xml_pretty()).unwrap();
            assert_eq!(FunctionTemplate::from_xml(&doc).unwrap(), t);
        }
    }

    #[test]
    fn parses_the_paper_figure3_text() {
        // The paper's literal figure, adapted to this crate's child-element
        // convention and degree-based chord radius.
        let xml = r#"<FunctionTemplate>
            <Name>fGetNearbyObjEq</Name>
            <Params><P>ra</P><P>dec</P><P>radius</P></Params>
            <Shape>hypersphere</Shape>
            <NumDimensions>3</NumDimensions>
            <CenterCoordinate>
                <C>cos($ra)*cos($dec)</C>
                <C>sin($ra)*cos($dec)</C>
                <C>sin($dec)</C>
            </CenterCoordinate>
            <Radius>2.0*sin($radius/120.0)</Radius>
        </FunctionTemplate>"#;
        let t = FunctionTemplate::from_xml(&Element::parse(xml).unwrap()).unwrap();
        assert_eq!(t, FunctionTemplate::sky_radial());
    }

    #[test]
    fn polytope_template() {
        let xml = r#"<FunctionTemplate>
            <Name>fTriangle</Name>
            <Params><P>size</P></Params>
            <Shape>polytope</Shape>
            <NumDimensions>2</NumDimensions>
            <BBoxLow><C>0.0</C><C>0.0</C></BBoxLow>
            <BBoxHigh><C>$size</C><C>$size</C></BBoxHigh>
            <Face><Normal><C>-1.0</C><C>0.0</C></Normal><Offset>0.0</Offset></Face>
            <Face><Normal><C>0.0</C><C>-1.0</C></Normal><Offset>0.0</Offset></Face>
            <Face><Normal><C>1.0</C><C>1.0</C></Normal><Offset>$size</Offset></Face>
        </FunctionTemplate>"#;
        let t = FunctionTemplate::from_xml(&Element::parse(xml).unwrap()).unwrap();
        let mut b = Bindings::new();
        b.insert("size".into(), Value::Float(2.0));
        let region = t.region_for(&b).unwrap();
        assert!(region.contains_coords(&[0.5, 0.5]));
        assert!(!region.contains_coords(&[1.5, 1.5]));
        let back = FunctionTemplate::from_xml(&t.to_xml()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn errors_are_descriptive() {
        let missing = FunctionTemplate::from_xml(&Element::new("FunctionTemplate"));
        assert!(matches!(missing, Err(ProxyError::Template(_))));

        let t = FunctionTemplate::sky_radial();
        // Unbound parameter.
        let e = t.region_for(&Bindings::new());
        assert!(matches!(e, Err(ProxyError::Template(_))));
        // Non-numeric binding.
        let mut b = radial_bindings(1.0, 2.0, 3.0);
        b.insert("ra".into(), Value::Str("north".into()));
        assert!(t.region_for(&b).is_err());
        // Negative radius.
        let b = radial_bindings(1.0, 2.0, -3.0);
        assert!(t.region_for(&b).is_err());
    }
}
