//! Registered query templates: the parameterized queries plus the metadata
//! local evaluation depends on.

use crate::ProxyError;
use fp_sqlmini::{QueryTemplate, TableSource};

/// A query template registered with the proxy, together with:
///
/// * which of its `$params` feed the embedded function (the **spatial
///   parameters** — only these may vary between queries the proxy relates
///   geometrically; all other parameters must match exactly),
/// * the **coordinate attributes**: result columns holding the Cartesian
///   coordinates of each tuple's point (the paper's property 4, *result
///   attribute availability*),
/// * the **key column** used to deduplicate when merging cached and
///   remainder results, and
/// * the alias those columns live under in the template SQL (needed to
///   synthesize remainder predicates).
#[derive(Debug, Clone)]
pub struct RegisteredQueryTemplate {
    /// The parameterized query.
    pub template: QueryTemplate,
    /// Name of the embedded function template this query calls.
    pub function: String,
    /// `$params` that appear in the embedded function's argument list.
    pub spatial_params: Vec<String>,
    /// Result columns carrying the point coordinates, in region dimension
    /// order (e.g. `["cx", "cy", "cz"]` for Radial).
    pub coord_columns: Vec<String>,
    /// Alias qualifying the coordinate columns inside the template SQL
    /// (e.g. `p` for the `PhotoPrimary p` join).
    pub coord_alias: String,
    /// Column that uniquely keys result rows (e.g. `objID`).
    pub key_column: String,
}

impl RegisteredQueryTemplate {
    /// Builds a registered template, deriving `function` and
    /// `spatial_params` from the template's `FROM` clause.
    ///
    /// # Errors
    /// Returns [`ProxyError::Template`] when the template's primary source
    /// is not a function call, or the declared columns are absent from the
    /// select list (`SELECT *` and `alias.*` are accepted as covering
    /// everything).
    pub fn new(
        template: QueryTemplate,
        coord_columns: Vec<String>,
        coord_alias: impl Into<String>,
        key_column: impl Into<String>,
    ) -> Result<RegisteredQueryTemplate, ProxyError> {
        let TableSource::Function { name, args, .. } = &template.query.from else {
            return Err(ProxyError::Template(format!(
                "template `{}` must have a table-valued function in FROM",
                template.name
            )));
        };
        let function = name.clone();
        let mut spatial_params = Vec::new();
        for a in args {
            for p in a.params() {
                if !spatial_params.iter().any(|s: &String| s == p) {
                    spatial_params.push(p.to_string());
                }
            }
        }
        let coord_alias = coord_alias.into();
        let key_column = key_column.into();

        let reg = RegisteredQueryTemplate {
            template,
            function,
            spatial_params,
            coord_columns,
            coord_alias,
            key_column,
        };
        reg.check_result_attributes()?;
        Ok(reg)
    }

    /// Verifies the paper's property (4): the coordinate and key columns
    /// must be present in the projected output.
    fn check_result_attributes(&self) -> Result<(), ProxyError> {
        use fp_sqlmini::SelectItem;
        let select = &self.template.query.select;
        let covers_all = select.iter().any(|item| {
            matches!(item, SelectItem::Wildcard)
                || matches!(item, SelectItem::QualifiedWildcard(a) if *a == self.coord_alias)
        });
        if covers_all {
            return Ok(());
        }
        let mut need: Vec<&str> = self
            .coord_columns
            .iter()
            .map(String::as_str)
            .chain(std::iter::once(self.key_column.as_str()))
            .collect();
        need.retain(|col| {
            !select.iter().any(|item| {
                matches!(
                    item,
                    SelectItem::Expr { expr: fp_sqlmini::Expr::Column { name, .. }, alias: None }
                        if name == col
                )
            })
        });
        if need.is_empty() {
            Ok(())
        } else {
            Err(ProxyError::Template(format!(
                "template `{}` does not project required result attributes {:?} \
                 (paper property 4: result attribute availability)",
                self.template.name, need
            )))
        }
    }

    /// Residual (non-spatial) parameters of the template.
    pub fn residual_params(&self) -> Vec<&str> {
        self.template
            .params()
            .iter()
            .filter(|p| !self.spatial_params.iter().any(|s| s == *p))
            .map(|s| s.as_str())
            .collect()
    }

    /// The template's `TOP` limit, when declared.
    pub fn top(&self) -> Option<u64> {
        self.template.query.top
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_sqlmini::QueryTemplate;

    fn radial() -> QueryTemplate {
        QueryTemplate::parse(
            "radial",
            "SELECT p.objID, p.ra, p.dec, p.cx, p.cy, p.cz \
             FROM fGetNearbyObjEq($ra, $dec, $radius) n \
             JOIN PhotoPrimary p ON n.objID = p.objID \
             WHERE p.r < $maxmag",
        )
        .unwrap()
    }

    #[test]
    fn derives_function_and_spatial_params() {
        let reg = RegisteredQueryTemplate::new(
            radial(),
            vec!["cx".into(), "cy".into(), "cz".into()],
            "p",
            "objID",
        )
        .unwrap();
        assert_eq!(reg.function, "fGetNearbyObjEq");
        assert_eq!(reg.spatial_params, ["ra", "dec", "radius"]);
        assert_eq!(reg.residual_params(), ["maxmag"]);
        assert_eq!(reg.top(), None);
    }

    #[test]
    fn rejects_table_from() {
        let t = QueryTemplate::parse("t", "SELECT * FROM PhotoPrimary p").unwrap();
        assert!(matches!(
            RegisteredQueryTemplate::new(t, vec![], "p", "objID"),
            Err(ProxyError::Template(_))
        ));
    }

    #[test]
    fn enforces_result_attribute_availability() {
        // Projection misses cz.
        let t = QueryTemplate::parse(
            "r",
            "SELECT p.objID, p.cx, p.cy FROM fGetNearbyObjEq($ra, $dec, $radius) n \
             JOIN PhotoPrimary p ON n.objID = p.objID",
        )
        .unwrap();
        let e = RegisteredQueryTemplate::new(
            t,
            vec!["cx".into(), "cy".into(), "cz".into()],
            "p",
            "objID",
        );
        assert!(matches!(e, Err(ProxyError::Template(ref m)) if m.contains("cz")));

        // SELECT p.* covers everything.
        let t = QueryTemplate::parse(
            "r",
            "SELECT p.* FROM fGetNearbyObjEq($ra, $dec, $radius) n \
             JOIN PhotoPrimary p ON n.objID = p.objID",
        )
        .unwrap();
        assert!(RegisteredQueryTemplate::new(
            t,
            vec!["cx".into(), "cy".into(), "cz".into()],
            "p",
            "objID"
        )
        .is_ok());
    }
}
