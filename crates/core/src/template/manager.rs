//! The template manager: registration and request resolution.

use crate::template::{FunctionTemplate, InfoFile, RegisteredQueryTemplate};
use crate::ProxyError;
use fp_geometry::Region;
use fp_skyserver::exec::eval_const;
use fp_sqlmini::template::substitute_expr;
use fp_sqlmini::{parse_query, Bindings, Query, TableSource, Value};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;

/// A fully resolved query: template, bindings, region, concrete SQL.
///
/// This is the unit every proxy decision operates on. `residual_key`
/// encodes everything *non-spatial* that must agree before two queries may
/// be related geometrically: the template identity, the values of all
/// non-spatial parameters, and the `TOP` limit.
#[derive(Debug, Clone)]
pub struct BoundQuery {
    /// The registered template this query instantiates.
    pub reg: Arc<RegisteredQueryTemplate>,
    /// Parameter bindings recovered from the form/SQL.
    pub bindings: Bindings,
    /// The query's spatial region.
    pub region: Region,
    /// Group key: queries are only related within equal keys.
    pub residual_key: String,
    /// The concrete query AST.
    pub query: Query,
    /// Canonical SQL text (doubles as the passive-cache key).
    pub sql: String,
}

/// Registry of function templates, query templates, and info files.
#[derive(Default)]
pub struct TemplateManager {
    functions: HashMap<String, Arc<FunctionTemplate>>,
    queries: HashMap<String, Arc<RegisteredQueryTemplate>>,
    forms: HashMap<String, InfoFile>,
}

impl TemplateManager {
    /// An empty manager.
    pub fn new() -> Self {
        TemplateManager::default()
    }

    /// A manager pre-loaded with the SkyServer Radial and Rectangular
    /// artifacts used throughout the paper's evaluation.
    ///
    /// # Panics
    /// Never — the built-in artifacts are statically valid.
    pub fn with_sky_defaults() -> Self {
        let mut m = TemplateManager::new();
        m.register_function(FunctionTemplate::sky_radial())
            .expect("built-in radial function template");
        m.register_function(FunctionTemplate::sky_rect())
            .expect("built-in rect function template");

        let radial = fp_sqlmini::QueryTemplate::parse(
            "radial",
            "SELECT p.objID, p.ra, p.dec, p.cx, p.cy, p.cz, p.u, p.g, p.r, p.i, p.z \
             FROM fGetNearbyObjEq($ra, $dec, $radius) n \
             JOIN PhotoPrimary p ON n.objID = p.objID",
        )
        .expect("built-in radial SQL");
        m.register_query(
            RegisteredQueryTemplate::new(
                radial,
                vec!["cx".into(), "cy".into(), "cz".into()],
                "p",
                "objID",
            )
            .expect("built-in radial registration"),
        )
        .expect("radial registers");
        m.register_info(InfoFile::identity(
            "/search/radial",
            "radial",
            &["ra", "dec", "radius"],
        ))
        .expect("radial info file");

        let rect = fp_sqlmini::QueryTemplate::parse(
            "rect",
            "SELECT p.objID, p.ra, p.dec, p.cx, p.cy, p.cz, p.u, p.g, p.r, p.i, p.z \
             FROM fGetObjFromRect($min_ra, $max_ra, $min_dec, $max_dec) n \
             JOIN PhotoPrimary p ON n.objID = p.objID",
        )
        .expect("built-in rect SQL");
        m.register_query(
            RegisteredQueryTemplate::new(rect, vec!["ra".into(), "dec".into()], "p", "objID")
                .expect("built-in rect registration"),
        )
        .expect("rect registers");
        m.register_info(InfoFile::identity(
            "/search/rect",
            "rect",
            &["min_ra", "max_ra", "min_dec", "max_dec"],
        ))
        .expect("rect info file");

        m.register_function(FunctionTemplate::sky_triangle())
            .expect("built-in triangle function template");
        let triangle = fp_sqlmini::QueryTemplate::parse(
            "triangle",
            "SELECT p.objID, p.ra, p.dec, p.cx, p.cy, p.cz, p.u, p.g, p.r, p.i, p.z \
             FROM fGetObjFromTriangle($ra1, $dec1, $ra2, $dec2, $ra3, $dec3) n \
             JOIN PhotoPrimary p ON n.objID = p.objID",
        )
        .expect("built-in triangle SQL");
        m.register_query(
            RegisteredQueryTemplate::new(triangle, vec!["ra".into(), "dec".into()], "p", "objID")
                .expect("built-in triangle registration"),
        )
        .expect("triangle registers");
        m.register_info(InfoFile::identity(
            "/search/triangle",
            "triangle",
            &["ra1", "dec1", "ra2", "dec2", "ra3", "dec3"],
        ))
        .expect("triangle info file");

        m
    }

    /// Registers a function template.
    ///
    /// # Errors
    /// Returns [`ProxyError::Template`] on duplicate names.
    pub fn register_function(&mut self, t: FunctionTemplate) -> Result<(), ProxyError> {
        if self.functions.contains_key(&t.name) {
            return Err(ProxyError::Template(format!(
                "function template `{}` already registered",
                t.name
            )));
        }
        self.functions.insert(t.name.clone(), Arc::new(t));
        Ok(())
    }

    /// Registers a query template; its embedded function template must be
    /// registered first and the argument count must match.
    ///
    /// # Errors
    /// Returns [`ProxyError::Template`] on duplicates or inconsistencies.
    pub fn register_query(&mut self, reg: RegisteredQueryTemplate) -> Result<(), ProxyError> {
        let name = reg.template.name.clone();
        if self.queries.contains_key(&name) {
            return Err(ProxyError::Template(format!(
                "query template `{name}` already registered"
            )));
        }
        let func = self.functions.get(&reg.function).ok_or_else(|| {
            ProxyError::Template(format!(
                "query template `{name}` calls unregistered function `{}`",
                reg.function
            ))
        })?;
        let TableSource::Function { args, .. } = &reg.template.query.from else {
            unreachable!("checked by RegisteredQueryTemplate::new");
        };
        if args.len() != func.params.len() {
            return Err(ProxyError::Template(format!(
                "`{}` takes {} arguments, template `{name}` passes {}",
                reg.function,
                func.params.len(),
                args.len()
            )));
        }
        if reg.coord_columns.len() != func.dims() {
            return Err(ProxyError::Template(format!(
                "template `{name}` declares {} coordinate columns but `{}` is {}-dimensional",
                reg.coord_columns.len(),
                reg.function,
                func.dims()
            )));
        }
        self.queries.insert(name, Arc::new(reg));
        Ok(())
    }

    /// Registers an info file; its query template must exist.
    ///
    /// # Errors
    /// Returns [`ProxyError::Template`] on duplicates or dangling
    /// template references.
    pub fn register_info(&mut self, info: InfoFile) -> Result<(), ProxyError> {
        if self.forms.contains_key(&info.form_path) {
            return Err(ProxyError::Template(format!(
                "form `{}` already registered",
                info.form_path
            )));
        }
        if !self.queries.contains_key(&info.query_template) {
            return Err(ProxyError::Template(format!(
                "info file for `{}` references unknown template `{}`",
                info.form_path, info.query_template
            )));
        }
        self.forms.insert(info.form_path.clone(), info);
        Ok(())
    }

    /// Looks up a registered query template by name.
    pub fn query_template(&self, name: &str) -> Option<&Arc<RegisteredQueryTemplate>> {
        self.queries.get(name)
    }

    /// Looks up a function template by name.
    pub fn function_template(&self, name: &str) -> Option<&Arc<FunctionTemplate>> {
        self.functions.get(name)
    }

    /// Resolves a form request (`path` + decoded fields) into a
    /// [`BoundQuery`].
    ///
    /// # Errors
    /// [`ProxyError::UnknownForm`] for unregistered paths,
    /// [`ProxyError::BadRequest`] for missing fields,
    /// [`ProxyError::Template`] when formulas fail to evaluate.
    pub fn resolve_form(
        &self,
        path: &str,
        fields: &[(String, String)],
    ) -> Result<BoundQuery, ProxyError> {
        let info = self
            .forms
            .get(path)
            .ok_or_else(|| ProxyError::UnknownForm(path.to_string()))?;
        let reg = self
            .queries
            .get(&info.query_template)
            .expect("registration validated the reference");

        let mut bindings = Bindings::new();
        for (field, param) in &info.field_map {
            if let Some((_, v)) = fields.iter().find(|(k, _)| k == field) {
                bindings.insert(param.clone(), Value::from_form_text(v));
            }
        }
        for (param, default) in &info.defaults {
            bindings
                .entry(param.clone())
                .or_insert_with(|| Value::from_form_text(default));
        }
        if let Some(missing) = reg
            .template
            .params()
            .iter()
            .find(|p| !bindings.contains_key(*p))
        {
            return Err(ProxyError::BadRequest(format!(
                "missing form field for parameter `{missing}`"
            )));
        }

        self.bind(Arc::clone(reg), bindings)
    }

    /// Resolves raw SQL text against the registered templates (the path a
    /// power user's typed query takes). Returns `None` when no template
    /// matches — such queries bypass active caching.
    pub fn resolve_sql(&self, sql: &str) -> Option<Result<BoundQuery, ProxyError>> {
        let query = parse_query(sql).ok()?;
        self.resolve_query(&query)
    }

    /// [`TemplateManager::resolve_sql`] on an already-parsed query.
    pub fn resolve_query(&self, query: &Query) -> Option<Result<BoundQuery, ProxyError>> {
        for reg in self.queries.values() {
            if let Some(bindings) = reg.template.match_query(query) {
                return Some(self.bind(Arc::clone(reg), bindings));
            }
        }
        None
    }

    /// Builds the bound form: instantiate SQL, map function arguments,
    /// evaluate the region, derive the residual key.
    fn bind(
        &self,
        reg: Arc<RegisteredQueryTemplate>,
        bindings: Bindings,
    ) -> Result<BoundQuery, ProxyError> {
        let query = reg
            .template
            .instantiate(&bindings)
            .map_err(|e| ProxyError::BadRequest(e.to_string()))?;
        let sql = query.to_sql();

        // Map the TVF's positional arguments onto the function template's
        // parameter names, evaluating each argument under the bindings.
        let func = self
            .functions
            .get(&reg.function)
            .expect("registration validated the reference");
        let TableSource::Function { args, .. } = &reg.template.query.from else {
            unreachable!("checked at registration");
        };
        let mut func_bindings = Bindings::new();
        for (param, arg) in func.params.iter().zip(args) {
            let bound = substitute_expr(arg, &bindings);
            let value = eval_const(&bound).ok_or_else(|| {
                ProxyError::BadRequest(format!(
                    "function argument `{arg}` did not evaluate to a constant"
                ))
            })?;
            func_bindings.insert(param.clone(), value);
        }
        let region = func.region_for(&func_bindings)?;

        // Residual key: template identity + all non-spatial parameter
        // values + TOP. Two queries relate geometrically only within one
        // residual group.
        let mut residual_key = format!("{}|top={:?}", reg.template.name, reg.top());
        for p in reg.residual_params() {
            let v = bindings.get(p).expect("instantiate checked completeness");
            let _ = write!(residual_key, "|{p}={v}");
        }

        Ok(BoundQuery {
            reg,
            bindings,
            region,
            residual_key,
            query,
            sql,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_geometry::celestial::radial_query_sphere;

    fn fields(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn resolves_radial_form() {
        let m = TemplateManager::with_sky_defaults();
        let b = m
            .resolve_form(
                "/search/radial",
                &fields(&[("ra", "185.0"), ("dec", "1.5"), ("radius", "30")]),
            )
            .unwrap();
        assert_eq!(b.reg.template.name, "radial");
        let Region::Sphere(s) = &b.region else {
            panic!()
        };
        assert!(s.approx_eq(&radial_query_sphere(185.0, 1.5, 30.0).unwrap()));
        assert!(b.sql.contains("fGetNearbyObjEq(185.0, 1.5, 30)"));
    }

    #[test]
    fn unknown_form_and_missing_fields() {
        let m = TemplateManager::with_sky_defaults();
        assert!(matches!(
            m.resolve_form("/nope", &[]),
            Err(ProxyError::UnknownForm(_))
        ));
        assert!(matches!(
            m.resolve_form("/search/radial", &fields(&[("ra", "1")])),
            Err(ProxyError::BadRequest(_))
        ));
    }

    #[test]
    fn resolve_sql_recovers_template_and_region() {
        let m = TemplateManager::with_sky_defaults();
        let b = m
            .resolve_sql(
                "SELECT p.objID, p.ra, p.dec, p.cx, p.cy, p.cz, p.u, p.g, p.r, p.i, p.z \
                 FROM fGetNearbyObjEq(200.0, -2.0, 10.0) n \
                 JOIN PhotoPrimary p ON n.objID = p.objID",
            )
            .unwrap()
            .unwrap();
        assert_eq!(b.reg.template.name, "radial");
        let Region::Sphere(s) = &b.region else {
            panic!()
        };
        assert!(s.approx_eq(&radial_query_sphere(200.0, -2.0, 10.0).unwrap()));
    }

    #[test]
    fn resolve_sql_rejects_unknown_shapes() {
        let m = TemplateManager::with_sky_defaults();
        assert!(m.resolve_sql("SELECT * FROM PhotoPrimary p").is_none());
        assert!(m.resolve_sql("not sql at all").is_none());
    }

    #[test]
    fn residual_key_separates_templates_and_tops() {
        let m = TemplateManager::with_sky_defaults();
        let a = m
            .resolve_form(
                "/search/radial",
                &fields(&[("ra", "185.0"), ("dec", "1.5"), ("radius", "30")]),
            )
            .unwrap();
        let b = m
            .resolve_form(
                "/search/rect",
                &fields(&[
                    ("min_ra", "184.0"),
                    ("max_ra", "186.0"),
                    ("min_dec", "0.0"),
                    ("max_dec", "1.0"),
                ]),
            )
            .unwrap();
        assert_ne!(a.residual_key, b.residual_key);
        // Same form, different spatial params → same residual key.
        let c = m
            .resolve_form(
                "/search/radial",
                &fields(&[("ra", "10.0"), ("dec", "0.0"), ("radius", "5")]),
            )
            .unwrap();
        assert_eq!(a.residual_key, c.residual_key);
    }

    #[test]
    fn resolve_sql_matches_the_triangle_template() {
        let m = TemplateManager::with_sky_defaults();
        let b = m
            .resolve_sql(
                "SELECT p.objID, p.ra, p.dec, p.cx, p.cy, p.cz, p.u, p.g, p.r, p.i, p.z \
                 FROM fGetObjFromTriangle(184.0, -0.5, 186.5, -0.5, 185.2, 1.0) n \
                 JOIN PhotoPrimary p ON n.objID = p.objID",
            )
            .unwrap()
            .unwrap();
        assert_eq!(b.reg.template.name, "triangle");
        assert_eq!(b.region.shape_name(), "polytope");
        // The region matches the origin's construction exactly.
        let server = fp_skyserver::tvf::triangle_polytope(184.0, -0.5, 186.5, -0.5, 185.2, 1.0)
            .expect("CCW triangle");
        assert_eq!(b.region, Region::Polytope(server));
    }

    #[test]
    fn registration_validation() {
        let mut m = TemplateManager::new();
        // Query before function → error.
        let qt = fp_sqlmini::QueryTemplate::parse(
            "q",
            "SELECT p.objID, p.cx, p.cy, p.cz FROM fGetNearbyObjEq($a, $b, $c) n \
             JOIN PhotoPrimary p ON n.objID = p.objID",
        )
        .unwrap();
        let reg = RegisteredQueryTemplate::new(
            qt,
            vec!["cx".into(), "cy".into(), "cz".into()],
            "p",
            "objID",
        )
        .unwrap();
        assert!(m.register_query(reg.clone()).is_err());

        m.register_function(FunctionTemplate::sky_radial()).unwrap();
        m.register_query(reg.clone()).unwrap();
        // Duplicate query template name.
        assert!(m.register_query(reg).is_err());
        // Duplicate function template name.
        assert!(m.register_function(FunctionTemplate::sky_radial()).is_err());
        // Info referencing missing template.
        assert!(m
            .register_info(InfoFile::identity("/f", "missing", &[]))
            .is_err());
    }

    #[test]
    fn defaults_fill_missing_fields() {
        let mut m = TemplateManager::new();
        m.register_function(FunctionTemplate::sky_radial()).unwrap();
        let qt = fp_sqlmini::QueryTemplate::parse(
            "radial_mag",
            "SELECT p.objID, p.cx, p.cy, p.cz FROM fGetNearbyObjEq($ra, $dec, $radius) n \
             JOIN PhotoPrimary p ON n.objID = p.objID WHERE p.r < $maxmag",
        )
        .unwrap();
        m.register_query(
            RegisteredQueryTemplate::new(
                qt,
                vec!["cx".into(), "cy".into(), "cz".into()],
                "p",
                "objID",
            )
            .unwrap(),
        )
        .unwrap();
        let mut info = InfoFile::identity("/radmag", "radial_mag", &["ra", "dec", "radius"]);
        info.defaults.push(("maxmag".into(), "22.5".into()));
        m.register_info(info).unwrap();

        let b = m
            .resolve_form(
                "/radmag",
                &fields(&[("ra", "185.0"), ("dec", "0.0"), ("radius", "5")]),
            )
            .unwrap();
        assert!(b.sql.contains("p.r < 22.5"));
        // Residual key contains the default value.
        assert!(b.residual_key.contains("maxmag=22.5"));
    }
}
