//! Cache lifecycle: TTLs, data-release epochs, staleness windows, and
//! crash-safe snapshots.
//!
//! The paper's proxy assumes cached TVF results stay valid forever; a
//! deployed SkyServer proxy cannot. Survey catalogs change per **data
//! release**, so every cache entry is stamped with the release **epoch**
//! it was fetched under, and bumping the epoch retires every pre-bump
//! entry. Within one release, freshness is bounded by a per-template
//! **TTL**; an expired entry passes through three windows before it dies:
//!
//! ```text
//!  insert ──ttl──▶ expiry ──swr──▶              ──sie──▶ dead
//!  [   Fresh    ] [    Stale     ] [    Grace           ]
//!   serve normal   serve + refresh  serve only on error
//! ```
//!
//! * **Fresh** — served normally.
//! * **Stale** (within the stale-while-revalidate window) — served
//!   immediately, flagged `stale`, while a background single-flight
//!   refresh fetches the entry's own query from the origin.
//! * **Grace** (past the revalidate window but within stale-if-error) —
//!   invisible to the healthy serve path, but still served (flagged
//!   `stale`) when the origin is down: an outage *extends* expired
//!   entries instead of abandoning them.
//! * **Dead** — past every window; retired lazily on the next probe.
//!
//! All timing runs on the injectable [`crate::resilience::Clock`], so
//! every TTL, refresh, and snapshot decision is deterministic under a
//! `MockClock`. The [`snapshot`] submodule provides the versioned,
//! checksummed on-disk segment format behind crash-safe warm restarts.

pub mod snapshot;

use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Lifecycle policy carried by [`crate::config::ProxyConfig`]. The
/// default is fully inert: no TTLs, epoch 0, no snapshots — exactly the
/// pre-lifecycle behaviour.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LifecycleConfig {
    /// TTL applied to entries whose template has no specific TTL.
    /// `None` = those entries never expire.
    pub default_ttl: Option<Duration>,
    /// Per-template TTL overrides, keyed by template name (the residual
    /// key's prefix before the first `|`).
    pub template_ttls: Vec<(String, Duration)>,
    /// How long past expiry an entry is still served (flagged `stale`)
    /// while a background refresh runs.
    pub stale_while_revalidate: Duration,
    /// How long past expiry an entry may still be served when the
    /// origin is unreachable (breaker open, outage). Typically ≥ the
    /// revalidate window.
    pub stale_if_error: Duration,
    /// The data-release epoch new entries are stamped with at startup.
    /// The origin may advertise a newer one at any time
    /// ([`crate::origin::Origin::advertised_epoch`]).
    pub epoch: u64,
    /// Crash-safe snapshot schedule; `None` disables persistence.
    pub snapshot: Option<SnapshotPolicy>,
}

/// Where and how often the runtime writes cache snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotPolicy {
    /// Directory holding one `shard_<i>.fpsnap` file per cache shard.
    pub dir: PathBuf,
    /// Minimum virtual time between snapshot passes. Checked
    /// opportunistically at the end of each served request — no timer
    /// thread, so the schedule is deterministic under a mock clock.
    pub interval: Duration,
}

impl LifecycleConfig {
    /// Whether any lifecycle feature is configured. Inactive lifecycle
    /// keeps the store clock-free and every serve path unchanged.
    pub fn is_active(&self) -> bool {
        self.default_ttl.is_some()
            || !self.template_ttls.is_empty()
            || self.epoch > 0
            || self.snapshot.is_some()
    }

    /// The TTL for an entry under `residual_key` (template name is the
    /// prefix before the first `|`): the template's own TTL when one is
    /// registered, else the default.
    pub fn ttl_for(&self, residual_key: &str) -> Option<Duration> {
        let name = residual_key.split('|').next().unwrap_or(residual_key);
        self.template_ttls
            .iter()
            .find(|(t, _)| t == name)
            .map(|(_, ttl)| *ttl)
            .or(self.default_ttl)
    }

    /// The widest post-expiry window an entry may ever be served in;
    /// past it the entry is [`Freshness::Dead`].
    pub fn grace_window(&self) -> Duration {
        self.stale_while_revalidate.max(self.stale_if_error)
    }

    /// Builder: the default TTL.
    pub fn with_default_ttl(mut self, ttl: Duration) -> Self {
        self.default_ttl = Some(ttl);
        self
    }

    /// Builder: a per-template TTL override.
    pub fn with_template_ttl(mut self, template: &str, ttl: Duration) -> Self {
        self.template_ttls.push((template.to_string(), ttl));
        self
    }

    /// Builder: the stale-while-revalidate window.
    pub fn with_stale_while_revalidate(mut self, window: Duration) -> Self {
        self.stale_while_revalidate = window;
        self
    }

    /// Builder: the stale-if-error window.
    pub fn with_stale_if_error(mut self, window: Duration) -> Self {
        self.stale_if_error = window;
        self
    }

    /// Builder: the startup epoch.
    pub fn with_epoch(mut self, epoch: u64) -> Self {
        self.epoch = epoch;
        self
    }

    /// Builder: the snapshot schedule.
    pub fn with_snapshot(mut self, dir: impl Into<PathBuf>, interval: Duration) -> Self {
        self.snapshot = Some(SnapshotPolicy {
            dir: dir.into(),
            interval,
        });
        self
    }
}

/// Where an entry sits in its lifecycle (see the module docs' timeline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Freshness {
    /// Within its TTL (or has none): served normally.
    Fresh,
    /// Expired but within stale-while-revalidate: served flagged
    /// `stale`, refreshed in the background.
    Stale,
    /// Past the revalidate window but within stale-if-error: served
    /// only when the origin fetch fails.
    Grace,
    /// Past every window: retired on the next probe.
    Dead,
}

impl Freshness {
    /// Whether an entry in this state may be served. `allow_grace` is
    /// the error path's privilege (origin down).
    pub fn serveable(self, allow_grace: bool) -> bool {
        match self {
            Freshness::Fresh | Freshness::Stale => true,
            Freshness::Grace => allow_grace,
            Freshness::Dead => false,
        }
    }
}

/// Classifies an expiry deadline against `now` under the configured
/// post-expiry windows.
pub fn freshness_at(
    expires_at: Instant,
    now: Instant,
    stale_while_revalidate: Duration,
    stale_if_error: Duration,
) -> Freshness {
    if now <= expires_at {
        return Freshness::Fresh;
    }
    let over = now.saturating_duration_since(expires_at);
    if over <= stale_while_revalidate {
        Freshness::Stale
    } else if over <= stale_while_revalidate.max(stale_if_error) {
        Freshness::Grace
    } else {
        Freshness::Dead
    }
}

/// Lifecycle metadata persisted with (and restored from) a snapshot
/// entry. Times are stored *relative* (age, remaining TTL) because
/// `Instant` does not survive a process restart.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LifecycleStamp {
    /// The epoch the entry was fetched under.
    pub epoch: u64,
    /// How old the entry was when the snapshot was written.
    pub age_ms: Option<u64>,
    /// TTL remaining at snapshot time; negative = already expired by
    /// that many milliseconds (still restorable into Stale/Grace).
    pub remaining_ms: Option<i64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: Duration = Duration::from_millis(1);

    #[test]
    fn default_config_is_inert() {
        let c = LifecycleConfig::default();
        assert!(!c.is_active());
        assert_eq!(c.ttl_for("radial|top=None"), None);
        assert_eq!(c.grace_window(), Duration::ZERO);
    }

    #[test]
    fn template_ttls_override_the_default() {
        let c = LifecycleConfig::default()
            .with_default_ttl(100 * MS)
            .with_template_ttl("radial", 30 * MS);
        assert!(c.is_active());
        assert_eq!(c.ttl_for("radial|top=None|r=1"), Some(30 * MS));
        assert_eq!(c.ttl_for("rect|top=None"), Some(100 * MS));
        assert_eq!(c.ttl_for("radial"), Some(30 * MS));
    }

    #[test]
    fn freshness_windows_partition_the_timeline() {
        let t0 = Instant::now();
        let exp = t0 + 100 * MS;
        let f = |now_ms: u32| freshness_at(exp, t0 + now_ms * MS, 50 * MS, 200 * MS);
        assert_eq!(f(0), Freshness::Fresh);
        assert_eq!(f(100), Freshness::Fresh, "deadline itself is fresh");
        assert_eq!(f(101), Freshness::Stale);
        assert_eq!(f(150), Freshness::Stale);
        assert_eq!(f(151), Freshness::Grace);
        assert_eq!(f(300), Freshness::Grace);
        assert_eq!(f(301), Freshness::Dead);
        assert!(Freshness::Fresh.serveable(false));
        assert!(Freshness::Stale.serveable(false));
        assert!(!Freshness::Grace.serveable(false));
        assert!(Freshness::Grace.serveable(true));
        assert!(!Freshness::Dead.serveable(true));
    }

    #[test]
    fn grace_window_covers_the_wider_window() {
        let t0 = Instant::now();
        // stale_if_error narrower than stale-while-revalidate: the
        // serve window still extends to the wider of the two.
        let f = freshness_at(t0, t0 + 80 * MS, 100 * MS, 10 * MS);
        assert_eq!(f, Freshness::Stale);
        let c = LifecycleConfig::default()
            .with_stale_while_revalidate(100 * MS)
            .with_stale_if_error(10 * MS);
        assert_eq!(c.grace_window(), 100 * MS);
    }
}
