//! The crash-safe on-disk snapshot container: a versioned, checksummed
//! segment file per cache shard.
//!
//! ```text
//! shard_<i>.fpsnap := header segment*
//! header           := magic "FPSNAP01" (8) · version u32 LE · epoch u64 LE
//! segment          := len u32 LE · crc32 u32 LE · payload (len bytes)
//! ```
//!
//! Each payload is one cache entry's XML document (the same serialization
//! `persist` uses, extended with lifecycle attributes). The format is
//! deliberately recoverable from the front: a truncated file yields the
//! intact prefix of segments, and a segment whose CRC32 does not match is
//! skipped — the length prefix keeps the stream aligned — so corruption
//! costs the damaged entries, never the snapshot. Files are written to a
//! temporary sibling and atomically renamed into place, so a crash
//! mid-write leaves the previous snapshot untouched.

use std::fs;
use std::io::{self, Write};
use std::path::Path;

/// Leading magic bytes of every snapshot file.
pub const MAGIC: &[u8; 8] = b"FPSNAP01";
/// Current snapshot format version; bumped on layout changes.
pub const VERSION: u32 = 1;

const HEADER_LEN: usize = 8 + 4 + 8;
const SEGMENT_HEADER_LEN: usize = 4 + 4;

/// CRC32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the same
/// checksum gzip and PNG use, computed bitwise to stay dependency-free.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Writes one snapshot file atomically: header + one checksummed segment
/// per payload, staged in `<path>.tmp` and renamed over the target.
pub fn write_snapshot_file(path: &Path, epoch: u64, segments: &[Vec<u8>]) -> io::Result<()> {
    let tmp = path.with_extension("fpsnap.tmp");
    {
        let mut out = io::BufWriter::new(fs::File::create(&tmp)?);
        out.write_all(MAGIC)?;
        out.write_all(&VERSION.to_le_bytes())?;
        out.write_all(&epoch.to_le_bytes())?;
        for payload in segments {
            let len = u32::try_from(payload.len())
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "segment too large"))?;
            out.write_all(&len.to_le_bytes())?;
            out.write_all(&crc32(payload).to_le_bytes())?;
            out.write_all(payload)?;
        }
        out.flush()?;
    }
    fs::rename(&tmp, path)
}

/// A decoded snapshot file: the intact segments plus how many were lost
/// to corruption or truncation.
#[derive(Debug, Default)]
pub struct SnapshotFile {
    /// Epoch recorded in the file header.
    pub epoch: u64,
    /// Payloads whose checksum verified.
    pub segments: Vec<Vec<u8>>,
    /// Segments dropped: CRC mismatch, impossible length, or a
    /// truncated tail.
    pub corrupt_segments: usize,
}

/// Reads a snapshot file, salvaging every intact segment. Corruption
/// inside the stream is tolerated and counted; only a missing or
/// unrecognisable header (wrong magic/version) is an error, which the
/// caller should treat as "this file contributes nothing".
pub fn read_snapshot_file(path: &Path) -> io::Result<SnapshotFile> {
    let data = fs::read(path)?;
    if data.len() < HEADER_LEN || &data[..8] != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a snapshot file (bad magic)",
        ));
    }
    let version = u32::from_le_bytes(data[8..12].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported snapshot version {version}"),
        ));
    }
    let epoch = u64::from_le_bytes(data[12..HEADER_LEN].try_into().expect("8 bytes"));

    let mut file = SnapshotFile {
        epoch,
        ..SnapshotFile::default()
    };
    let mut off = HEADER_LEN;
    while off < data.len() {
        if off + SEGMENT_HEADER_LEN > data.len() {
            file.corrupt_segments += 1; // truncated mid-header
            break;
        }
        let len = u32::from_le_bytes(data[off..off + 4].try_into().expect("4 bytes")) as usize;
        let want_crc = u32::from_le_bytes(data[off + 4..off + 8].try_into().expect("4 bytes"));
        off += SEGMENT_HEADER_LEN;
        if off + len > data.len() {
            file.corrupt_segments += 1; // truncated mid-payload (or length bit-rot)
            break;
        }
        let payload = &data[off..off + len];
        off += len;
        if crc32(payload) == want_crc {
            file.segments.push(payload.to_vec());
        } else {
            file.corrupt_segments += 1; // damaged payload; stream stays aligned
        }
    }
    Ok(file)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trips_segments() {
        let dir = std::env::temp_dir().join("fpsnap_roundtrip_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("shard_0.fpsnap");
        let segs = vec![b"<CacheEntry/>".to_vec(), vec![0u8; 1024], Vec::new()];
        write_snapshot_file(&path, 7, &segs).expect("writes");
        let read = read_snapshot_file(&path).expect("reads");
        assert_eq!(read.epoch, 7);
        assert_eq!(read.segments, segs);
        assert_eq!(read.corrupt_segments, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_is_skipped_and_truncation_keeps_the_prefix() {
        let dir = std::env::temp_dir().join("fpsnap_corrupt_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("shard_0.fpsnap");
        let segs: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 64]).collect();
        write_snapshot_file(&path, 1, &segs).expect("writes");

        // Flip a byte inside segment 1's payload: only that segment dies.
        let mut data = std::fs::read(&path).expect("read back");
        let seg1_payload = HEADER_LEN + SEGMENT_HEADER_LEN + 64 + SEGMENT_HEADER_LEN + 3;
        data[seg1_payload] ^= 0xFF;
        std::fs::write(&path, &data).expect("rewrite");
        let read = read_snapshot_file(&path).expect("reads despite corruption");
        assert_eq!(read.segments.len(), 3);
        assert_eq!(read.corrupt_segments, 1);
        assert_eq!(read.segments[0], segs[0]);
        assert_eq!(read.segments[1], segs[2]);

        // Truncate mid-payload: the intact prefix survives.
        write_snapshot_file(&path, 1, &segs).expect("writes");
        let data = std::fs::read(&path).expect("read back");
        // 75 bytes removes segment 3 entirely and cuts into segment 2's
        // payload; segments 0 and 1 survive.
        std::fs::write(&path, &data[..data.len() - 75]).expect("truncate");
        let read = read_snapshot_file(&path).expect("reads despite truncation");
        assert_eq!(read.segments.len(), 2);
        assert_eq!(read.corrupt_segments, 1);

        // Garbage file: hard error, caller skips the whole file.
        std::fs::write(&path, b"not a snapshot").expect("garbage");
        assert!(read_snapshot_file(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
