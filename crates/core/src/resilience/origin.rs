//! [`ResilientOrigin`]: deadlines, retries, and the circuit breaker
//! wrapped around any [`Origin`].
//!
//! The decorator is the single choke point the whole fetch path goes
//! through when resilience is configured (see
//! [`crate::runtime::ProxyHandle`]). Per request it enforces:
//!
//! 1. a **deadline** covering every attempt *and* every backoff wait —
//!    a synchronous origin cannot be preempted mid-call, so a result
//!    that lands after the budget is spent is counted as a timeout and
//!    discarded (the caller has already moved on to degraded serving);
//! 2. **bounded retries** with seeded-jitter exponential backoff for
//!    transient failures only — rejections prove the origin is alive
//!    and are returned immediately;
//! 3. the **circuit breaker**: consecutive transient failures open the
//!    circuit, after which fetches fail fast with a `Retry-After` hint
//!    until a cooldown admits a probe.

use super::backoff::Backoff;
use super::breaker::{Admission, BreakerState, CircuitBreaker};
use super::clock::{Clock, SystemClock};
use super::ResilienceConfig;
use crate::observe::{Observer, PathClass, Phase};
use crate::origin::{Origin, OriginError};
use fp_skyserver::result::QueryOutcome;
use fp_sqlmini::Query;
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Cumulative counters of the resilience layer, updated lock-free.
#[derive(Debug, Default)]
struct Stats {
    attempts: AtomicU64,
    retries: AtomicU64,
    timeouts: AtomicU64,
    fast_fails: AtomicU64,
}

/// A point-in-time copy of the resilience counters plus the breaker's
/// state, for reports and runtime snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ResilienceSnapshot {
    /// Origin `execute` calls actually attempted.
    pub attempts: u64,
    /// Attempts beyond the first for a request (backoff retries).
    pub retries: u64,
    /// Requests whose deadline expired (attempt answered too late or
    /// not at all).
    pub timeouts: u64,
    /// Fetches rejected without a network attempt because the circuit
    /// was open.
    pub fast_fails: u64,
    /// Times the circuit opened.
    pub breaker_opens: u64,
    /// The breaker's state at snapshot time.
    pub breaker_state: &'static str,
    /// Milliseconds until an open breaker admits its next probe; `0`
    /// unless the breaker is open. The live `Retry-After` hint.
    pub breaker_retry_after_ms: u64,
    /// The backoff delay this layer would prescribe before the next
    /// retry, in milliseconds: the most recent delay actually slept,
    /// or the configured base before any retry has happened. The
    /// `Retry-After` fallback when the breaker is *not* open.
    pub backoff_hint_ms: u64,
}

impl Default for ResilienceSnapshot {
    fn default() -> Self {
        ResilienceSnapshot {
            attempts: 0,
            retries: 0,
            timeouts: 0,
            fast_fails: 0,
            breaker_opens: 0,
            breaker_state: "none",
            breaker_retry_after_ms: 0,
            backoff_hint_ms: 0,
        }
    }
}

/// The fault-tolerant origin decorator. Cheap to share (`Arc`), safe
/// from any thread.
pub struct ResilientOrigin {
    inner: Arc<dyn Origin>,
    config: ResilienceConfig,
    clock: Arc<dyn Clock>,
    breaker: CircuitBreaker,
    backoff: Mutex<Backoff>,
    stats: Stats,
    /// Most recent backoff delay slept, ms (0 = no retry yet).
    last_backoff_ms: AtomicU64,
    /// Optional observe hook: backoff-wait histogram + attempt spans.
    observer: Option<Arc<Observer>>,
}

impl ResilientOrigin {
    /// Wraps `inner` with the given policy on the system clock.
    pub fn new(inner: Arc<dyn Origin>, config: ResilienceConfig) -> Self {
        Self::with_clock(inner, config, Arc::new(SystemClock))
    }

    /// Wraps `inner` with an injected clock (tests, chaos harness).
    pub fn with_clock(
        inner: Arc<dyn Origin>,
        config: ResilienceConfig,
        clock: Arc<dyn Clock>,
    ) -> Self {
        let breaker = CircuitBreaker::new(
            config.breaker_threshold,
            config.breaker_cooldown,
            Arc::clone(&clock),
        );
        let backoff = Mutex::new(Backoff::new(
            config.backoff_base,
            config.backoff_cap,
            config.backoff_seed,
        ));
        ResilientOrigin {
            inner,
            config,
            clock,
            breaker,
            backoff,
            stats: Stats::default(),
            last_backoff_ms: AtomicU64::new(0),
            observer: None,
        }
    }

    /// Attaches the observe layer: backoff waits land in its
    /// `backoff_wait` phase histogram and each origin attempt emits a
    /// trace span (when the calling request is sampled).
    pub fn with_observer(mut self, observer: Arc<Observer>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// The breaker's current state.
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.state()
    }

    /// A copy of the counters and breaker state.
    pub fn snapshot(&self) -> ResilienceSnapshot {
        let last_backoff = self.last_backoff_ms.load(Ordering::Relaxed);
        ResilienceSnapshot {
            attempts: self.stats.attempts.load(Ordering::Relaxed),
            retries: self.stats.retries.load(Ordering::Relaxed),
            timeouts: self.stats.timeouts.load(Ordering::Relaxed),
            fast_fails: self.stats.fast_fails.load(Ordering::Relaxed),
            breaker_opens: self.breaker.opens(),
            breaker_state: self.breaker.state().label(),
            breaker_retry_after_ms: self
                .breaker
                .remaining_open()
                .map_or(0, |d| d.as_millis().try_into().unwrap_or(u64::MAX)),
            backoff_hint_ms: if last_backoff > 0 {
                last_backoff
            } else {
                self.config
                    .backoff_base
                    .as_millis()
                    .try_into()
                    .unwrap_or(u64::MAX)
            },
        }
    }

    fn next_delay(&self, attempt: u32) -> std::time::Duration {
        let delay = self
            .backoff
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .delay(attempt);
        self.last_backoff_ms.store(
            delay.as_millis().try_into().unwrap_or(u64::MAX).max(1),
            Ordering::Relaxed,
        );
        delay
    }
}

impl Origin for ResilientOrigin {
    fn execute(&self, query: &Query) -> Result<QueryOutcome, OriginError> {
        let start = self.clock.now();
        let deadline = self.config.deadline;
        let mut last_error = None;

        for attempt in 0..=self.config.max_retries {
            let admission = self.breaker.admit();
            if let Admission::Reject { retry_after } = admission {
                self.stats.fast_fails.fetch_add(1, Ordering::Relaxed);
                return Err(OriginError::Overloaded { retry_after });
            }
            self.stats.attempts.fetch_add(1, Ordering::Relaxed);
            if attempt > 0 {
                self.stats.retries.fetch_add(1, Ordering::Relaxed);
            }

            let attempt_start = Instant::now();
            let result = self.inner.execute(query);
            if let Some(obs) = &self.observer {
                let failed = result.is_err();
                obs.span(
                    "origin.attempt",
                    "origin",
                    attempt_start,
                    attempt_start.elapsed(),
                    || Some(format!("attempt={attempt} failed={failed}")),
                );
            }
            let elapsed = self.clock.now().saturating_duration_since(start);
            let overdue = deadline.is_some_and(|d| elapsed > d);

            match result {
                // A rejection proves the origin is alive: report success
                // to the breaker, surface the error, never retry.
                Err(OriginError::Rejected(m)) => {
                    self.breaker.record_success(admission);
                    return Err(OriginError::Rejected(m));
                }
                Ok(outcome) if !overdue => {
                    self.breaker.record_success(admission);
                    return Ok(outcome);
                }
                // Too late: the answer is discarded and counts as a
                // timeout (the origin is struggling even if it answered).
                Ok(_) => {
                    self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                    self.breaker.record_failure(admission);
                    last_error = Some(OriginError::Timeout {
                        elapsed,
                        deadline: deadline.expect("overdue implies a deadline"),
                    });
                }
                Err(e) => {
                    self.breaker.record_failure(admission);
                    if overdue {
                        self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                    }
                    last_error = Some(e);
                }
            }

            // The deadline covers retries and backoff too: stop when the
            // budget is spent or the next wait would overrun it.
            if overdue || attempt == self.config.max_retries {
                break;
            }
            let delay = self.next_delay(attempt + 1);
            if deadline.is_some_and(|d| elapsed + delay > d) {
                break;
            }
            let wait_start = Instant::now();
            self.clock.sleep(delay);
            if let Some(obs) = &self.observer {
                // Backoff only ever happens on an origin-bound (miss)
                // path; background revalidation retries land here too
                // and are folded in — the wait is origin-imposed either
                // way. The recorded time is the *prescribed* delay, so
                // virtual clocks report honest waits.
                obs.record_phase(
                    Phase::BackoffWait,
                    PathClass::Miss,
                    delay.as_secs_f64() * 1e3,
                );
                obs.span("backoff.wait", "origin", wait_start, delay, || None);
            }
        }

        Err(last_error.expect("loop ran at least one attempt"))
    }

    fn supports_remainder(&self) -> bool {
        self.inner.supports_remainder()
    }

    fn advertised_epoch(&self) -> Option<u64> {
        self.inner.advertised_epoch()
    }
}

#[cfg(test)]
mod tests {
    use super::super::chaos::{ChaosOrigin, Fault};
    use super::super::clock::MockClock;
    use super::*;
    use crate::origin::SiteOrigin;
    use fp_skyserver::{Catalog, CatalogSpec, SkySite};
    use fp_sqlmini::parse_query;
    use std::time::Duration;

    fn fixture(
        config: ResilienceConfig,
        faults: Vec<Fault>,
    ) -> (ResilientOrigin, Arc<ChaosOrigin>, Arc<MockClock>) {
        let clock = MockClock::shared();
        let site = SiteOrigin::new(SkySite::new(Catalog::generate(&CatalogSpec::small_test())));
        let chaos = Arc::new(ChaosOrigin::with_clock(
            Arc::new(site),
            Arc::clone(&clock) as Arc<dyn Clock>,
        ));
        chaos.script(faults);
        let resilient = ResilientOrigin::with_clock(
            Arc::clone(&chaos) as Arc<dyn Origin>,
            config,
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        (resilient, chaos, clock)
    }

    fn radial_query() -> fp_sqlmini::Query {
        parse_query("SELECT TOP 5 * FROM fGetNearbyObjEq(185.0, 0.0, 20.0) n").unwrap()
    }

    #[test]
    fn healthy_origin_passes_through() {
        let (origin, chaos, _) = fixture(ResilienceConfig::default(), vec![]);
        let out = origin.execute(&radial_query()).unwrap();
        assert!(out.result.len() <= 5);
        assert_eq!(chaos.calls(), 1);
        let snap = origin.snapshot();
        assert_eq!(snap.attempts, 1);
        assert_eq!(snap.retries, 0);
        assert_eq!(snap.breaker_state, "closed");
        assert!(origin.supports_remainder());
    }

    #[test]
    fn transient_failure_is_retried_with_backoff() {
        let config = ResilienceConfig {
            max_retries: 2,
            ..ResilienceConfig::default()
        };
        let (origin, chaos, clock) = fixture(config, vec![Fault::Unavailable, Fault::Unavailable]);
        let out = origin.execute(&radial_query());
        assert!(out.is_ok(), "third attempt succeeds");
        assert_eq!(chaos.calls(), 3);
        assert_eq!(origin.snapshot().retries, 2);
        assert!(
            clock.elapsed() >= Duration::from_millis(25),
            "backoff waits must consume (virtual) time, got {:?}",
            clock.elapsed()
        );
    }

    #[test]
    fn rejection_is_returned_immediately_without_retry() {
        let config = ResilienceConfig {
            max_retries: 5,
            ..ResilienceConfig::default()
        };
        let (origin, chaos, _) = fixture(config, vec![Fault::Rejected]);
        let err = origin.execute(&radial_query()).unwrap_err();
        assert!(matches!(err, OriginError::Rejected(_)));
        assert!(!err.is_transient());
        assert_eq!(chaos.calls(), 1, "rejections must not be retried");
        assert_eq!(origin.breaker_state(), BreakerState::Closed);
    }

    #[test]
    fn latency_spike_past_the_deadline_times_out() {
        let config = ResilienceConfig {
            deadline: Some(Duration::from_millis(500)),
            max_retries: 3,
            ..ResilienceConfig::default()
        };
        let (origin, chaos, _) = fixture(
            config,
            vec![Fault::Latency(
                Duration::from_secs(2),
                Box::new(Fault::Healthy),
            )],
        );
        let err = origin.execute(&radial_query()).unwrap_err();
        assert!(matches!(err, OriginError::Timeout { .. }), "got {err:?}");
        assert!(err.is_transient());
        assert_eq!(chaos.calls(), 1, "no retry budget left after the spike");
        assert_eq!(origin.snapshot().timeouts, 1);
    }

    #[test]
    fn breaker_opens_then_fails_fast_then_recovers() {
        let config = ResilienceConfig {
            max_retries: 0,
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_millis(100),
            ..ResilienceConfig::default()
        };
        let (origin, chaos, clock) = fixture(config, vec![Fault::Unavailable, Fault::Unavailable]);
        for _ in 0..2 {
            assert!(origin.execute(&radial_query()).is_err());
        }
        assert_eq!(origin.breaker_state(), BreakerState::Open);
        // Open circuit: fail fast, no origin call.
        let err = origin.execute(&radial_query()).unwrap_err();
        assert!(matches!(err, OriginError::Overloaded { .. }));
        assert!(err.retry_after().is_some());
        assert_eq!(chaos.calls(), 2);
        assert_eq!(origin.snapshot().fast_fails, 1);
        // After the cooldown, the probe succeeds and the circuit closes.
        clock.advance(Duration::from_millis(100));
        assert!(origin.execute(&radial_query()).is_ok());
        assert_eq!(origin.breaker_state(), BreakerState::Closed);
        assert_eq!(origin.snapshot().breaker_opens, 1);
    }
}
