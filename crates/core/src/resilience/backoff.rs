//! Bounded exponential backoff with seeded jitter.
//!
//! Retries against a struggling origin must spread out — both in time
//! (exponentially, so a dying server is not hammered) and across
//! clients (jitter, so retries from coalesced failures do not arrive
//! in lockstep). The jitter source is a seeded [`SmallRng`], which
//! keeps every retry schedule reproducible for a fixed
//! [`crate::resilience::ResilienceConfig`] seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// The backoff policy: `base * 2^(attempt-1)` capped at `cap`, then
/// "equal jitter" — half the exponential delay is kept, the other half
/// is sampled uniformly, so a delay is never less than half its
/// deterministic value and never more than the cap.
#[derive(Debug)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    rng: SmallRng,
}

impl Backoff {
    /// A policy with the given base delay, cap, and jitter seed.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Self {
        Backoff {
            base,
            cap,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The delay before retry number `attempt` (1-based: the first
    /// retry is attempt 1).
    pub fn delay(&mut self, attempt: u32) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(20))
            .min(self.cap);
        let half = exp / 2;
        let jitter = exp.as_secs_f64() / 2.0 * self.rng.gen_range(0.0f64..1.0);
        half + Duration::from_secs_f64(jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_exponentially_and_stay_bounded() {
        let base = Duration::from_millis(50);
        let cap = Duration::from_secs(2);
        let mut b = Backoff::new(base, cap, 7);
        let mut previous_exp = Duration::ZERO;
        for attempt in 1..=10 {
            let exp = base.saturating_mul(1 << (attempt - 1).min(20)).min(cap);
            let d = b.delay(attempt);
            assert!(d >= exp / 2, "attempt {attempt}: {d:?} < half of {exp:?}");
            assert!(d <= cap, "attempt {attempt}: {d:?} exceeds cap");
            assert!(exp >= previous_exp);
            previous_exp = exp;
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let mut a = Backoff::new(Duration::from_millis(10), Duration::from_secs(1), 42);
        let mut b = Backoff::new(Duration::from_millis(10), Duration::from_secs(1), 42);
        for attempt in 1..=5 {
            assert_eq!(a.delay(attempt), b.delay(attempt));
        }
    }

    #[test]
    fn different_seeds_jitter_differently() {
        let mut a = Backoff::new(Duration::from_millis(100), Duration::from_secs(5), 1);
        let mut b = Backoff::new(Duration::from_millis(100), Duration::from_secs(5), 2);
        let diffs: Vec<bool> = (1..=8).map(|i| a.delay(i) != b.delay(i)).collect();
        assert!(diffs.iter().any(|&x| x), "independent seeds should diverge");
    }
}
