//! Injectable time, so every resilience policy is testable without
//! real sleeping.
//!
//! The deadline, backoff, and breaker logic never call
//! `Instant::now()` or `thread::sleep` directly; they go through a
//! shared [`Clock`]. Production code uses [`SystemClock`]; tests and
//! the chaos harness use [`MockClock`], where `sleep` advances a
//! virtual offset instantly and `advance` models the passage of time
//! between requests (which is what lets a circuit breaker's cooldown
//! elapse deterministically).

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A source of monotonic time plus a way to wait.
pub trait Clock: Send + Sync {
    /// The current instant.
    fn now(&self) -> Instant;

    /// Waits for `duration` (virtually, for test clocks).
    fn sleep(&self, duration: Duration);
}

/// The real clock: `Instant::now` and `thread::sleep`.
#[derive(Debug, Default, Clone, Copy)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now(&self) -> Instant {
        Instant::now()
    }

    fn sleep(&self, duration: Duration) {
        std::thread::sleep(duration);
    }
}

/// A deterministic virtual clock: `now` is a fixed base instant plus
/// an offset that only moves when someone sleeps on the clock or calls
/// [`MockClock::advance`]. Shared via `Arc` between the code under test
/// and the test driver.
#[derive(Debug)]
pub struct MockClock {
    base: Instant,
    offset: Mutex<Duration>,
}

impl Default for MockClock {
    fn default() -> Self {
        Self::new()
    }
}

impl MockClock {
    /// A clock at virtual time zero.
    pub fn new() -> Self {
        MockClock {
            base: Instant::now(),
            offset: Mutex::new(Duration::ZERO),
        }
    }

    /// A shared handle to a fresh clock.
    pub fn shared() -> Arc<MockClock> {
        Arc::new(Self::new())
    }

    /// Moves virtual time forward by `duration`.
    pub fn advance(&self, duration: Duration) {
        let mut offset = self.offset.lock().unwrap_or_else(|e| e.into_inner());
        *offset += duration;
    }

    /// Virtual time elapsed since construction.
    pub fn elapsed(&self) -> Duration {
        *self.offset.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl Clock for MockClock {
    fn now(&self) -> Instant {
        self.base + self.elapsed()
    }

    // A virtual sleep completes instantly by advancing the clock, so
    // backoff waits cost a test nothing but remain visible in `now()`.
    fn sleep(&self, duration: Duration) {
        self.advance(duration);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mock_clock_advances_only_on_demand() {
        let clock = MockClock::new();
        let t0 = clock.now();
        assert_eq!(clock.now(), t0);
        clock.advance(Duration::from_millis(250));
        assert_eq!(clock.now() - t0, Duration::from_millis(250));
        clock.sleep(Duration::from_millis(750));
        assert_eq!(clock.elapsed(), Duration::from_secs(1));
    }

    #[test]
    fn system_clock_is_monotonic() {
        let clock = SystemClock;
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }
}
