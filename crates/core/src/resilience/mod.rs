//! Fault tolerance for the origin fetch path.
//!
//! The paper's proxy assumes the origin web site answers every
//! remainder query; a deployed proxy cannot. This module supplies the
//! missing failure model as composable pieces, all deterministic under
//! an injected [`Clock`]:
//!
//! - [`ResilientOrigin`] — the decorator the runtime wraps around the
//!   configured origin: per-request deadlines, bounded retries with
//!   seeded-jitter exponential [`Backoff`], and a per-origin
//!   [`CircuitBreaker`].
//! - Degraded serving lives in the runtime
//!   ([`crate::runtime::ProxyHandle`]): when the fetch path reports a
//!   transient failure, overlap cases answer from the cached
//!   intersection (marked partial), region containment serves the
//!   cached union, and only true disjoint misses surface the error.
//! - [`ChaosOrigin`] — scripted fault injection (latency spikes,
//!   unavailability, rejections, truncated rows, corrupt cells) for
//!   the fault-matrix tests and the `repro --chaos` experiment.

mod backoff;
mod breaker;
mod chaos;
mod clock;
mod origin;

pub use backoff::Backoff;
pub use breaker::{Admission, BreakerState, CircuitBreaker};
pub use chaos::{ChaosOrigin, Fault};
pub use clock::{Clock, MockClock, SystemClock};
pub use origin::{ResilienceSnapshot, ResilientOrigin};

use std::time::Duration;

/// Policy knobs for [`ResilientOrigin`], carried by
/// [`crate::config::ProxyConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResilienceConfig {
    /// Wall-clock budget for one fetch including retries and backoff
    /// waits; `None` disables deadline enforcement.
    pub deadline: Option<Duration>,
    /// Retries after the first attempt for transient failures.
    pub max_retries: u32,
    /// First backoff delay; doubles per retry.
    pub backoff_base: Duration,
    /// Upper bound on any single backoff delay.
    pub backoff_cap: Duration,
    /// Seed for the jitter RNG — fixed seed, reproducible schedule.
    pub backoff_seed: u64,
    /// Consecutive transient failures that open the circuit.
    pub breaker_threshold: u32,
    /// Time the circuit stays open before admitting a probe.
    pub breaker_cooldown: Duration,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            deadline: Some(Duration::from_secs(10)),
            max_retries: 2,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            backoff_seed: 0x5EED_F00D,
            breaker_threshold: 5,
            breaker_cooldown: Duration::from_secs(5),
        }
    }
}

impl ResilienceConfig {
    /// A policy suited to fast deterministic tests: tiny backoff, low
    /// breaker threshold, short cooldown, no deadline unless set.
    pub fn fast_test() -> Self {
        ResilienceConfig {
            deadline: None,
            max_retries: 1,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(8),
            backoff_seed: 7,
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(50),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = ResilienceConfig::default();
        assert!(c.deadline.unwrap() > c.backoff_cap);
        assert!(c.backoff_base < c.backoff_cap);
        assert!(c.breaker_threshold >= 1);
        assert_eq!(c, c.clone());
    }
}
