//! A per-origin circuit breaker: closed → open → half-open.
//!
//! The breaker protects a failing origin from retry pressure and the
//! proxy from wasting its request threads on an origin that is known
//! down. Transient failures (unreachable, deadline expired) count
//! against a consecutive-failure threshold; crossing it **opens** the
//! circuit and every subsequent fetch fails fast with a
//! `Retry-After`-style hint. After a cooldown the breaker admits a
//! single **probe** (half-open); the probe's outcome either re-closes
//! the circuit or re-opens it for another cooldown. Origin *rejections*
//! (a parse/execution error for one query) are proof the origin is
//! alive and never trip the breaker.

use super::clock::Clock;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// The breaker's public state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Traffic flows; failures are being counted.
    Closed,
    /// Fetches fail fast until the cooldown elapses.
    Open,
    /// One probe fetch is deciding whether the origin recovered.
    HalfOpen,
}

impl BreakerState {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// What the breaker decided about one fetch attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Circuit closed: proceed normally.
    Allow,
    /// Circuit half-open: proceed, and this attempt's outcome decides
    /// the circuit's fate.
    Probe,
    /// Circuit open: fail fast; retry no sooner than the hint.
    Reject {
        /// Time until the breaker will admit a probe.
        retry_after: Duration,
    },
}

#[derive(Debug)]
struct Inner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    probe_outstanding: bool,
    opens: u64,
}

/// The breaker itself. All methods take `&self`; state lives behind one
/// short-held mutex.
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: Duration,
    clock: Arc<dyn Clock>,
    inner: Mutex<Inner>,
}

impl CircuitBreaker {
    /// A closed breaker that opens after `threshold` consecutive
    /// transient failures and admits a probe after `cooldown`.
    pub fn new(threshold: u32, cooldown: Duration, clock: Arc<dyn Clock>) -> Self {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooldown,
            clock,
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: None,
                probe_outstanding: false,
                opens: 0,
            }),
        }
    }

    fn inner(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Asks permission for one fetch attempt.
    pub fn admit(&self) -> Admission {
        let mut inner = self.inner();
        match inner.state {
            BreakerState::Closed => Admission::Allow,
            BreakerState::Open => {
                let opened_at = inner.opened_at.expect("open breaker records its open time");
                let now = self.clock.now();
                let elapsed = now.saturating_duration_since(opened_at);
                if elapsed >= self.cooldown {
                    inner.state = BreakerState::HalfOpen;
                    inner.probe_outstanding = true;
                    Admission::Probe
                } else {
                    Admission::Reject {
                        retry_after: self.cooldown - elapsed,
                    }
                }
            }
            BreakerState::HalfOpen => {
                if inner.probe_outstanding {
                    // Someone else's probe is deciding; don't pile on.
                    Admission::Reject {
                        retry_after: self.cooldown,
                    }
                } else {
                    inner.probe_outstanding = true;
                    Admission::Probe
                }
            }
        }
    }

    /// Reports a successful fetch for an admitted attempt.
    pub fn record_success(&self, admission: Admission) {
        let mut inner = self.inner();
        inner.consecutive_failures = 0;
        if matches!(admission, Admission::Probe) {
            inner.probe_outstanding = false;
        }
        inner.state = BreakerState::Closed;
        inner.opened_at = None;
    }

    /// Reports a transient failure for an admitted attempt.
    pub fn record_failure(&self, admission: Admission) {
        let mut inner = self.inner();
        match admission {
            Admission::Probe => {
                // The probe failed: straight back to open, new cooldown.
                inner.probe_outstanding = false;
                self.open(&mut inner);
            }
            _ => {
                inner.consecutive_failures += 1;
                if inner.state == BreakerState::Closed
                    && inner.consecutive_failures >= self.threshold
                {
                    self.open(&mut inner);
                }
            }
        }
    }

    fn open(&self, inner: &mut Inner) {
        inner.state = BreakerState::Open;
        inner.opened_at = Some(self.clock.now());
        inner.consecutive_failures = 0;
        inner.opens += 1;
    }

    /// The current state.
    pub fn state(&self) -> BreakerState {
        self.inner().state
    }

    /// How many times the circuit has opened so far.
    pub fn opens(&self) -> u64 {
        self.inner().opens
    }

    /// Time left until an open circuit admits its next probe — the live
    /// `Retry-After` value. `None` unless the circuit is open (a probe
    /// may be admitted right now once the cooldown has fully elapsed).
    pub fn remaining_open(&self) -> Option<Duration> {
        let inner = self.inner();
        match inner.state {
            BreakerState::Open => {
                let opened_at = inner.opened_at.expect("open breaker records its open time");
                let elapsed = self.clock.now().saturating_duration_since(opened_at);
                Some(self.cooldown.saturating_sub(elapsed))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::clock::MockClock;
    use super::*;

    fn breaker(threshold: u32, cooldown_ms: u64) -> (CircuitBreaker, Arc<MockClock>) {
        let clock = MockClock::shared();
        let b = CircuitBreaker::new(
            threshold,
            Duration::from_millis(cooldown_ms),
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        (b, clock)
    }

    #[test]
    fn opens_after_threshold_consecutive_failures() {
        let (b, _clock) = breaker(3, 100);
        for _ in 0..2 {
            let a = b.admit();
            assert_eq!(a, Admission::Allow);
            b.record_failure(a);
        }
        assert_eq!(b.state(), BreakerState::Closed);
        let a = b.admit();
        b.record_failure(a);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 1);
        assert!(matches!(b.admit(), Admission::Reject { .. }));
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let (b, _clock) = breaker(2, 100);
        let a = b.admit();
        b.record_failure(a);
        let a = b.admit();
        b.record_success(a);
        let a = b.admit();
        b.record_failure(a);
        assert_eq!(b.state(), BreakerState::Closed, "streak was broken");
    }

    #[test]
    fn cooldown_admits_one_probe_then_recloses_on_success() {
        let (b, clock) = breaker(1, 100);
        let a = b.admit();
        b.record_failure(a);
        assert_eq!(b.state(), BreakerState::Open);
        // Before the cooldown the hint counts down.
        clock.advance(Duration::from_millis(40));
        match b.admit() {
            Admission::Reject { retry_after } => {
                assert_eq!(retry_after, Duration::from_millis(60));
            }
            other => panic!("expected fast-fail, got {other:?}"),
        }
        clock.advance(Duration::from_millis(60));
        let probe = b.admit();
        assert_eq!(probe, Admission::Probe);
        // A second caller during the probe still fails fast.
        assert!(matches!(b.admit(), Admission::Reject { .. }));
        b.record_success(probe);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.admit(), Admission::Allow);
    }

    #[test]
    fn failed_probe_reopens_for_a_fresh_cooldown() {
        let (b, clock) = breaker(1, 100);
        let a = b.admit();
        b.record_failure(a);
        clock.advance(Duration::from_millis(100));
        let probe = b.admit();
        assert_eq!(probe, Admission::Probe);
        b.record_failure(probe);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 2);
        // The new cooldown starts at the probe failure, not the first
        // open.
        clock.advance(Duration::from_millis(99));
        assert!(matches!(b.admit(), Admission::Reject { .. }));
        clock.advance(Duration::from_millis(1));
        assert_eq!(b.admit(), Admission::Probe);
    }
}
