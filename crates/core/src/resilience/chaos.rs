//! [`ChaosOrigin`]: scripted fault injection for resilience tests and
//! the `repro --chaos` experiment.
//!
//! The wrapper sits between the proxy (or a [`ResilientOrigin`]) and a
//! real origin and decides, per call, whether to pass the query
//! through, delay it, fail it, or corrupt its result. Three layers
//! decide the outcome, most specific first:
//!
//! 1. a **script** — a queue of [`Fault`]s consumed one per call,
//!    for precisely choreographed unit tests;
//! 2. **outage windows** — `[start, end)` intervals of clock time
//!    (relative to construction) during which every call fails
//!    `Unavailable`, for trace-driven experiments where "the site goes
//!    down mid-trace";
//! 3. a **default fault**, normally [`Fault::Healthy`].
//!
//! Latency faults sleep on the injected [`Clock`], so a [`MockClock`]
//! makes latency-vs-deadline interactions fully deterministic.
//!
//! [`ResilientOrigin`]: super::ResilientOrigin
//! [`MockClock`]: super::MockClock

use super::clock::{Clock, SystemClock};
use crate::origin::{Origin, OriginError};
use fp_skyserver::result::QueryOutcome;
use fp_sqlmini::{Query, Value};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// One injected outcome for one origin call.
#[derive(Debug, Clone)]
pub enum Fault {
    /// Pass the call through untouched.
    Healthy,
    /// Consume clock time first, then apply the inner fault — the tool
    /// for latency spikes (`Latency(d, Healthy)` is a slow success).
    Latency(Duration, Box<Fault>),
    /// Fail with [`OriginError::Unavailable`] without calling through.
    Unavailable,
    /// Fail with [`OriginError::Rejected`] without calling through —
    /// the origin is alive but refuses this query.
    Rejected,
    /// Call through, then keep only the first `n` rows: a truncated
    /// response body whose row count no longer matches the query.
    TruncateRows(usize),
    /// Call through, then overwrite the first cell of the first row
    /// with garbage text: the in-process analogue of a malformed XML
    /// payload that parses but carries a corrupt value.
    MalformedCell,
}

/// The fault-injecting origin wrapper. Shareable and thread-safe; the
/// script and windows sit behind one short-held mutex.
pub struct ChaosOrigin {
    inner: Arc<dyn Origin>,
    clock: Arc<dyn Clock>,
    epoch: Instant,
    plan: Mutex<Plan>,
    calls: AtomicU64,
    injected: AtomicU64,
    /// Advertised data-release epoch; `0` defers to the wrapped origin.
    advertised: AtomicU64,
}

#[derive(Debug)]
struct Plan {
    script: VecDeque<Fault>,
    outages: Vec<(Duration, Duration)>,
    default_fault: Fault,
}

impl ChaosOrigin {
    /// A healthy wrapper on the system clock.
    pub fn new(inner: Arc<dyn Origin>) -> Self {
        Self::with_clock(inner, Arc::new(SystemClock))
    }

    /// A healthy wrapper whose latency faults and outage windows run on
    /// `clock`.
    pub fn with_clock(inner: Arc<dyn Origin>, clock: Arc<dyn Clock>) -> Self {
        let epoch = clock.now();
        ChaosOrigin {
            inner,
            clock,
            epoch,
            plan: Mutex::new(Plan {
                script: VecDeque::new(),
                outages: Vec::new(),
                default_fault: Fault::Healthy,
            }),
            calls: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            advertised: AtomicU64::new(0),
        }
    }

    fn plan(&self) -> MutexGuard<'_, Plan> {
        self.plan.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Appends `faults` to the per-call script (consumed in order, one
    /// per call, before any outage window or the default applies).
    pub fn script(&self, faults: Vec<Fault>) {
        self.plan().script.extend(faults);
    }

    /// Declares an outage: every unscripted call in `[start, end)` of
    /// clock time since construction fails `Unavailable`.
    pub fn outage_between(&self, start: Duration, end: Duration) {
        self.plan().outages.push((start, end));
    }

    /// Replaces the fault applied when the script is empty and no
    /// outage window covers the call.
    pub fn set_default_fault(&self, fault: Fault) {
        self.plan().default_fault = fault;
    }

    /// Total `execute` calls observed (including fast-failed ones).
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Calls whose outcome was altered (anything but `Healthy`).
    pub fn faults_injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Starts advertising a data-release epoch, as a catalog site does
    /// when a new release goes live; `0` defers to the wrapped origin.
    pub fn advertise_epoch(&self, epoch: u64) {
        self.advertised.store(epoch, Ordering::SeqCst);
    }

    /// Whether an outage window covers the current clock time.
    pub fn in_outage(&self) -> bool {
        let since_epoch = self.clock.now().saturating_duration_since(self.epoch);
        self.plan()
            .outages
            .iter()
            .any(|&(s, e)| since_epoch >= s && since_epoch < e)
    }

    fn pick_fault(&self) -> Fault {
        let since_epoch = self.clock.now().saturating_duration_since(self.epoch);
        let mut plan = self.plan();
        if let Some(f) = plan.script.pop_front() {
            return f;
        }
        if plan
            .outages
            .iter()
            .any(|&(s, e)| since_epoch >= s && since_epoch < e)
        {
            return Fault::Unavailable;
        }
        plan.default_fault.clone()
    }

    fn apply(&self, fault: Fault, query: &Query) -> Result<QueryOutcome, OriginError> {
        match fault {
            Fault::Healthy => self.inner.execute(query),
            Fault::Latency(delay, then) => {
                self.clock.sleep(delay);
                self.injected.fetch_add(1, Ordering::Relaxed);
                self.apply(*then, query)
            }
            Fault::Unavailable => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                Err(OriginError::Unavailable("injected outage".into()))
            }
            Fault::Rejected => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                Err(OriginError::Rejected("injected rejection".into()))
            }
            Fault::TruncateRows(keep) => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                let mut out = self.inner.execute(query)?;
                out.result.rows.truncate(keep);
                out.stats.rows_returned = out.result.len();
                Ok(out)
            }
            Fault::MalformedCell => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                let mut out = self.inner.execute(query)?;
                if let Some(cell) = out.result.rows.first_mut().and_then(|r| r.first_mut()) {
                    *cell = Value::Str("\u{fffd}corrupt\u{fffd}".into());
                }
                Ok(out)
            }
        }
    }
}

impl Origin for ChaosOrigin {
    fn execute(&self, query: &Query) -> Result<QueryOutcome, OriginError> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        let fault = self.pick_fault();
        self.apply(fault, query)
    }

    fn supports_remainder(&self) -> bool {
        self.inner.supports_remainder()
    }

    fn advertised_epoch(&self) -> Option<u64> {
        match self.advertised.load(Ordering::SeqCst) {
            0 => self.inner.advertised_epoch(),
            epoch => Some(epoch),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::clock::MockClock;
    use super::*;
    use crate::origin::SiteOrigin;
    use fp_skyserver::{Catalog, CatalogSpec, SkySite};
    use fp_sqlmini::parse_query;

    fn chaos() -> (Arc<ChaosOrigin>, Arc<MockClock>) {
        let clock = MockClock::shared();
        let site = SiteOrigin::new(SkySite::new(Catalog::generate(&CatalogSpec::small_test())));
        let c = Arc::new(ChaosOrigin::with_clock(
            Arc::new(site),
            Arc::clone(&clock) as Arc<dyn Clock>,
        ));
        (c, clock)
    }

    fn query() -> Query {
        parse_query("SELECT TOP 4 * FROM fGetNearbyObjEq(185.0, 0.0, 25.0) n").unwrap()
    }

    #[test]
    fn script_consumes_in_order_then_falls_back_to_default() {
        let (c, _clock) = chaos();
        c.script(vec![Fault::Unavailable, Fault::Rejected]);
        assert!(matches!(
            c.execute(&query()),
            Err(OriginError::Unavailable(_))
        ));
        assert!(matches!(c.execute(&query()), Err(OriginError::Rejected(_))));
        assert!(c.execute(&query()).is_ok(), "default is healthy");
        assert_eq!(c.calls(), 3);
        assert_eq!(c.faults_injected(), 2);
    }

    #[test]
    fn outage_window_tracks_the_clock() {
        let (c, clock) = chaos();
        c.outage_between(Duration::from_millis(100), Duration::from_millis(200));
        assert!(c.execute(&query()).is_ok(), "before the outage");
        assert!(!c.in_outage());
        clock.advance(Duration::from_millis(150));
        assert!(c.in_outage());
        assert!(matches!(
            c.execute(&query()),
            Err(OriginError::Unavailable(_))
        ));
        clock.advance(Duration::from_millis(60));
        assert!(c.execute(&query()).is_ok(), "after the outage");
    }

    #[test]
    fn latency_fault_consumes_clock_time_then_succeeds() {
        let (c, clock) = chaos();
        c.script(vec![Fault::Latency(
            Duration::from_millis(300),
            Box::new(Fault::Healthy),
        )]);
        assert!(c.execute(&query()).is_ok());
        assert_eq!(clock.elapsed(), Duration::from_millis(300));
    }

    #[test]
    fn truncation_and_corruption_mutate_the_result() {
        let (c, _clock) = chaos();
        let whole = c.execute(&query()).unwrap();
        assert!(whole.result.len() > 1, "fixture needs at least two rows");

        c.script(vec![Fault::TruncateRows(1), Fault::MalformedCell]);
        let truncated = c.execute(&query()).unwrap();
        assert_eq!(truncated.result.len(), 1);
        assert_eq!(truncated.stats.rows_returned, 1);

        let corrupt = c.execute(&query()).unwrap();
        assert_eq!(corrupt.result.len(), whole.result.len());
        assert_ne!(corrupt.result.rows[0][0], whole.result.rows[0][0]);
    }

    #[test]
    fn default_fault_is_sticky() {
        let (c, _clock) = chaos();
        c.set_default_fault(Fault::Unavailable);
        for _ in 0..3 {
            assert!(c.execute(&query()).is_err());
        }
        c.set_default_fault(Fault::Healthy);
        assert!(c.execute(&query()).is_ok());
    }
}
