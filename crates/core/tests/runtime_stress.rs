//! Concurrency stress tests for the runtime: correctness against the
//! single-threaded proxy, single-flight coalescing, and absence of
//! deadlock under contention (the test harness timeout is the watchdog).

use fp_skyserver::{Catalog, CatalogSpec, SkySite};
use funcproxy::origin::CountingOrigin;
use funcproxy::proxy::ProxyResponse;
use funcproxy::template::TemplateManager;
use funcproxy::{
    ChaosOrigin, CostModel, Fault, FunctionProxy, OriginError, ProxyConfig, ProxyError,
    ProxyHandle, Scheme, SiteOrigin,
};
use std::sync::{Arc, Barrier};
use std::time::Duration;

const THREADS: usize = 8;

fn site() -> SkySite {
    SkySite::new(Catalog::generate(&CatalogSpec::small_test()))
}

fn config() -> ProxyConfig {
    ProxyConfig::default()
        .with_scheme(Scheme::FullSemantic)
        .with_cost(CostModel::free())
}

/// A handle over a fetch-counting origin that sleeps `delay_ms` per
/// fetch to widen race windows, plus the counter itself.
fn counting_handle(site: SkySite, delay_ms: u64) -> (ProxyHandle, Arc<CountingOrigin>) {
    let counting = Arc::new(CountingOrigin::with_delay(
        Arc::new(SiteOrigin::new(site)),
        Duration::from_millis(delay_ms),
    ));
    let handle = ProxyHandle::with_shards(
        TemplateManager::with_sky_defaults(),
        Arc::clone(&counting) as Arc<dyn funcproxy::Origin>,
        config(),
        4,
    );
    (handle, counting)
}

fn radial_fields(ra: f64, dec: f64, radius: f64) -> Vec<(String, String)> {
    vec![
        ("ra".to_string(), ra.to_string()),
        ("dec".to_string(), dec.to_string()),
        ("radius".to_string(), radius.to_string()),
    ]
}

fn ids_of(r: &ProxyResponse) -> Vec<i64> {
    let k = r.result.column_index("objID").unwrap();
    let mut ids: Vec<i64> = r
        .result
        .rows
        .iter()
        .map(|row| row[k].as_i64().unwrap())
        .collect();
    ids.sort_unstable();
    ids
}

/// Ground truth from a single-threaded no-cache proxy on the same
/// catalog.
fn oracle_ids(site: SkySite, ra: f64, dec: f64, radius: f64) -> Vec<i64> {
    let mut oracle = FunctionProxy::new(
        TemplateManager::with_sky_defaults(),
        Arc::new(SiteOrigin::new(site)),
        config().with_scheme(Scheme::NoCache),
    );
    let response = oracle
        .handle_form("/search/radial", &radial_fields(ra, dec, radius))
        .unwrap();
    ids_of(&response)
}

#[test]
fn identical_concurrent_queries_fetch_the_origin_once() {
    let site = site();
    let (handle, counting) = counting_handle(site.clone(), 50);
    let barrier = Barrier::new(THREADS);

    let responses: Vec<ProxyResponse> = std::thread::scope(|scope| {
        let tasks: Vec<_> = (0..THREADS)
            .map(|_| {
                let handle = handle.clone();
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    handle
                        .handle_form("/search/radial", &radial_fields(185.0, 0.0, 20.0))
                        .unwrap()
                })
            })
            .collect();
        tasks.into_iter().map(|t| t.join().unwrap()).collect()
    });

    // The acceptance bar: one WAN fetch total, zero duplicates.
    assert_eq!(counting.fetches(), 1, "identical queries must coalesce");
    assert_eq!(counting.duplicate_fetches(), 0);

    let truth = oracle_ids(site, 185.0, 0.0, 20.0);
    assert!(!truth.is_empty(), "hotspot region should be populated");
    for response in &responses {
        assert_eq!(ids_of(response), truth);
    }

    let stats = handle.runtime_stats();
    assert_eq!(stats.requests, THREADS);
    assert_eq!(stats.flights_led, 1);
    // Every non-leader was answered without its own fetch: either it
    // piggybacked on the flight or it hit the freshly cached entry.
    let served_without_fetch = responses
        .iter()
        .filter(|r| r.metrics.rows_from_cache == r.metrics.rows_total)
        .count();
    assert_eq!(served_without_fetch, THREADS - 1);
    assert_eq!(
        stats.duplicate_fetches_avoided,
        responses.iter().filter(|r| r.metrics.coalesced).count()
    );
}

#[test]
fn contained_concurrent_queries_wait_for_the_covering_flight() {
    let site = site();
    let (handle, counting) = counting_handle(site.clone(), 100);

    let responses: Vec<(f64, ProxyResponse)> = std::thread::scope(|scope| {
        let leader = {
            let handle = handle.clone();
            scope.spawn(move || {
                handle
                    .handle_form("/search/radial", &radial_fields(185.0, 0.0, 25.0))
                    .unwrap()
            })
        };
        // Give the big query time to take off, then pile on subsumed
        // queries while its fetch is still in flight.
        std::thread::sleep(Duration::from_millis(20));
        let followers: Vec<_> = (0..THREADS - 1)
            .map(|i| {
                let handle = handle.clone();
                let radius = 5.0 + i as f64;
                scope.spawn(move || {
                    let response = handle
                        .handle_form("/search/radial", &radial_fields(185.0, 0.0, radius))
                        .unwrap();
                    (radius, response)
                })
            })
            .collect();
        let mut all = vec![(25.0, leader.join().unwrap())];
        all.extend(followers.into_iter().map(|t| t.join().unwrap()));
        all
    });

    // Only the covering query ever reached the origin.
    assert_eq!(counting.fetches(), 1, "contained queries must coalesce");
    for (radius, response) in &responses {
        assert_eq!(
            ids_of(response),
            oracle_ids(site.clone(), 185.0, 0.0, *radius),
            "radius {radius} answer must match the origin's"
        );
    }
}

#[test]
fn contained_hit_storm_pins_byte_identical_responses() {
    let site = site();
    let (handle, counting) = counting_handle(site.clone(), 0);

    // Warm one large entry, then hammer a subsumed query from all
    // threads: every response is assembled off-lock from the entry's
    // columnar slab and must be byte-for-byte identical.
    handle
        .handle_form("/search/radial", &radial_fields(185.0, 0.0, 30.0))
        .unwrap();
    assert_eq!(counting.fetches(), 1);

    let reference = handle
        .handle_form_xml("/search/radial", &radial_fields(185.0, 0.0, 12.0))
        .unwrap();
    assert_eq!(reference.metrics.outcome.label(), "contained");
    assert!(
        reference.metrics.rows_total > 0,
        "storm region is populated"
    );

    let barrier = Barrier::new(THREADS);
    let bodies: Vec<Vec<Vec<u8>>> = std::thread::scope(|scope| {
        let tasks: Vec<_> = (0..THREADS)
            .map(|_| {
                let handle = handle.clone();
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    (0..16)
                        .map(|_| {
                            let r = handle
                                .handle_form_xml("/search/radial", &radial_fields(185.0, 0.0, 12.0))
                                .unwrap();
                            assert_eq!(r.metrics.outcome.label(), "contained");
                            r.body
                        })
                        .collect()
                })
            })
            .collect();
        tasks.into_iter().map(|t| t.join().unwrap()).collect()
    });
    for body in bodies.iter().flatten() {
        assert_eq!(body, &reference.body);
    }

    // The storm never touched the origin and never fell back to
    // row-major evaluation.
    assert_eq!(counting.fetches(), 1);
    assert_eq!(handle.runtime_stats().local_eval_fallbacks, 0);

    // And the byte responses agree with the row pipeline + the oracle.
    let rows = handle
        .handle_form("/search/radial", &radial_fields(185.0, 0.0, 12.0))
        .unwrap();
    assert_eq!(
        rows.result.to_xml_string().into_bytes(),
        reference.body,
        "row and byte serving must agree"
    );
    assert_eq!(ids_of(&rows), oracle_ids(site, 185.0, 0.0, 12.0));
}

#[test]
fn failing_flight_storm_attempts_the_origin_exactly_once() {
    // A cold cache, a dead origin, and 8 identical concurrent queries:
    // the leader's one failed fetch must be the *only* origin attempt —
    // its error is published to every follower, and no follower starts
    // a fresh flight (that would be a retry storm against a downed
    // site).
    let chaos = Arc::new(ChaosOrigin::new(Arc::new(SiteOrigin::new(site()))));
    chaos.set_default_fault(Fault::Unavailable);
    // Count fetches *beneath* the chaos layer is impossible (chaos
    // fails before calling through), so count above it instead: the
    // chaos wrapper itself records every execute call, and the slow
    // counting layer widens the race window.
    let counting = Arc::new(CountingOrigin::with_delay(
        Arc::clone(&chaos) as Arc<dyn funcproxy::Origin>,
        Duration::from_millis(50),
    ));
    let handle = ProxyHandle::with_shards(
        TemplateManager::with_sky_defaults(),
        Arc::clone(&counting) as Arc<dyn funcproxy::Origin>,
        config(),
        4,
    );
    let barrier = Barrier::new(THREADS);

    let results: Vec<Result<ProxyResponse, ProxyError>> = std::thread::scope(|scope| {
        let tasks: Vec<_> = (0..THREADS)
            .map(|_| {
                let handle = handle.clone();
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    handle.handle_form("/search/radial", &radial_fields(185.0, 0.0, 20.0))
                })
            })
            .collect();
        tasks.into_iter().map(|t| t.join().unwrap()).collect()
    });

    assert_eq!(
        counting.fetches(),
        1,
        "a failed flight must not trigger follower refetches"
    );
    for result in &results {
        assert!(
            matches!(result, Err(ProxyError::Origin(OriginError::Unavailable(_)))),
            "every request sees the one published failure, got {result:?}"
        );
    }
    assert_eq!(handle.runtime_stats().flights_led, 1);
    assert_eq!(handle.cache_stats().entries, 0, "failures are not cached");
}

#[test]
fn disjoint_concurrent_queries_proceed_independently() {
    let site = site();
    let (handle, counting) = counting_handle(site.clone(), 20);
    let barrier = Barrier::new(THREADS);

    // Disjoint 6'-radius circles spread 30' apart: same template (same
    // residual group, same shard), no spatial relationship.
    let centers: Vec<f64> = (0..THREADS).map(|i| 183.0 + i as f64 * 0.5).collect();
    let responses: Vec<(f64, ProxyResponse)> = std::thread::scope(|scope| {
        let tasks: Vec<_> = centers
            .iter()
            .map(|&ra| {
                let handle = handle.clone();
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    let response = handle
                        .handle_form("/search/radial", &radial_fields(ra, 0.0, 6.0))
                        .unwrap();
                    (ra, response)
                })
            })
            .collect();
        tasks.into_iter().map(|t| t.join().unwrap()).collect()
    });

    assert_eq!(
        counting.fetches(),
        THREADS,
        "disjoint queries cannot coalesce"
    );
    assert_eq!(counting.duplicate_fetches(), 0);
    assert_eq!(handle.cache_stats().entries, THREADS);
    for (ra, response) in &responses {
        assert_eq!(ids_of(response), oracle_ids(site.clone(), *ra, 0.0, 6.0));
    }
}

#[test]
fn mixed_concurrent_workload_matches_the_single_threaded_proxy() {
    let site = site();
    let (handle, counting) = counting_handle(site.clone(), 5);
    let barrier = Barrier::new(THREADS);

    // Each thread interleaves identical, contained, overlapping and
    // disjoint queries against the shared handle.
    let queries: Vec<(f64, f64, f64)> = vec![
        (185.0, 0.0, 20.0),               // repeated hot query
        (185.0, 0.0, 8.0),                // contained in it
        (185.0 + 25.0 / 60.0, 0.0, 15.0), // overlaps it
        (183.0, 1.0, 6.0),                // disjoint
    ];

    let all: Vec<(f64, f64, f64, ProxyResponse)> = std::thread::scope(|scope| {
        let tasks: Vec<_> = (0..THREADS)
            .map(|t| {
                let handle = handle.clone();
                let queries = queries.clone();
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    let mut out = Vec::new();
                    for i in 0..queries.len() {
                        // Stagger the starting point per thread.
                        let (ra, dec, radius) = queries[(i + t) % queries.len()];
                        let response = handle
                            .handle_form("/search/radial", &radial_fields(ra, dec, radius))
                            .unwrap();
                        out.push((ra, dec, radius, response));
                    }
                    out
                })
            })
            .collect();
        tasks.into_iter().flat_map(|t| t.join().unwrap()).collect()
    });

    for (ra, dec, radius, response) in &all {
        assert_eq!(
            ids_of(response),
            oracle_ids(site.clone(), *ra, *dec, *radius),
            "query ({ra}, {dec}, {radius}) must match the origin's answer"
        );
    }
    // Far fewer fetches than requests: the cache and the coalescer
    // absorbed the repeats (at most one fetch per distinct query plus
    // the overlap remainder).
    let requests = handle.runtime_stats().requests;
    assert_eq!(requests, THREADS * queries.len());
    assert!(
        counting.fetches() <= queries.len() + 1,
        "expected at most {} fetches, saw {}",
        queries.len() + 1,
        counting.fetches()
    );
}

/// Mid-storm snapshots must preserve the cross-counter invariants the
/// `RuntimeStats` docs promise (derived counters acquire-read first,
/// `requests` last): no snapshot may ever report more coalesced hits,
/// led flights or stale hits than requests, nor more revalidations
/// than stale hits. A sampler thread races `runtime_stats()` against
/// the 8-thread storm; afterwards the observer's outcome histograms
/// must hold exactly one sample per request.
#[test]
fn mid_storm_snapshots_preserve_counter_invariants() {
    use funcproxy::LifecycleConfig;
    use std::sync::atomic::{AtomicBool, Ordering};

    let (handle, _counting) = {
        let counting = Arc::new(CountingOrigin::with_delay(
            Arc::new(SiteOrigin::new(site())),
            Duration::from_millis(1),
        ));
        let handle = ProxyHandle::with_shards(
            TemplateManager::with_sky_defaults(),
            Arc::clone(&counting) as Arc<dyn funcproxy::Origin>,
            // A 15 ms TTL inside a wide stale window makes the hot
            // entry go stale repeatedly *during* the storm, so the
            // stale-hit and revalidation counters race for real.
            config().with_lifecycle(
                LifecycleConfig::default()
                    .with_default_ttl(Duration::from_millis(15))
                    .with_stale_while_revalidate(Duration::from_secs(10)),
            ),
            4,
        );
        (handle, counting)
    };
    handle
        .handle_form("/search/radial", &radial_fields(185.0, 0.0, 20.0))
        .unwrap();

    let done = AtomicBool::new(false);
    let barrier = Barrier::new(THREADS);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let handle = handle.clone();
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                for i in 0..40 {
                    // Exact repeats, contained hits and occasional
                    // pauses past the TTL, staggered per thread.
                    let radius = if (i + t) % 3 == 0 { 20.0 } else { 12.0 };
                    handle
                        .handle_form("/search/radial", &radial_fields(185.0, 0.0, radius))
                        .unwrap();
                    if (i + t) % 8 == 0 {
                        std::thread::sleep(Duration::from_millis(4));
                    }
                }
            });
        }
        let sampler = handle.clone();
        let done = &done;
        scope.spawn(move || {
            while !done.load(Ordering::Relaxed) {
                let s = sampler.runtime_stats();
                assert!(
                    s.coalesced_exact + s.coalesced_contained <= s.requests,
                    "torn snapshot: {} coalesced > {} requests",
                    s.coalesced_exact + s.coalesced_contained,
                    s.requests
                );
                assert!(
                    s.flights_led <= s.requests,
                    "torn snapshot: {} flights > {} requests",
                    s.flights_led,
                    s.requests
                );
                assert!(
                    s.stale_hits <= s.requests,
                    "torn snapshot: {} stale hits > {} requests",
                    s.stale_hits,
                    s.requests
                );
                assert!(
                    s.revalidations <= s.stale_hits,
                    "torn snapshot: {} revalidations > {} stale hits",
                    s.revalidations,
                    s.stale_hits
                );
                std::thread::yield_now();
            }
        });
        // Scoped threads only join at scope exit, so a watcher flips
        // the sampler's stop flag once every worker request has landed.
        let watcher = handle.clone();
        scope.spawn(move || {
            while watcher.runtime_stats().requests < 1 + THREADS * 40 {
                std::thread::sleep(Duration::from_millis(2));
            }
            done.store(true, Ordering::Relaxed);
        });
    });

    handle.quiesce_revalidations();
    let stats = handle.runtime_stats();
    assert_eq!(stats.requests, 1 + THREADS * 40);
    assert!(
        stats.stale_hits > 0,
        "the storm should have produced stale hits (TTL 15 ms)"
    );

    // One end-to-end outcome sample per successful request, spread over
    // the per-class histograms — recording never dropped or doubled.
    use funcproxy::observe::OutcomeClass;
    let total: u64 = OutcomeClass::ALL
        .iter()
        .map(|&c| handle.observer().outcome_histogram(c).count())
        .sum();
    assert_eq!(total, stats.requests as u64);
}
