//! Read-only memory mapping for the tiered cache's slab files.
//!
//! The workspace's core crates all `forbid(unsafe_code)`, and the build
//! environment has no crates.io access, so there is no `memmap2` (or
//! even `libc`) to lean on. Like `fp-edge`'s `sys.rs`, this crate
//! hand-declares the two stable-ABI prototypes it needs — `mmap` and
//! `munmap` — and is the only place in the workspace's cache stack
//! allowed to use `unsafe`. Everything it exports is safe:
//!
//! - Mappings are created `PROT_READ` + `MAP_SHARED` over a plain file,
//!   so the memory is never writable through the map and appends to the
//!   file by the owning process do not move already-mapped pages.
//! - The mapping length is fixed at creation to a prefix the caller
//!   promises is fully written (slab files are append-only; readers map
//!   only up to the last durably framed segment). The file may keep
//!   growing past the mapped prefix — those pages are simply not part
//!   of this map. Slab files are never truncated in place (compaction
//!   replaces them via rename, which leaves the mapped inode intact),
//!   so the classic mmap SIGBUS-on-shrink hazard cannot arise.
//! - Dropping the handle unmaps. The handle is `Send + Sync` because a
//!   read-only shared mapping of an append-only file is plain immutable
//!   memory from the process's point of view.

use std::fs::File;
use std::io;
use std::os::fd::AsRawFd;

// Protection and flag bits (uapi/asm-generic/mman-common.h).
const PROT_READ: i32 = 0x1;
const MAP_SHARED: i32 = 0x01;

extern "C" {
    fn mmap(addr: *mut u8, len: usize, prot: i32, flags: i32, fd: i32, offset: i64) -> *mut u8;
    fn munmap(addr: *mut u8, len: usize) -> i32;
}

/// A read-only shared mapping of the first `len` bytes of a file.
///
/// See the crate docs for the invariants that make this safe to share
/// across threads.
pub struct Mmap {
    ptr: *mut u8,
    len: usize,
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap").field("len", &self.len).finish()
    }
}

// SAFETY: the mapping is PROT_READ and the backing file is append-only
// and never truncated in place (see crate docs), so the mapped bytes
// are immutable for the life of the handle. Immutable memory may be
// read from any thread.
unsafe impl Send for Mmap {}
// SAFETY: as above — shared `&Mmap` only exposes `&[u8]` reads.
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps the first `len` bytes of `file` read-only.
    ///
    /// `len` must not exceed the file's current size (the caller owns
    /// that bookkeeping; slab readers map up to the last framed
    /// segment). Zero-length maps are rejected by the kernel, so this
    /// returns `InvalidInput` for `len == 0` rather than asking.
    pub fn map(file: &File, len: usize) -> io::Result<Mmap> {
        if len == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "cannot map zero bytes",
            ));
        }
        // SAFETY: null hint address, length checked non-zero, fd valid
        // for the duration of the call (mappings outlive the fd by
        // design — the kernel keeps the inode pinned).
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        // MAP_FAILED is (void*)-1.
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap { ptr, len })
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the mapping covers zero bytes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The mapped bytes.
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
        // bytes; the backing pages are immutable (see crate docs).
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        // SAFETY: `ptr`/`len` describe a mapping we own and have not
        // unmapped before. Failure here is unactionable in a destructor.
        unsafe {
            munmap(self.ptr, self.len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("fp_mmap_test_{}_{}", std::process::id(), name));
        p
    }

    #[test]
    fn maps_file_contents_exactly() {
        let path = temp_path("exact");
        let payload: Vec<u8> = (0..8192u32).map(|i| (i % 251) as u8).collect();
        std::fs::write(&path, &payload).unwrap();
        let file = File::open(&path).unwrap();
        let map = Mmap::map(&file, payload.len()).unwrap();
        assert_eq!(map.len(), payload.len());
        assert!(!map.is_empty());
        assert_eq!(map.as_slice(), &payload[..]);
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mapped_prefix_survives_appends_and_fd_close() {
        let path = temp_path("append");
        std::fs::write(&path, b"prefix-bytes").unwrap();
        let map = {
            let file = File::open(&path).unwrap();
            Mmap::map(&file, 12).unwrap()
            // fd drops here; the mapping must stay valid.
        };
        let mut appender = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        appender.write_all(b"...and a long tail").unwrap();
        drop(appender);
        assert_eq!(map.as_slice(), b"prefix-bytes");
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn zero_length_map_is_rejected() {
        let path = temp_path("zero");
        std::fs::write(&path, b"").unwrap();
        let file = File::open(&path).unwrap();
        let err = Mmap::map(&file, 0).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn map_is_shareable_across_threads() {
        let path = temp_path("threads");
        let payload: Vec<u8> = (0..4096u32).map(|i| (i % 131) as u8).collect();
        std::fs::write(&path, &payload).unwrap();
        let file = File::open(&path).unwrap();
        let map = std::sync::Arc::new(Mmap::map(&file, payload.len()).unwrap());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = std::sync::Arc::clone(&map);
                let want = payload.clone();
                std::thread::spawn(move || assert_eq!(m.as_slice(), &want[..]))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }
}
