//! Read-only memory mapping for the tiered cache's slab files.
//!
//! The workspace's core crates all `forbid(unsafe_code)`, and the build
//! environment has no crates.io access, so there is no `memmap2` (or
//! even `libc`) to lean on. Like `fp-edge`'s `sys.rs`, this crate
//! hand-declares the two stable-ABI prototypes it needs — `mmap` and
//! `munmap` — and is the only place in the workspace's cache stack
//! allowed to use `unsafe`. Everything it exports is safe:
//!
//! - Mappings are created `PROT_READ` + `MAP_SHARED` over a plain file,
//!   so the memory is never writable through the map and appends to the
//!   file by the owning process do not move already-mapped pages.
//! - The mapping length is fixed at creation to a prefix the caller
//!   promises is fully written (slab files are append-only; readers map
//!   only up to the last durably framed segment). The file may keep
//!   growing past the mapped prefix — those pages are simply not part
//!   of this map. Slab files are never truncated in place (compaction
//!   replaces them via rename, which leaves the mapped inode intact),
//!   so the classic mmap SIGBUS-on-shrink hazard cannot arise.
//! - Dropping the handle unmaps. The handle is `Send + Sync` because a
//!   read-only shared mapping of an append-only file is plain immutable
//!   memory from the process's point of view.

use std::fs::File;
use std::io;
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicUsize, Ordering};

// Protection and flag bits (uapi/asm-generic/mman-common.h).
const PROT_READ: i32 = 0x1;
const MAP_SHARED: i32 = 0x01;

extern "C" {
    fn mmap(addr: *mut u8, len: usize, prot: i32, flags: i32, fd: i32, offset: i64) -> *mut u8;
    fn munmap(addr: *mut u8, len: usize) -> i32;
}

/// Remaining `map` calls to fail with EIO, process-wide. Torture and
/// fault-injection tests arm this to force callers onto their owned-read
/// fallback path; zero (the normal state) costs one relaxed load.
static FAIL_NEXT_MAPS: AtomicUsize = AtomicUsize::new(0);

/// Makes the next `n` calls to [`Mmap::map`] (process-wide) fail with
/// `EIO` before touching the kernel. Fault injection for tests: callers
/// must treat a failed map as a soft error and fall back to owned reads.
pub fn fail_next_maps(n: usize) {
    FAIL_NEXT_MAPS.store(n, Ordering::SeqCst);
}

fn injected_failure() -> bool {
    if FAIL_NEXT_MAPS.load(Ordering::Relaxed) == 0 {
        return false;
    }
    FAIL_NEXT_MAPS
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
        .is_ok()
}

/// A read-only shared mapping of the first `len` bytes of a file.
///
/// See the crate docs for the invariants that make this safe to share
/// across threads.
pub struct Mmap {
    ptr: *mut u8,
    len: usize,
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap").field("len", &self.len).finish()
    }
}

// SAFETY: the mapping is PROT_READ and the backing file is append-only
// and never truncated in place (see crate docs), so the mapped bytes
// are immutable for the life of the handle. Immutable memory may be
// read from any thread.
unsafe impl Send for Mmap {}
// SAFETY: as above — shared `&Mmap` only exposes `&[u8]` reads.
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps the first `len` bytes of `file` read-only.
    ///
    /// `len` must not exceed the file's current size (the caller owns
    /// that bookkeeping; slab readers map up to the last framed
    /// segment). Zero-length maps are rejected by the kernel, so this
    /// returns `InvalidInput` for `len == 0` rather than asking.
    pub fn map(file: &File, len: usize) -> io::Result<Mmap> {
        if len == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "cannot map zero bytes",
            ));
        }
        if injected_failure() {
            return Err(io::Error::from_raw_os_error(5));
        }
        // SAFETY: null hint address, length checked non-zero, fd valid
        // for the duration of the call (mappings outlive the fd by
        // design — the kernel keeps the inode pinned).
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        // MAP_FAILED is (void*)-1.
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap { ptr, len })
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the mapping covers zero bytes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The mapped bytes.
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
        // bytes; the backing pages are immutable (see crate docs).
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        // SAFETY: `ptr`/`len` describe a mapping we own and have not
        // unmapped before. Failure here is unactionable in a destructor.
        unsafe {
            munmap(self.ptr, self.len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::sync::Mutex;

    /// `FAIL_NEXT_MAPS` is process-wide, so every test that calls `map`
    /// serializes here to keep injected failures from leaking across.
    static SERIAL: Mutex<()> = Mutex::new(());

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("fp_mmap_test_{}_{}", std::process::id(), name));
        p
    }

    #[test]
    fn injected_map_failures_consume_their_budget_then_clear() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let path = temp_path("inject");
        std::fs::write(&path, b"some bytes here").unwrap();
        let file = File::open(&path).unwrap();
        fail_next_maps(2);
        let err = Mmap::map(&file, 4).unwrap_err();
        assert_eq!(err.raw_os_error(), Some(5));
        assert!(Mmap::map(&file, 4).is_err());
        // Budget spent: mapping works again without re-arming.
        let map = Mmap::map(&file, 4).unwrap();
        assert_eq!(map.as_slice(), b"some");
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn maps_file_contents_exactly() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let path = temp_path("exact");
        let payload: Vec<u8> = (0..8192u32).map(|i| (i % 251) as u8).collect();
        std::fs::write(&path, &payload).unwrap();
        let file = File::open(&path).unwrap();
        let map = Mmap::map(&file, payload.len()).unwrap();
        assert_eq!(map.len(), payload.len());
        assert!(!map.is_empty());
        assert_eq!(map.as_slice(), &payload[..]);
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mapped_prefix_survives_appends_and_fd_close() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let path = temp_path("append");
        std::fs::write(&path, b"prefix-bytes").unwrap();
        let map = {
            let file = File::open(&path).unwrap();
            Mmap::map(&file, 12).unwrap()
            // fd drops here; the mapping must stay valid.
        };
        let mut appender = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        appender.write_all(b"...and a long tail").unwrap();
        drop(appender);
        assert_eq!(map.as_slice(), b"prefix-bytes");
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn zero_length_map_is_rejected() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let path = temp_path("zero");
        std::fs::write(&path, b"").unwrap();
        let file = File::open(&path).unwrap();
        let err = Mmap::map(&file, 0).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn map_is_shareable_across_threads() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let path = temp_path("threads");
        let payload: Vec<u8> = (0..4096u32).map(|i| (i % 131) as u8).collect();
        std::fs::write(&path, &payload).unwrap();
        let file = File::open(&path).unwrap();
        let map = std::sync::Arc::new(Mmap::map(&file, payload.len()).unwrap());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = std::sync::Arc::clone(&map);
                let want = payload.clone();
                std::thread::spawn(move || assert_eq!(m.as_slice(), &want[..]))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }
}
