//! Trace data types and (de)serialization.

use serde::{Deserialize, Serialize};

/// One Radial-form query: the three form fields of the paper's Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadialQuery {
    /// Right ascension, degrees.
    pub ra: f64,
    /// Declination, degrees.
    pub dec: f64,
    /// Search radius, arc minutes.
    pub radius: f64,
}

impl RadialQuery {
    /// The decoded form fields the proxy's `/search/radial` handler takes.
    pub fn form_fields(&self) -> Vec<(String, String)> {
        vec![
            ("ra".to_string(), format!("{:.6}", self.ra)),
            ("dec".to_string(), format!("{:.6}", self.dec)),
            ("radius".to_string(), format!("{:.4}", self.radius)),
        ]
    }

    /// The form request's query string.
    pub fn query_string(&self) -> String {
        format!(
            "ra={:.6}&dec={:.6}&radius={:.4}",
            self.ra, self.dec, self.radius
        )
    }
}

/// An ordered query trace.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trace {
    /// The queries, in replay order.
    pub queries: Vec<RadialQuery>,
}

impl Trace {
    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Serializes to JSON (one stable interchange format for traces and
    /// experiment outputs).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("trace serializes")
    }

    /// Parses the JSON form.
    ///
    /// # Errors
    /// Returns the underlying JSON error message.
    pub fn from_json(text: &str) -> Result<Trace, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }

    /// A prefix of the trace (the paper replays "the first 10,000 queries"
    /// in Figure 5).
    pub fn prefix(&self, n: usize) -> Trace {
        Trace {
            queries: self.queries.iter().take(n).copied().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let t = Trace {
            queries: vec![
                RadialQuery {
                    ra: 185.0,
                    dec: 1.5,
                    radius: 30.0,
                },
                RadialQuery {
                    ra: 200.25,
                    dec: -2.0,
                    radius: 5.5,
                },
            ],
        };
        let back = Trace::from_json(&t.to_json()).unwrap();
        assert_eq!(back, t);
        assert!(Trace::from_json("nonsense").is_err());
    }

    #[test]
    fn form_fields_and_prefix() {
        let q = RadialQuery {
            ra: 185.0,
            dec: 1.5,
            radius: 30.0,
        };
        let fields = q.form_fields();
        assert_eq!(fields[0].0, "ra");
        assert!(q.query_string().starts_with("ra=185.000000&dec=1.500000"));

        let t = Trace {
            queries: vec![q; 5],
        };
        assert_eq!(t.prefix(3).len(), 3);
        assert_eq!(t.prefix(99).len(), 5);
        assert!(!t.is_empty());
    }
}
