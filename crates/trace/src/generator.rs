//! Constructive trace generation calibrated to the paper's mix.
//!
//! Strategy: for each query, draw the *intended* relationship (exact /
//! contained / overlap / disjoint) from the target distribution, then
//! construct parameters that realize it against the queries generated so
//! far — verifying the realized relationship with the same region algebra
//! the proxy uses, so intended and realized mixes agree. An R-tree over
//! the emitted regions keeps the all-pairs checks fast.

use crate::trace::{RadialQuery, Trace};
use fp_geometry::celestial::radial_query_sphere;
use fp_geometry::{HyperRect, Region, Relation};
use fp_rtree::RTree;
use fp_skyserver::SkyWindow;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Relationship categories the generator targets (the §4.1 census).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RelationKind {
    /// Same parameters as an earlier query.
    Exact,
    /// Contained in an earlier query.
    Contained,
    /// Overlaps an earlier query without containment either way.
    Overlap,
    /// Contains one or more earlier queries (the paper's *region
    /// containment*, "a special case of query overlapping").
    Covering,
    /// Disjoint from all earlier queries.
    Disjoint,
}

/// Generation parameters.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TraceSpec {
    /// RNG seed (identical specs generate identical traces).
    pub seed: u64,
    /// Number of queries.
    pub queries: usize,
    /// Sky window queries are drawn from (should match the catalog's).
    pub window: SkyWindow,
    /// Target fraction of exact matches (paper: 0.17).
    pub exact: f64,
    /// Target fraction of contained queries (paper: 0.34).
    pub contained: f64,
    /// Target fraction of (partially) overlapping queries. Together with
    /// `covering` this forms the paper's ~9 % overlap census.
    pub overlap: f64,
    /// Target fraction of covering queries (region containment — the
    /// paper folds these into its 9 % overlap figure).
    pub covering: f64,
    /// Radius range in arc minutes (log-uniform).
    pub radius_arcmin: (f64, f64),
    /// Number of query hot spots (web users revisit popular regions).
    pub hotspots: usize,
    /// Fraction of fresh queries aimed at a hot spot.
    pub hotspot_fraction: f64,
    /// Zipf exponent skewing hot-spot popularity: hot spot `i` is chosen
    /// with weight `1/(i+1)^s`. `0.0` (the default) keeps the historical
    /// uniform choice; larger values concentrate traffic on the first
    /// few spots, the regime where replacement policy quality shows.
    pub hotspot_zipf: f64,
}

// Hand-written so specs predating `hotspot_zipf` keep parsing (the
// vendored serde_derive has no `#[serde(default)]`); a missing exponent
// means the historical uniform hot-spot popularity.
impl Deserialize for TraceSpec {
    fn deserialize(content: &serde::Content) -> Result<Self, serde::DeError> {
        let entries = content.as_map("struct TraceSpec")?;
        Ok(TraceSpec {
            seed: serde::get_field(entries, "TraceSpec", "seed")?,
            queries: serde::get_field(entries, "TraceSpec", "queries")?,
            window: serde::get_field(entries, "TraceSpec", "window")?,
            exact: serde::get_field(entries, "TraceSpec", "exact")?,
            contained: serde::get_field(entries, "TraceSpec", "contained")?,
            overlap: serde::get_field(entries, "TraceSpec", "overlap")?,
            covering: serde::get_field(entries, "TraceSpec", "covering")?,
            radius_arcmin: serde::get_field(entries, "TraceSpec", "radius_arcmin")?,
            hotspots: serde::get_field(entries, "TraceSpec", "hotspots")?,
            hotspot_fraction: serde::get_field(entries, "TraceSpec", "hotspot_fraction")?,
            hotspot_zipf: match entries.iter().find(|(k, _)| k == "hotspot_zipf") {
                Some((_, v)) => Deserialize::deserialize(v)?,
                None => 0.0,
            },
        })
    }
}

impl Default for TraceSpec {
    fn default() -> Self {
        TraceSpec {
            seed: 0x7ACE,
            queries: 2000,
            window: SkyWindow::default(),
            exact: 0.17,
            contained: 0.34,
            overlap: 0.06,
            covering: 0.03,
            radius_arcmin: (2.0, 20.0),
            hotspots: 16,
            hotspot_fraction: 0.7,
            hotspot_zipf: 0.0,
        }
    }
}

impl TraceSpec {
    /// A small spec for unit tests.
    pub fn small_test() -> Self {
        TraceSpec {
            seed: 7,
            queries: 300,
            ..TraceSpec::default()
        }
    }

    /// Generates the trace.
    ///
    /// # Panics
    /// Panics when the fractions are malformed (negative or summing past
    /// 1) or the window/radius ranges are empty.
    pub fn generate(&self) -> Trace {
        assert!(self.queries > 0);
        assert!(
            self.exact >= 0.0
                && self.contained >= 0.0
                && self.overlap >= 0.0
                && self.covering >= 0.0
        );
        assert!(
            self.exact + self.contained + self.overlap + self.covering <= 1.0 + 1e-9,
            "fractions must leave room for disjoint queries"
        );
        assert!(self.radius_arcmin.0 > 0.0 && self.radius_arcmin.1 >= self.radius_arcmin.0);

        let mut rng = StdRng::seed_from_u64(self.seed);
        let hotspots: Vec<(f64, f64)> = (0..self.hotspots.max(1))
            .map(|_| {
                (
                    rng.gen_range(self.window.ra_min..self.window.ra_max),
                    rng.gen_range(self.window.dec_min..self.window.dec_max),
                )
            })
            .collect();

        // Cumulative Zipf weights over the hot spots (uniform when the
        // exponent is zero: every weight is 1).
        let mut hotspot_cdf: Vec<f64> = hotspots
            .iter()
            .enumerate()
            .scan(0.0, |acc, (i, _)| {
                *acc += 1.0 / ((i + 1) as f64).powf(self.hotspot_zipf);
                Some(*acc)
            })
            .collect();
        let total = *hotspot_cdf.last().expect("at least one hot spot");
        for w in &mut hotspot_cdf {
            *w /= total;
        }

        let mut gen = Generator {
            spec: self,
            rng,
            hotspots,
            hotspot_cdf,
            emitted: Vec::new(),
            index: RTree::with_capacity_params(3, 16),
        };
        let mut queries = Vec::with_capacity(self.queries);
        for i in 0..self.queries {
            queries.push(gen.next_query(i));
        }
        Trace { queries }
    }
}

struct Generator<'a> {
    spec: &'a TraceSpec,
    rng: StdRng,
    hotspots: Vec<(f64, f64)>,
    /// Normalized cumulative popularity of each hot spot.
    hotspot_cdf: Vec<f64>,
    emitted: Vec<(RadialQuery, Region)>,
    /// Bounding boxes of emitted regions → index into `emitted`.
    index: RTree<usize>,
}

impl Generator<'_> {
    fn next_query(&mut self, i: usize) -> RadialQuery {
        // Nothing to relate to yet: the first queries are fresh.
        let kind = if self.emitted.is_empty() {
            RelationKind::Disjoint
        } else {
            self.draw_kind()
        };

        let q = match kind {
            RelationKind::Exact => self.make_exact(),
            RelationKind::Contained => self.make_contained(),
            RelationKind::Overlap => self.make_overlap(),
            RelationKind::Covering => self.make_covering(),
            RelationKind::Disjoint => self.make_disjoint(),
        }
        // Construction can fail on a saturated sky; fall back to a fresh
        // draw, accepting whatever relationship it lands in.
        .unwrap_or_else(|| self.fresh_draw());

        let region = Region::Sphere(
            radial_query_sphere(q.ra, q.dec, q.radius).expect("generated query is valid"),
        );
        self.index.insert(region.bounding_rect(), i);
        self.emitted.push((q, region));
        q
    }

    fn draw_kind(&mut self) -> RelationKind {
        let x: f64 = self.rng.gen();
        let s = self.spec;
        if x < s.exact {
            RelationKind::Exact
        } else if x < s.exact + s.contained {
            RelationKind::Contained
        } else if x < s.exact + s.contained + s.overlap {
            RelationKind::Overlap
        } else if x < s.exact + s.contained + s.overlap + s.covering {
            RelationKind::Covering
        } else {
            RelationKind::Disjoint
        }
    }

    /// Log-uniform radius (web radii are heavy-tailed toward small).
    fn draw_radius(&mut self) -> f64 {
        let (lo, hi) = self.spec.radius_arcmin;
        (self.rng.gen_range(lo.ln()..=hi.ln())).exp()
    }

    /// Picks a hot spot by inverse-CDF over the Zipf weights.
    fn draw_hotspot(&mut self) -> (f64, f64) {
        let x: f64 = self.rng.gen();
        let idx = self
            .hotspot_cdf
            .iter()
            .position(|&w| x < w)
            .unwrap_or(self.hotspots.len() - 1);
        self.hotspots[idx]
    }

    fn fresh_draw(&mut self) -> RadialQuery {
        let (ra, dec) = if self.rng.gen_bool(self.spec.hotspot_fraction) {
            let (hra, hdec) = self.draw_hotspot();
            // Jitter around the hot spot by up to ±0.5°.
            (
                (hra + self.rng.gen_range(-0.5..0.5))
                    .clamp(self.spec.window.ra_min, self.spec.window.ra_max),
                (hdec + self.rng.gen_range(-0.5..0.5))
                    .clamp(self.spec.window.dec_min, self.spec.window.dec_max),
            )
        } else {
            (
                self.rng
                    .gen_range(self.spec.window.ra_min..self.spec.window.ra_max),
                self.rng
                    .gen_range(self.spec.window.dec_min..self.spec.window.dec_max),
            )
        };
        RadialQuery {
            ra,
            dec,
            radius: self.draw_radius(),
        }
    }

    /// Classifies a candidate against everything emitted so far, using the
    /// same priorities the proxy's classifier uses.
    fn classify(&self, region: &Region) -> RelationKind {
        let mut contained = false;
        let mut covers = false;
        let mut overlapping = false;
        for (_, &idx) in self.index.search_intersecting(&region.bounding_rect()) {
            match region.relate(&self.emitted[idx].1) {
                Relation::Equal => return RelationKind::Exact,
                Relation::Inside => contained = true,
                Relation::Contains => covers = true,
                Relation::Overlaps => overlapping = true,
                Relation::Disjoint => {}
            }
        }
        if contained {
            RelationKind::Contained
        } else if covers {
            RelationKind::Covering
        } else if overlapping {
            RelationKind::Overlap
        } else {
            RelationKind::Disjoint
        }
    }

    fn region_of(q: &RadialQuery) -> Option<Region> {
        radial_query_sphere(q.ra, q.dec, q.radius)
            .ok()
            .map(Region::Sphere)
    }

    fn make_exact(&mut self) -> Option<RadialQuery> {
        let idx = self.rng.gen_range(0..self.emitted.len());
        Some(self.emitted[idx].0)
    }

    fn make_contained(&mut self) -> Option<RadialQuery> {
        for _ in 0..32 {
            let (base, _) = &self.emitted[self.rng.gen_range(0..self.emitted.len())];
            let base = *base;
            // Sub-query: smaller radius (floored at half the configured
            // minimum so chains of containment cannot shrink unboundedly),
            // center offset keeping angular containment with margin.
            let radius =
                (base.radius * self.rng.gen_range(0.2..0.8)).max(self.spec.radius_arcmin.0 * 0.5);
            if radius >= base.radius * 0.95 {
                continue;
            }
            let slack_arcmin = (base.radius - radius) * 0.8;
            let angle = self.rng.gen_range(0.0..std::f64::consts::TAU);
            let off_deg = slack_arcmin / 60.0 * self.rng.gen::<f64>();
            let q = RadialQuery {
                ra: base.ra + off_deg * angle.cos() / base.dec.to_radians().cos().max(0.2),
                dec: (base.dec + off_deg * angle.sin()).clamp(-89.9, 89.9),
                radius,
            };
            let region = Self::region_of(&q)?;
            if self.classify(&region) == RelationKind::Contained {
                return Some(q);
            }
        }
        None
    }

    fn make_overlap(&mut self) -> Option<RadialQuery> {
        for _ in 0..32 {
            let (base, _) = &self.emitted[self.rng.gen_range(0..self.emitted.len())];
            let base = *base;
            // Radius stays inside the configured range so overlap chains
            // cannot drift arbitrarily large or small.
            let radius = (base.radius * self.rng.gen_range(0.5..1.2))
                .clamp(self.spec.radius_arcmin.0, self.spec.radius_arcmin.1);
            // Center distance strictly between |r1-r2| and r1+r2.
            let lo = (base.radius - radius).abs() * 1.1 + 0.05 * radius.min(base.radius);
            let hi = (base.radius + radius) * 0.9;
            if lo >= hi {
                continue;
            }
            let dist_arcmin = self.rng.gen_range(lo..hi);
            let angle = self.rng.gen_range(0.0..std::f64::consts::TAU);
            let off_deg = dist_arcmin / 60.0;
            let q = RadialQuery {
                ra: base.ra + off_deg * angle.cos() / base.dec.to_radians().cos().max(0.2),
                dec: (base.dec + off_deg * angle.sin()).clamp(-89.9, 89.9),
                radius,
            };
            let region = Self::region_of(&q)?;
            if self.classify(&region) == RelationKind::Overlap {
                return Some(q);
            }
        }
        None
    }

    fn make_covering(&mut self) -> Option<RadialQuery> {
        for _ in 0..32 {
            let (base, _) = &self.emitted[self.rng.gen_range(0..self.emitted.len())];
            let base = *base;
            // A wider query around an earlier one; radius capped so the
            // trace's result sizes stay in range.
            let radius =
                (base.radius * self.rng.gen_range(1.6..2.5)).min(self.spec.radius_arcmin.1 * 1.5);
            if radius <= base.radius * 1.2 {
                continue;
            }
            let slack_arcmin = (radius - base.radius) * 0.5;
            let angle = self.rng.gen_range(0.0..std::f64::consts::TAU);
            let off_deg = slack_arcmin / 60.0 * self.rng.gen::<f64>();
            let q = RadialQuery {
                ra: base.ra + off_deg * angle.cos() / base.dec.to_radians().cos().max(0.2),
                dec: (base.dec + off_deg * angle.sin()).clamp(-89.9, 89.9),
                radius,
            };
            let region = Self::region_of(&q)?;
            if self.classify(&region) == RelationKind::Covering {
                return Some(q);
            }
        }
        None
    }

    fn make_disjoint(&mut self) -> Option<RadialQuery> {
        for _ in 0..64 {
            let q = self.fresh_draw();
            let region = Self::region_of(&q)?;
            if self.classify(&region) == RelationKind::Disjoint {
                return Some(q);
            }
        }
        None
    }
}

/// Probes how much of the window's bounding volume the emitted regions
/// cover — exposed for diagnosing saturated generator settings in tests.
pub fn window_bbox(window: &SkyWindow) -> HyperRect {
    // Conservative unit-vector bounding box of the sky window.
    let mut lo = [f64::INFINITY; 3];
    let mut hi = [f64::NEG_INFINITY; 3];
    for i in 0..=16 {
        for j in 0..=16 {
            let ra = window.ra_min + window.ra_span() * i as f64 / 16.0;
            let dec = window.dec_min + window.dec_span() * j as f64 / 16.0;
            let v = fp_geometry::celestial::radec_to_unit(ra, dec);
            for d in 0..3 {
                lo[d] = lo[d].min(v[d]);
                hi[d] = hi[d].max(v[d]);
            }
        }
    }
    HyperRect::new(lo.to_vec(), hi.to_vec()).expect("window is finite")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::classify_trace;

    #[test]
    fn generation_is_deterministic() {
        let spec = TraceSpec::small_test();
        assert_eq!(spec.generate(), spec.generate());
    }

    #[test]
    fn queries_lie_in_window() {
        let spec = TraceSpec::small_test();
        let t = spec.generate();
        assert_eq!(t.len(), spec.queries);
        for q in &t.queries {
            // Constructed sub/overlap queries may shift slightly past the
            // window edge; bounded by the maximum offset construction uses.
            assert!(q.ra >= spec.window.ra_min - 1.0 && q.ra <= spec.window.ra_max + 1.0);
            assert!(q.radius >= spec.radius_arcmin.0 * 0.5 * 0.99);
            // Covering queries may reach 1.5× the configured maximum.
            assert!(q.radius <= spec.radius_arcmin.1 * 1.5 * 1.01);
        }
    }

    #[test]
    fn realized_mix_tracks_target() {
        let spec = TraceSpec {
            seed: 21,
            queries: 1500,
            ..TraceSpec::default()
        };
        let t = spec.generate();
        let mix = classify_trace(&t);
        let n = t.len() as f64;
        let exact = mix.counts[0] as f64 / n;
        let contained = mix.counts[1] as f64 / n;
        let overlap = mix.counts[2] as f64 / n;
        assert!((exact - spec.exact).abs() < 0.04, "exact {exact}");
        assert!(
            (contained - spec.contained).abs() < 0.05,
            "contained {contained}"
        );
        // The census folds covering into overlap, as the paper does.
        let overlap_target = spec.overlap + spec.covering;
        assert!((overlap - overlap_target).abs() < 0.04, "overlap {overlap}");
    }

    #[test]
    fn zipf_exponent_skews_hotspot_popularity() {
        // All-fresh traffic so every query goes through the hot-spot
        // draw; compare the most-popular spot's share under uniform vs
        // skewed popularity.
        let base = TraceSpec {
            seed: 11,
            queries: 800,
            exact: 0.0,
            contained: 0.0,
            overlap: 0.0,
            covering: 0.0,
            hotspots: 8,
            hotspot_fraction: 1.0,
            ..TraceSpec::default()
        };
        let skewed = TraceSpec {
            hotspot_zipf: 1.5,
            ..base.clone()
        };

        // The hot-spot coordinates only depend on (seed, hotspots, window),
        // so both traces share them.
        let mut rng = StdRng::seed_from_u64(base.seed);
        let spots: Vec<(f64, f64)> = (0..base.hotspots)
            .map(|_| {
                (
                    rng.gen_range(base.window.ra_min..base.window.ra_max),
                    rng.gen_range(base.window.dec_min..base.window.dec_max),
                )
            })
            .collect();
        let share_of_first = |t: &Trace| {
            let near_first = t
                .queries
                .iter()
                .filter(|q| {
                    let nearest = spots
                        .iter()
                        .enumerate()
                        .min_by(|(_, a), (_, b)| {
                            let da = (q.ra - a.0).powi(2) + (q.dec - a.1).powi(2);
                            let db = (q.ra - b.0).powi(2) + (q.dec - b.1).powi(2);
                            da.total_cmp(&db)
                        })
                        .map(|(i, _)| i);
                    nearest == Some(0)
                })
                .count();
            near_first as f64 / t.len() as f64
        };

        let uniform_share = share_of_first(&base.generate());
        let skewed_share = share_of_first(&skewed.generate());
        assert!(
            skewed_share > uniform_share + 0.15,
            "zipf 1.5 should concentrate traffic on the first spot \
             (uniform {uniform_share:.2}, skewed {skewed_share:.2})"
        );
    }

    #[test]
    fn zipf_field_defaults_for_old_specs() {
        let json = r#"{
            "seed": 1, "queries": 10,
            "window": {"ra_min": 180.0, "ra_max": 190.0, "dec_min": -5.0, "dec_max": 5.0},
            "exact": 0.1, "contained": 0.2, "overlap": 0.05, "covering": 0.02,
            "radius_arcmin": [2.0, 20.0], "hotspots": 4, "hotspot_fraction": 0.5
        }"#;
        let spec: TraceSpec = serde_json::from_str(json).expect("old spec still parses");
        assert_eq!(spec.hotspot_zipf, 0.0);
    }

    #[test]
    #[should_panic(expected = "fractions")]
    fn rejects_overfull_fractions() {
        TraceSpec {
            exact: 0.9,
            contained: 0.9,
            ..TraceSpec::default()
        }
        .generate();
    }
}
