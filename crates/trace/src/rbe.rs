//! The Remote Browser Emulator: replays traces through a proxy.

use crate::trace::Trace;
use funcproxy::metrics::{QueryMetrics, TraceReport};
use funcproxy::{FunctionProxy, ProxyError, ProxyHandle};

/// The paper's RBE ("the program we write for emulating a web browser
/// client"): issues each trace query as a Radial form request and records
/// the per-query metrics.
pub struct Rbe {
    /// Path of the Radial form on the proxy.
    pub form_path: String,
}

impl Default for Rbe {
    fn default() -> Self {
        Rbe {
            form_path: "/search/radial".to_string(),
        }
    }
}

impl Rbe {
    /// Replays `trace` through `proxy`, returning per-query metrics.
    ///
    /// # Errors
    /// Stops at the first proxy error (misconfigured templates or a dead
    /// origin make the whole run meaningless).
    pub fn replay(
        &self,
        proxy: &mut FunctionProxy,
        trace: &Trace,
    ) -> Result<Vec<QueryMetrics>, ProxyError> {
        let mut out = Vec::with_capacity(trace.len());
        for q in &trace.queries {
            let response = proxy.handle_form(&self.form_path, &q.form_fields())?;
            out.push(response.metrics);
        }
        Ok(out)
    }

    /// Replays and aggregates in one step.
    ///
    /// # Errors
    /// See [`Rbe::replay`].
    pub fn run(&self, proxy: &mut FunctionProxy, trace: &Trace) -> Result<TraceReport, ProxyError> {
        Ok(TraceReport::from_metrics(&self.replay(proxy, trace)?))
    }

    /// Replays `trace` through a shared [`ProxyHandle`] from `threads`
    /// concurrent client threads. Queries are dealt round-robin: client
    /// `t` issues queries `t, t+threads, t+2*threads, ...` in order, so
    /// each query runs exactly once and every client sees an in-order
    /// subsequence of the trace. Returned metrics are in trace order.
    ///
    /// # Errors
    /// Returns the first proxy error any client hit (the run is
    /// meaningless after one, same as [`Rbe::replay`]).
    pub fn replay_shared(
        &self,
        handle: &ProxyHandle,
        trace: &Trace,
        threads: usize,
    ) -> Result<Vec<QueryMetrics>, ProxyError> {
        let threads = threads.clamp(1, trace.len().max(1));
        let form_path = &self.form_path;
        let per_thread: Vec<Result<Vec<(usize, QueryMetrics)>, ProxyError>> =
            std::thread::scope(|scope| {
                let clients: Vec<_> = (0..threads)
                    .map(|t| {
                        let handle = handle.clone();
                        scope.spawn(move || {
                            let mut out = Vec::new();
                            for (i, q) in trace.queries.iter().enumerate().skip(t).step_by(threads)
                            {
                                let response = handle.handle_form(form_path, &q.form_fields())?;
                                out.push((i, response.metrics));
                            }
                            Ok(out)
                        })
                    })
                    .collect();
                clients
                    .into_iter()
                    .map(|c| c.join().expect("client thread panicked"))
                    .collect()
            });

        let mut metrics: Vec<Option<QueryMetrics>> = vec![None; trace.len()];
        for client in per_thread {
            for (i, m) in client? {
                metrics[i] = Some(m);
            }
        }
        Ok(metrics
            .into_iter()
            .map(|m| m.expect("round-robin deal covers every query"))
            .collect())
    }

    /// [`Rbe::replay_shared`] over the bytes path: every client calls
    /// [`ProxyHandle::handle_form_xml`], so hits — RAM and disk tier —
    /// are served as pre-serialized XML without materializing tuples.
    /// This is the path the HTTP front ends use; replaying through it
    /// measures the zero-copy serve latencies rather than the
    /// tuple-materializing ones. Deal and ordering are identical to
    /// [`Rbe::replay_shared`].
    ///
    /// # Errors
    /// Returns the first proxy error any client hit.
    pub fn replay_shared_xml(
        &self,
        handle: &ProxyHandle,
        trace: &Trace,
        threads: usize,
    ) -> Result<Vec<QueryMetrics>, ProxyError> {
        let threads = threads.clamp(1, trace.len().max(1));
        let form_path = &self.form_path;
        let per_thread: Vec<Result<Vec<(usize, QueryMetrics)>, ProxyError>> =
            std::thread::scope(|scope| {
                let clients: Vec<_> = (0..threads)
                    .map(|t| {
                        let handle = handle.clone();
                        scope.spawn(move || {
                            let mut out = Vec::new();
                            for (i, q) in trace.queries.iter().enumerate().skip(t).step_by(threads)
                            {
                                let response =
                                    handle.handle_form_xml(form_path, &q.form_fields())?;
                                out.push((i, response.metrics));
                            }
                            Ok(out)
                        })
                    })
                    .collect();
                clients
                    .into_iter()
                    .map(|c| c.join().expect("client thread panicked"))
                    .collect()
            });

        let mut metrics: Vec<Option<QueryMetrics>> = vec![None; trace.len()];
        for client in per_thread {
            for (i, m) in client? {
                metrics[i] = Some(m);
            }
        }
        Ok(metrics
            .into_iter()
            .map(|m| m.expect("round-robin deal covers every query"))
            .collect())
    }

    /// [`Rbe::replay_shared`] plus aggregation.
    ///
    /// # Errors
    /// See [`Rbe::replay_shared`].
    pub fn run_shared(
        &self,
        handle: &ProxyHandle,
        trace: &Trace,
        threads: usize,
    ) -> Result<TraceReport, ProxyError> {
        Ok(TraceReport::from_metrics(
            &self.replay_shared(handle, trace, threads)?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TraceSpec;
    use fp_skyserver::{Catalog, CatalogSpec, SkySite};
    use funcproxy::cache::DescriptionKind;
    use funcproxy::template::TemplateManager;
    use funcproxy::{CostModel, ProxyConfig, Scheme, SiteOrigin};
    use std::sync::Arc;

    fn proxy(scheme: Scheme) -> FunctionProxy {
        let site = SkySite::new(Catalog::generate(&CatalogSpec::small_test()));
        FunctionProxy::new(
            TemplateManager::with_sky_defaults(),
            Arc::new(SiteOrigin::new(site)),
            ProxyConfig::default().with_scheme(scheme),
        )
    }

    #[test]
    fn replay_produces_one_metric_per_query() {
        let trace = TraceSpec {
            queries: 60,
            ..TraceSpec::small_test()
        }
        .generate();
        let mut p = proxy(Scheme::FullSemantic);
        let metrics = Rbe::default().replay(&mut p, &trace).unwrap();
        assert_eq!(metrics.len(), trace.len());
        let report = TraceReport::from_metrics(&metrics);
        assert_eq!(report.queries, 60);
        assert!(report.avg_response_ms > 0.0);
    }

    #[test]
    fn active_beats_passive_beats_nothing_on_efficiency() {
        let trace = TraceSpec {
            queries: 250,
            seed: 3,
            ..TraceSpec::small_test()
        }
        .generate();
        let rbe = Rbe::default();

        let mut nc = proxy(Scheme::NoCache);
        let mut pc = proxy(Scheme::Passive);
        let mut ac = proxy(Scheme::FullSemantic);
        let r_nc = rbe.run(&mut nc, &trace).unwrap();
        let r_pc = rbe.run(&mut pc, &trace).unwrap();
        let r_ac = rbe.run(&mut ac, &trace).unwrap();

        assert_eq!(r_nc.avg_cache_efficiency, 0.0);
        assert!(
            r_ac.avg_cache_efficiency > r_pc.avg_cache_efficiency,
            "active {} should beat passive {}",
            r_ac.avg_cache_efficiency,
            r_pc.avg_cache_efficiency
        );
        assert!(
            r_ac.avg_response_ms < r_nc.avg_response_ms,
            "active {} should beat no-cache {}",
            r_ac.avg_response_ms,
            r_nc.avg_response_ms
        );
    }

    #[test]
    fn shared_replay_covers_the_trace_and_agrees_with_the_oracle() {
        let trace = TraceSpec {
            queries: 80,
            seed: 9,
            ..TraceSpec::small_test()
        }
        .generate();
        let rbe = Rbe::default();

        let site = SkySite::new(Catalog::generate(&CatalogSpec::small_test()));
        let handle = funcproxy::ProxyHandle::with_shards(
            TemplateManager::with_sky_defaults(),
            Arc::new(SiteOrigin::new(site.clone())),
            ProxyConfig::default()
                .with_scheme(Scheme::FullSemantic)
                .with_cost(CostModel::free()),
            4,
        );
        let metrics = rbe.replay_shared(&handle, &trace, 8).unwrap();
        assert_eq!(metrics.len(), trace.len());

        // Row counts per query must match a no-cache oracle replay.
        let mut oracle = FunctionProxy::new(
            TemplateManager::with_sky_defaults(),
            Arc::new(SiteOrigin::new(site)),
            ProxyConfig::default()
                .with_scheme(Scheme::NoCache)
                .with_cost(CostModel::free()),
        );
        let truth = rbe.replay(&mut oracle, &trace).unwrap();
        for (i, (m, t)) in metrics.iter().zip(&truth).enumerate() {
            assert_eq!(m.rows_total, t.rows_total, "query {i} row count");
        }
    }

    #[test]
    fn description_kinds_agree_on_results() {
        let trace = TraceSpec {
            queries: 120,
            seed: 5,
            ..TraceSpec::small_test()
        }
        .generate();
        let rbe = Rbe::default();

        let site = SkySite::new(Catalog::generate(&CatalogSpec::small_test()));
        let mut with_array = FunctionProxy::new(
            TemplateManager::with_sky_defaults(),
            Arc::new(SiteOrigin::new(site.clone())),
            ProxyConfig::default()
                .with_scheme(Scheme::FullSemantic)
                .with_description(DescriptionKind::Array)
                .with_cost(CostModel::free()),
        );
        let mut with_rtree = FunctionProxy::new(
            TemplateManager::with_sky_defaults(),
            Arc::new(SiteOrigin::new(site)),
            ProxyConfig::default()
                .with_scheme(Scheme::FullSemantic)
                .with_description(DescriptionKind::RTree)
                .with_cost(CostModel::free()),
        );
        let a = rbe.replay(&mut with_array, &trace).unwrap();
        let b = rbe.replay(&mut with_rtree, &trace).unwrap();
        // Identical outcomes and identical tuple counts, query by query.
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.outcome, y.outcome);
            assert_eq!(x.rows_total, y.rows_total);
            assert_eq!(x.rows_from_cache, y.rows_from_cache);
        }
    }
}
