//! The Remote Browser Emulator: replays traces through a proxy.

use crate::trace::Trace;
use funcproxy::metrics::{QueryMetrics, TraceReport};
use funcproxy::{FunctionProxy, ProxyError};

/// The paper's RBE ("the program we write for emulating a web browser
/// client"): issues each trace query as a Radial form request and records
/// the per-query metrics.
pub struct Rbe {
    /// Path of the Radial form on the proxy.
    pub form_path: String,
}

impl Default for Rbe {
    fn default() -> Self {
        Rbe {
            form_path: "/search/radial".to_string(),
        }
    }
}

impl Rbe {
    /// Replays `trace` through `proxy`, returning per-query metrics.
    ///
    /// # Errors
    /// Stops at the first proxy error (misconfigured templates or a dead
    /// origin make the whole run meaningless).
    pub fn replay(
        &self,
        proxy: &mut FunctionProxy,
        trace: &Trace,
    ) -> Result<Vec<QueryMetrics>, ProxyError> {
        let mut out = Vec::with_capacity(trace.len());
        for q in &trace.queries {
            let response = proxy.handle_form(&self.form_path, &q.form_fields())?;
            out.push(response.metrics);
        }
        Ok(out)
    }

    /// Replays and aggregates in one step.
    ///
    /// # Errors
    /// See [`Rbe::replay`].
    pub fn run(&self, proxy: &mut FunctionProxy, trace: &Trace) -> Result<TraceReport, ProxyError> {
        Ok(TraceReport::from_metrics(&self.replay(proxy, trace)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TraceSpec;
    use fp_skyserver::{Catalog, CatalogSpec, SkySite};
    use funcproxy::cache::DescriptionKind;
    use funcproxy::template::TemplateManager;
    use funcproxy::{CostModel, ProxyConfig, Scheme, SiteOrigin};
    use std::sync::Arc;

    fn proxy(scheme: Scheme) -> FunctionProxy {
        let site = SkySite::new(Catalog::generate(&CatalogSpec::small_test()));
        FunctionProxy::new(
            TemplateManager::with_sky_defaults(),
            Arc::new(SiteOrigin::new(site)),
            ProxyConfig::default().with_scheme(scheme),
        )
    }

    #[test]
    fn replay_produces_one_metric_per_query() {
        let trace = TraceSpec {
            queries: 60,
            ..TraceSpec::small_test()
        }
        .generate();
        let mut p = proxy(Scheme::FullSemantic);
        let metrics = Rbe::default().replay(&mut p, &trace).unwrap();
        assert_eq!(metrics.len(), trace.len());
        let report = TraceReport::from_metrics(&metrics);
        assert_eq!(report.queries, 60);
        assert!(report.avg_response_ms > 0.0);
    }

    #[test]
    fn active_beats_passive_beats_nothing_on_efficiency() {
        let trace = TraceSpec {
            queries: 250,
            seed: 3,
            ..TraceSpec::small_test()
        }
        .generate();
        let rbe = Rbe::default();

        let mut nc = proxy(Scheme::NoCache);
        let mut pc = proxy(Scheme::Passive);
        let mut ac = proxy(Scheme::FullSemantic);
        let r_nc = rbe.run(&mut nc, &trace).unwrap();
        let r_pc = rbe.run(&mut pc, &trace).unwrap();
        let r_ac = rbe.run(&mut ac, &trace).unwrap();

        assert_eq!(r_nc.avg_cache_efficiency, 0.0);
        assert!(
            r_ac.avg_cache_efficiency > r_pc.avg_cache_efficiency,
            "active {} should beat passive {}",
            r_ac.avg_cache_efficiency,
            r_pc.avg_cache_efficiency
        );
        assert!(
            r_ac.avg_response_ms < r_nc.avg_response_ms,
            "active {} should beat no-cache {}",
            r_ac.avg_response_ms,
            r_nc.avg_response_ms
        );
    }

    #[test]
    fn description_kinds_agree_on_results() {
        let trace = TraceSpec {
            queries: 120,
            seed: 5,
            ..TraceSpec::small_test()
        }
        .generate();
        let rbe = Rbe::default();

        let site = SkySite::new(Catalog::generate(&CatalogSpec::small_test()));
        let mut with_array = FunctionProxy::new(
            TemplateManager::with_sky_defaults(),
            Arc::new(SiteOrigin::new(site.clone())),
            ProxyConfig::default()
                .with_scheme(Scheme::FullSemantic)
                .with_description(DescriptionKind::Array)
                .with_cost(CostModel::free()),
        );
        let mut with_rtree = FunctionProxy::new(
            TemplateManager::with_sky_defaults(),
            Arc::new(SiteOrigin::new(site)),
            ProxyConfig::default()
                .with_scheme(Scheme::FullSemantic)
                .with_description(DescriptionKind::RTree)
                .with_cost(CostModel::free()),
        );
        let a = rbe.replay(&mut with_array, &trace).unwrap();
        let b = rbe.replay(&mut with_rtree, &trace).unwrap();
        // Identical outcomes and identical tuple counts, query by query.
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.outcome, y.outcome);
            assert_eq!(x.rows_total, y.rows_total);
            assert_eq!(x.rows_from_cache, y.rows_from_cache);
        }
    }
}
