//! Query traces and the remote browser emulator (RBE).
//!
//! The paper's evaluation replays a real trace of 11,323 Radial-search
//! queries extracted from SkyServer web logs; with an unbounded cache,
//! 17 % of them are exact matches, 34 % are contained in earlier queries,
//! and about 9 % overlap (§4.1). The real logs are not available, so this
//! crate generates synthetic Radial traces whose *relationship mix* — the
//! only trace property the caching schemes are sensitive to — is
//! constructed to match those percentages, then verified by classification
//! against an unbounded cache ([`stats::classify_trace`]).
//!
//! [`rbe::Rbe`] is the paper's "Remote Browser Emulator": it replays a
//! trace through a [`funcproxy::FunctionProxy`] and aggregates the
//! response-time and cache-efficiency metrics the figures report.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generator;
pub mod rbe;
pub mod stats;
pub mod trace;

pub use generator::{RelationKind, TraceSpec};
pub use rbe::Rbe;
pub use stats::{classify_trace, TraceMix};
pub use trace::{RadialQuery, Trace};
