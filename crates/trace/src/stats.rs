//! Trace census: the paper's §4.1 relationship statistics.

use crate::trace::Trace;
use fp_geometry::celestial::radial_query_sphere;
use fp_geometry::{Region, Relation};
use fp_rtree::RTree;
use serde::{Deserialize, Serialize};

/// Relationship mix of a trace against an unbounded cache:
/// `counts = [exact, contained, overlap, disjoint]` in replay order,
/// using the same priority the proxy uses (exact > contained > overlap).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TraceMix {
    /// `[exact, contained, overlap, disjoint]`.
    pub counts: [usize; 4],
}

impl TraceMix {
    /// Total queries.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Fractions in the same order as `counts`.
    pub fn fractions(&self) -> [f64; 4] {
        let n = self.total().max(1) as f64;
        [
            self.counts[0] as f64 / n,
            self.counts[1] as f64 / n,
            self.counts[2] as f64 / n,
            self.counts[3] as f64 / n,
        ]
    }

    /// Fraction completely answerable from cache (paper: "nearly 51%").
    pub fn fully_answerable(&self) -> f64 {
        let n = self.total().max(1) as f64;
        (self.counts[0] + self.counts[1]) as f64 / n
    }
}

impl std::fmt::Display for TraceMix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let [e, c, o, d] = self.fractions();
        write!(
            f,
            "exact {:.1}% | contained {:.1}% | overlap {:.1}% | disjoint {:.1}% (n={})",
            e * 100.0,
            c * 100.0,
            o * 100.0,
            d * 100.0,
            self.total()
        )
    }
}

/// Classifies every query against all *earlier* queries (unbounded cache),
/// replicating the census of the paper's Section 4.1.
pub fn classify_trace(trace: &Trace) -> TraceMix {
    let mut mix = TraceMix::default();
    let mut regions: Vec<Region> = Vec::with_capacity(trace.len());
    let mut index: RTree<usize> = RTree::with_capacity_params(3, 16);

    for q in &trace.queries {
        let region = Region::Sphere(
            radial_query_sphere(q.ra, q.dec, q.radius).expect("trace queries are valid"),
        );
        let mut contained = false;
        let mut overlapping = false;
        let mut exact = false;
        for (_, &idx) in index.search_intersecting(&region.bounding_rect()) {
            match region.relate(&regions[idx]) {
                Relation::Equal => {
                    exact = true;
                    break;
                }
                Relation::Inside => contained = true,
                Relation::Contains | Relation::Overlaps => overlapping = true,
                Relation::Disjoint => {}
            }
        }
        let slot = if exact {
            0
        } else if contained {
            1
        } else if overlapping {
            2
        } else {
            3
        };
        mix.counts[slot] += 1;
        index.insert(region.bounding_rect(), regions.len());
        regions.push(region);
    }
    mix
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::RadialQuery;

    #[test]
    fn census_on_a_hand_built_trace() {
        let t = Trace {
            queries: vec![
                RadialQuery {
                    ra: 185.0,
                    dec: 0.0,
                    radius: 30.0,
                }, // disjoint (first)
                RadialQuery {
                    ra: 185.0,
                    dec: 0.0,
                    radius: 30.0,
                }, // exact
                RadialQuery {
                    ra: 185.0,
                    dec: 0.0,
                    radius: 10.0,
                }, // contained
                RadialQuery {
                    ra: 185.5,
                    dec: 0.0,
                    radius: 15.0,
                }, // overlap
                RadialQuery {
                    ra: 100.0,
                    dec: 0.0,
                    radius: 5.0,
                }, // disjoint
            ],
        };
        let mix = classify_trace(&t);
        assert_eq!(mix.counts, [1, 1, 1, 2]);
        assert_eq!(mix.total(), 5);
        assert!((mix.fully_answerable() - 0.4).abs() < 1e-9);
        let text = mix.to_string();
        assert!(text.contains("exact 20.0%"));
    }

    #[test]
    fn empty_trace() {
        let mix = classify_trace(&Trace::default());
        assert_eq!(mix.total(), 0);
        assert_eq!(mix.fully_answerable(), 0.0);
    }
}
