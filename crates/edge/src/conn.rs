//! Incremental HTTP/1.1 request parsing over an accumulation buffer.
//!
//! The blocking server hands `fp_httpd::parse::read_request` a stream
//! and lets it block for missing bytes. The reactor cannot: it owns a
//! growing byte buffer per connection and must answer "is a complete
//! request here yet?" without waiting. The trick is to look for the
//! head terminator (the blank line) first — only once the full head has
//! arrived is `read_request` run over the buffer, so a half-received
//! request line is *incomplete*, never *malformed*. `read_request`
//! itself then reports a short body as `UnexpectedEof`, which maps back
//! to "need more bytes".

use fp_httpd::parse::read_request;
use fp_httpd::{HttpError, Request};

/// Cap on the request head (request line + headers). Matches the
/// per-line limit `fp_httpd` enforces, applied to the whole head.
pub const MAX_HEAD: usize = 64 * 1024;

/// What the accumulation buffer currently holds.
pub enum ParseOutcome {
    /// No complete request yet; keep reading.
    NeedMore,
    /// One complete request, occupying `consumed` leading bytes of the
    /// buffer (pipelined successors may follow it).
    Request {
        /// The parsed request.
        request: Box<Request>,
        /// How many buffer bytes it consumed.
        consumed: usize,
    },
    /// The connection sent something unrecoverable.
    Error(HttpError),
}

/// Finds the end of a complete request head: the index one past the
/// blank line. Tolerates `\r\n` and bare `\n` line endings, like the
/// underlying parser.
pub fn find_head_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            match buf.get(i + 1) {
                Some(b'\n') => return Some(i + 2),
                Some(b'\r') if buf.get(i + 2) == Some(&b'\n') => return Some(i + 3),
                _ => {}
            }
        }
        i += 1;
    }
    None
}

/// Attempts to parse one request off the front of `buf`.
pub fn try_parse(buf: &[u8]) -> ParseOutcome {
    if find_head_end(buf).is_none() {
        if buf.len() > MAX_HEAD {
            return ParseOutcome::Error(HttpError::Malformed("request head too large".into()));
        }
        return ParseOutcome::NeedMore;
    }
    // `&[u8]` is `BufRead`; the cursor advances as the parser consumes.
    let mut cursor = buf;
    match read_request(&mut cursor) {
        Ok(Some(request)) => ParseOutcome::Request {
            request: Box::new(request),
            consumed: buf.len() - cursor.len(),
        },
        // A clean-EOF verdict cannot happen with a nonempty head; treat
        // it like missing bytes for robustness.
        Ok(None) => ParseOutcome::NeedMore,
        // Complete head, short body: not an error over a live socket.
        Err(HttpError::UnexpectedEof) => ParseOutcome::NeedMore,
        Err(e) => ParseOutcome::Error(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_httpd::Method;

    #[test]
    fn head_end_handles_both_line_ending_styles() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\n"), Some(18));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\n\n"), Some(16));
        assert_eq!(
            find_head_end(b"GET / HTTP/1.1\r\nHost: h\r\n\r\nX"),
            Some(27)
        );
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\nHost:"), None);
        assert_eq!(find_head_end(b""), None);
    }

    #[test]
    fn partial_request_line_is_need_more_not_malformed() {
        // `read_request` alone would call this malformed; incrementally
        // it is just incomplete.
        assert!(matches!(try_parse(b"GET /sea"), ParseOutcome::NeedMore));
        assert!(matches!(
            try_parse(b"GET / HTTP/1.1\r\nHost: h\r\n"),
            ParseOutcome::NeedMore
        ));
    }

    #[test]
    fn complete_request_reports_consumed_bytes() {
        let raw = b"GET /ping HTTP/1.1\r\nHost: h\r\n\r\nGET /nex";
        match try_parse(raw) {
            ParseOutcome::Request { request, consumed } => {
                assert_eq!(request.method, Method::Get);
                assert_eq!(request.path, "/ping");
                assert_eq!(consumed, 31);
                assert_eq!(&raw[consumed..], b"GET /nex");
            }
            _ => panic!("complete request must parse"),
        }
    }

    #[test]
    fn body_arrives_incrementally() {
        let full = b"POST /sql HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        assert!(matches!(try_parse(&full[..43]), ParseOutcome::NeedMore));
        match try_parse(full) {
            ParseOutcome::Request { request, consumed } => {
                assert_eq!(request.body, b"hello");
                assert_eq!(consumed, full.len());
            }
            _ => panic!("complete POST must parse"),
        }
    }

    #[test]
    fn garbage_with_complete_head_is_an_error() {
        assert!(matches!(
            try_parse(b"BLORP / HTTP/1.1\r\n\r\n"),
            ParseOutcome::Error(HttpError::Malformed(_))
        ));
        assert!(matches!(
            try_parse(b"GET / HTTP/2\r\n\r\n"),
            ParseOutcome::Error(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_head_is_rejected_not_buffered_forever() {
        let mut huge = b"GET / HTTP/1.1\r\n".to_vec();
        huge.extend(std::iter::repeat_n(b'a', MAX_HEAD + 10));
        assert!(matches!(try_parse(&huge), ParseOutcome::Error(_)));
    }
}
