//! Edge-server counters: admission-control decisions, fast-path serves,
//! connection lifecycle. Same discipline as the core `RuntimeStats` —
//! wait-free atomic increments on the hot path, snapshot on demand,
//! Prometheus text on request.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Shared live counters, incremented by the reactor and workers.
#[derive(Default)]
pub struct EdgeStats {
    /// Connections accepted and registered.
    pub conns_accepted: AtomicUsize,
    /// Connections refused at accept (connection cap).
    pub conns_rejected: AtomicUsize,
    /// Currently open connections (gauge).
    pub conns_open: AtomicUsize,
    /// Complete requests parsed.
    pub requests: AtomicUsize,
    /// Requests served inline on the reactor (fresh cache hits).
    pub fast_path: AtomicUsize,
    /// Requests handed off to the worker pool.
    pub offloaded: AtomicUsize,
    /// Requests shed because the pending queue was full.
    pub shed_queue_full: AtomicUsize,
    /// Requests shed because the origin breaker was open while the
    /// queue was already half full.
    pub shed_breaker: AtomicUsize,
    /// Requests shed because the server was draining for shutdown.
    pub shed_draining: AtomicUsize,
    /// Connections closed for dribbling a request past the read
    /// deadline (slowloris defense), answered `408`.
    pub read_timeouts: AtomicUsize,
    /// Malformed requests answered `400` and closed.
    pub bad_requests: AtomicUsize,
    /// Requests parsed while earlier ones on the same connection were
    /// still being served (HTTP/1.1 pipelining actually exercised).
    pub pipelined: AtomicUsize,
}

impl EdgeStats {
    #[inline]
    pub(crate) fn bump(counter: &AtomicUsize) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> EdgeSnapshot {
        EdgeSnapshot {
            conns_accepted: self.conns_accepted.load(Ordering::Relaxed),
            conns_rejected: self.conns_rejected.load(Ordering::Relaxed),
            conns_open: self.conns_open.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            fast_path: self.fast_path.load(Ordering::Relaxed),
            offloaded: self.offloaded.load(Ordering::Relaxed),
            shed_queue_full: self.shed_queue_full.load(Ordering::Relaxed),
            shed_breaker: self.shed_breaker.load(Ordering::Relaxed),
            shed_draining: self.shed_draining.load(Ordering::Relaxed),
            read_timeouts: self.read_timeouts.load(Ordering::Relaxed),
            bad_requests: self.bad_requests.load(Ordering::Relaxed),
            pipelined: self.pipelined.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`EdgeStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EdgeSnapshot {
    /// Connections accepted and registered.
    pub conns_accepted: usize,
    /// Connections refused at accept (connection cap).
    pub conns_rejected: usize,
    /// Currently open connections.
    pub conns_open: usize,
    /// Complete requests parsed.
    pub requests: usize,
    /// Requests served inline on the reactor.
    pub fast_path: usize,
    /// Requests handed off to the worker pool.
    pub offloaded: usize,
    /// Requests shed: pending queue full.
    pub shed_queue_full: usize,
    /// Requests shed: breaker open under queue pressure.
    pub shed_breaker: usize,
    /// Requests shed: server draining.
    pub shed_draining: usize,
    /// Slowloris closes (`408`).
    pub read_timeouts: usize,
    /// Malformed requests (`400`).
    pub bad_requests: usize,
    /// Requests that were pipelined behind an in-flight one.
    pub pipelined: usize,
}

impl EdgeSnapshot {
    /// Every deliberate shed, across the three admission-control gates.
    pub fn shed_total(&self) -> usize {
        self.shed_queue_full + self.shed_breaker + self.shed_draining
    }

    /// Renders the edge counter families in Prometheus text exposition
    /// format (version 0.0.4), alongside the core
    /// `funcproxy_*` families.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(2048);
        let mut counter = |name: &str, help: &str, value: usize| {
            let _ = writeln!(
                out,
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}"
            );
        };
        counter(
            "funcproxy_edge_conns_accepted_total",
            "Connections accepted by the edge reactor.",
            self.conns_accepted,
        );
        counter(
            "funcproxy_edge_conns_rejected_total",
            "Connections refused at the connection cap.",
            self.conns_rejected,
        );
        counter(
            "funcproxy_edge_requests_total",
            "Complete requests parsed by the edge reactor.",
            self.requests,
        );
        counter(
            "funcproxy_edge_fast_path_total",
            "Requests served inline on the reactor (fresh cache hits).",
            self.fast_path,
        );
        counter(
            "funcproxy_edge_offloaded_total",
            "Requests handed off to the worker pool.",
            self.offloaded,
        );
        counter(
            "funcproxy_edge_shed_queue_full_total",
            "Requests shed with 503: pending queue full.",
            self.shed_queue_full,
        );
        counter(
            "funcproxy_edge_shed_breaker_total",
            "Requests shed with 503: origin breaker open under queue pressure.",
            self.shed_breaker,
        );
        counter(
            "funcproxy_edge_shed_draining_total",
            "Requests shed with 503: server draining for shutdown.",
            self.shed_draining,
        );
        counter(
            "funcproxy_edge_read_timeouts_total",
            "Connections closed for dribbling past the read deadline (408).",
            self.read_timeouts,
        );
        counter(
            "funcproxy_edge_bad_requests_total",
            "Malformed requests answered 400.",
            self.bad_requests,
        );
        counter(
            "funcproxy_edge_pipelined_total",
            "Requests parsed while earlier ones were still in flight.",
            self.pipelined,
        );
        let _ = writeln!(
            out,
            "# HELP funcproxy_edge_conns_open Currently open edge connections.\n\
             # TYPE funcproxy_edge_conns_open gauge\n\
             funcproxy_edge_conns_open {}",
            self.conns_open
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_rendering_cover_every_counter() {
        let stats = EdgeStats::default();
        EdgeStats::bump(&stats.conns_accepted);
        EdgeStats::bump(&stats.requests);
        EdgeStats::bump(&stats.shed_queue_full);
        let snap = stats.snapshot();
        assert_eq!(snap.conns_accepted, 1);
        assert_eq!(snap.shed_total(), 1);
        let text = snap.render_prometheus();
        for family in [
            "funcproxy_edge_conns_accepted_total",
            "funcproxy_edge_conns_rejected_total",
            "funcproxy_edge_requests_total",
            "funcproxy_edge_fast_path_total",
            "funcproxy_edge_offloaded_total",
            "funcproxy_edge_shed_queue_full_total",
            "funcproxy_edge_shed_breaker_total",
            "funcproxy_edge_shed_draining_total",
            "funcproxy_edge_read_timeouts_total",
            "funcproxy_edge_bad_requests_total",
            "funcproxy_edge_pipelined_total",
            "funcproxy_edge_conns_open",
        ] {
            assert!(text.contains(family), "{family} missing");
        }
        assert!(text.contains("funcproxy_edge_requests_total 1"));
    }
}
