//! The nonblocking edge: an epoll-reactor HTTP/1.1 server with
//! admission control, built so the function proxy can face thousands of
//! concurrent client connections with a handful of threads
//! (DESIGN.md §12).
//!
//! The legacy [`fp_httpd::HttpServer`] spawns a thread per connection
//! and parks it on reads and origin fetches — fine for eight benchmark
//! clients, fatal for an edge. This crate splits the work the way
//! event-driven proxies do:
//!
//! * one **reactor** thread ([`reactor::EdgeServer`]) owns the listener
//!   and every connection; nonblocking accept/read/write driven by
//!   epoll readiness, per-connection state machines for HTTP/1.1
//!   keep-alive and pipelining;
//! * a small fixed **worker pool** ([`pool::WorkerPool`]) runs requests
//!   that may block (origin fetches, single-flight waits). Cache hits
//!   never get there — the reactor serves them inline through
//!   [`service::EdgeService::try_fast`];
//! * **admission control** keeps saturation cheap: a connection cap at
//!   accept, a bounded pending-request queue in front of the pool, and
//!   breaker-aware load shedding — all answered with an immediate
//!   `503` + `Retry-After` instead of an unbounded thread or queue.
//!
//! The only `unsafe` in the crate is the [`sys`] module's hand-declared
//! epoll/eventfd/signal bindings (the build environment has no `libc`
//! crate to vendor them from).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod conn;
pub mod pool;
pub mod reactor;
pub mod service;
pub mod stats;
#[allow(unsafe_code)]
pub mod sys;

pub use reactor::{EdgeConfig, EdgeServer};
pub use service::{EdgeService, ProxyEdgeService};
pub use stats::{EdgeSnapshot, EdgeStats};
