//! The epoll reactor: one thread owning the listener and every
//! connection, serving cache hits inline and offloading blocking work
//! to the fixed pool.
//!
//! ## Structure
//!
//! Readiness tokens map to a connection slab (`Vec<Option<Conn>>` plus
//! a free list); slots carry generation counters so a completion for a
//! connection that died while its request was on a worker is dropped
//! instead of being written to an unrelated new connection. Workers
//! push finished responses into a mailbox and kick the reactor's
//! eventfd; the reactor drains the mailbox between readiness batches.
//!
//! ## HTTP/1.1 semantics
//!
//! Connections are keep-alive by default and honor pipelining: each
//! parsed request gets a per-connection sequence number, out-of-order
//! completions park in a `BTreeMap`, and bytes go on the wire strictly
//! in request order. `Connection: close` and error responses close
//! after the flush.
//!
//! ## Admission control
//!
//! Three gates, all answering `503` + `Retry-After` immediately instead
//! of queueing unboundedly: a connection cap at accept, the bounded
//! pending-request queue in front of the pool, and — once the queue is
//! at half pressure — the origin circuit breaker via
//! [`EdgeService::shed_hint`] (an open breaker alone does not shed:
//! degraded cache serving is still useful while capacity remains).
//! Slowloris connections that dribble a request past the read deadline
//! are answered `408` and closed.

use crate::conn::{try_parse, ParseOutcome};
use crate::pool::{Job, WorkerPool};
use crate::service::EdgeService;
use crate::stats::{EdgeSnapshot, EdgeStats};
use crate::sys::{
    Epoll, EpollEvent, WakeFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP, MAX_EVENTS,
};
use fp_httpd::{Request, Response, Status};
use funcproxy::observe::{Observer, PathClass, Phase};
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

const TOKEN_LISTENER: u64 = u64::MAX;
const TOKEN_WAKE: u64 = u64::MAX - 1;

const RUNNING: u8 = 0;
const DRAINING: u8 = 1;
const STOPPING: u8 = 2;

/// Tuning for an [`EdgeServer`]; defaults are production-shaped, tests
/// shrink them.
#[derive(Clone)]
pub struct EdgeConfig {
    /// Worker threads for blocking request handling (0 = fast path
    /// only; every offload sheds once the queue fills).
    pub workers: usize,
    /// Cap on simultaneously open connections; connects beyond it are
    /// answered `503` and closed at accept.
    pub max_connections: usize,
    /// Bound on the pending-request queue in front of the pool.
    pub queue_depth: usize,
    /// Max requests in flight (offloaded or awaiting in-order flush)
    /// per connection before parsing pauses.
    pub max_pipeline: usize,
    /// A connection that has started a request head but not finished it
    /// within this window is answered `408` and closed (slowloris).
    pub read_deadline: Duration,
    /// Idle keep-alive connections are closed after this long.
    pub idle_timeout: Duration,
    /// How long a graceful shutdown waits for in-flight requests.
    pub drain_deadline: Duration,
    /// Observe hub for accept/parse/queue-wait/handoff phase latencies.
    pub observer: Option<Arc<Observer>>,
    /// Counter block to record into (lets `/metrics` endpoints share
    /// the instance); a private one is created when absent.
    pub stats: Option<Arc<EdgeStats>>,
}

impl Default for EdgeConfig {
    fn default() -> Self {
        EdgeConfig {
            workers: 4,
            max_connections: 1024,
            queue_depth: 256,
            max_pipeline: 32,
            read_deadline: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(60),
            drain_deadline: Duration::from_secs(5),
            observer: None,
            stats: None,
        }
    }
}

impl EdgeConfig {
    /// Sets the worker-thread count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the connection cap.
    pub fn with_max_connections(mut self, cap: usize) -> Self {
        self.max_connections = cap;
        self
    }

    /// Sets the pending-queue bound.
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Sets the per-connection pipelining bound.
    pub fn with_max_pipeline(mut self, depth: usize) -> Self {
        self.max_pipeline = depth.max(1);
        self
    }

    /// Sets the slowloris read deadline.
    pub fn with_read_deadline(mut self, deadline: Duration) -> Self {
        self.read_deadline = deadline;
        self
    }

    /// Sets the idle keep-alive timeout.
    pub fn with_idle_timeout(mut self, timeout: Duration) -> Self {
        self.idle_timeout = timeout;
        self
    }

    /// Sets the graceful-shutdown drain window.
    pub fn with_drain_deadline(mut self, deadline: Duration) -> Self {
        self.drain_deadline = deadline;
        self
    }

    /// Records edge phase latencies into `observer`.
    pub fn with_observer(mut self, observer: Arc<Observer>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Counts into `stats` instead of a private instance.
    pub fn with_stats(mut self, stats: Arc<EdgeStats>) -> Self {
        self.stats = Some(stats);
        self
    }
}

/// A worker-finished response addressed back to its connection.
struct Completion {
    slot: usize,
    generation: u64,
    seq: u64,
    bytes: Vec<u8>,
    close: bool,
    pushed_at: Instant,
}

/// State shared between the server handle, the reactor thread, and the
/// workers.
struct Shared {
    state: AtomicU8,
    drain_ms: AtomicU64,
    completions: Mutex<Vec<Completion>>,
    wake: WakeFd,
}

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    generation: u64,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Next sequence number to assign to a parsed request.
    next_seq: u64,
    /// Next sequence number eligible to go on the wire.
    next_write_seq: u64,
    /// Out-of-order finished responses waiting for their turn.
    ready: BTreeMap<u64, (Vec<u8>, bool)>,
    /// Requests currently on the worker side.
    inflight: usize,
    last_activity: Instant,
    /// When the current (incomplete) request head started arriving.
    head_started: Option<Instant>,
    /// No more parsing; close once everything queued has flushed.
    closing: bool,
    /// Currently registered for `EPOLLOUT`.
    want_write: bool,
}

impl Conn {
    fn new(stream: TcpStream, generation: u64) -> Conn {
        Conn {
            stream,
            generation,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            next_seq: 0,
            next_write_seq: 0,
            ready: BTreeMap::new(),
            inflight: 0,
            last_activity: Instant::now(),
            head_started: None,
            closing: false,
            want_write: false,
        }
    }

    /// Nothing left to serve or flush.
    fn is_idle(&self) -> bool {
        self.inflight == 0 && self.ready.is_empty() && self.write_pos >= self.write_buf.len()
    }
}

/// A running nonblocking edge server: one reactor thread plus the
/// configured worker pool, `1 + workers` threads total regardless of
/// how many connections are open.
pub struct EdgeServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    stats: Arc<EdgeStats>,
    reactor: Option<JoinHandle<()>>,
    threads: usize,
}

impl EdgeServer {
    /// Binds to `addr` (port 0 for ephemeral) and starts the reactor
    /// and worker threads.
    ///
    /// # Errors
    /// Returns bind/epoll/eventfd setup errors.
    pub fn bind(
        addr: &str,
        service: Arc<dyn EdgeService>,
        config: EdgeConfig,
    ) -> io::Result<EdgeServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let epoll = Epoll::new()?;
        let shared = Arc::new(Shared {
            state: AtomicU8::new(RUNNING),
            drain_ms: AtomicU64::new(config.drain_deadline.as_millis() as u64),
            completions: Mutex::new(Vec::new()),
            wake: WakeFd::new()?,
        });
        epoll.add(listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)?;
        epoll.add(shared.wake.raw_fd(), EPOLLIN, TOKEN_WAKE)?;

        let stats = config
            .stats
            .clone()
            .unwrap_or_else(|| Arc::new(EdgeStats::default()));
        let observer = config.observer.clone();

        let pool = {
            let service = Arc::clone(&service);
            let shared = Arc::clone(&shared);
            let stats = Arc::clone(&stats);
            let observer = observer.clone();
            WorkerPool::new(config.workers, config.queue_depth, move |job: Job| {
                record_phase(
                    &observer,
                    Phase::QueueWait,
                    PathClass::Miss,
                    ms_since(job.enqueued_at),
                );
                let mut response = service.handle(&job.request);
                if job.close {
                    response.headers.set("Connection", "close");
                }
                let completion = Completion {
                    slot: job.slot,
                    generation: job.generation,
                    seq: job.seq,
                    bytes: response.to_bytes(),
                    close: job.close,
                    pushed_at: Instant::now(),
                };
                let _ = &stats;
                shared
                    .completions
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(completion);
                shared.wake.wake();
            })
        };

        let threads = 1 + config.workers;
        let reactor = Reactor {
            epoll,
            listener: Some(listener),
            conns: Vec::new(),
            generations: Vec::new(),
            free: Vec::new(),
            freed_batch: Vec::new(),
            open: 0,
            pool,
            service,
            shared: Arc::clone(&shared),
            observer,
            stats: Arc::clone(&stats),
            config,
            drain_started: None,
        };
        let thread = std::thread::Builder::new()
            .name("edge-reactor".into())
            .spawn(move || reactor.run())
            .expect("spawn edge reactor");

        Ok(EdgeServer {
            addr: local,
            shared,
            stats,
            reactor: Some(thread),
            threads,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the edge counters.
    pub fn stats(&self) -> EdgeSnapshot {
        self.stats.snapshot()
    }

    /// Total server threads (reactor + workers) — fixed at bind time,
    /// independent of connection count.
    pub fn thread_count(&self) -> usize {
        self.threads
    }

    /// Hard stop: closes every connection, discards queued requests.
    pub fn shutdown(mut self) {
        self.stop(STOPPING);
    }

    /// Graceful stop: stops accepting, lets in-flight requests finish
    /// (bounded by `drain`), sheds new requests with `503`, then joins
    /// every thread.
    pub fn shutdown_graceful(mut self, drain: Duration) {
        self.shared
            .drain_ms
            .store(drain.as_millis() as u64, Ordering::SeqCst);
        self.stop(DRAINING);
    }

    fn stop(&mut self, state: u8) {
        // Never downgrade STOPPING to DRAINING (Drop after shutdown).
        let _ = self.shared.state.fetch_max(state, Ordering::SeqCst);
        self.shared.wake.wake();
        if let Some(thread) = self.reactor.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for EdgeServer {
    fn drop(&mut self) {
        self.stop(STOPPING);
    }
}

struct Reactor {
    epoll: Epoll,
    listener: Option<TcpListener>,
    conns: Vec<Option<Conn>>,
    generations: Vec<u64>,
    free: Vec<usize>,
    /// Slots freed during the current readiness batch; returned to the
    /// free list only after the batch, so a stale event cannot hit a
    /// just-reused slot.
    freed_batch: Vec<usize>,
    open: usize,
    pool: WorkerPool,
    service: Arc<dyn EdgeService>,
    shared: Arc<Shared>,
    observer: Option<Arc<Observer>>,
    stats: Arc<EdgeStats>,
    config: EdgeConfig,
    drain_started: Option<Instant>,
}

impl Reactor {
    fn run(mut self) {
        let mut events = [EpollEvent {
            events: 0,
            token: 0,
        }; MAX_EVENTS];
        loop {
            let state = self.shared.state.load(Ordering::SeqCst);
            if state == STOPPING {
                break;
            }
            if state == DRAINING {
                if self.drain_started.is_none() {
                    self.begin_drain();
                }
                let deadline = self.drain_started.expect("drain started")
                    + Duration::from_millis(self.shared.drain_ms.load(Ordering::SeqCst));
                if self.open == 0 || Instant::now() >= deadline {
                    break;
                }
            }
            let n = match self.epoll.wait(&mut events, 50) {
                Ok(n) => n,
                Err(_) => break,
            };
            for event in &events[..n] {
                let (token, bits) = (event.token, event.events);
                match token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKE => self.shared.wake.drain(),
                    slot => self.conn_ready(slot as usize, bits),
                }
            }
            self.drain_completions();
            self.enforce_deadlines();
            self.free.append(&mut self.freed_batch);
        }
        self.teardown();
    }

    fn begin_drain(&mut self) {
        self.drain_started = Some(Instant::now());
        if let Some(listener) = self.listener.take() {
            let _ = self.epoll.delete(listener.as_raw_fd());
        }
    }

    fn teardown(mut self) {
        let hard = self.shared.state.load(Ordering::SeqCst) == STOPPING;
        for slot in 0..self.conns.len() {
            if self.conns[slot].is_some() {
                self.close_conn(slot);
            }
        }
        self.pool.stop(hard);
    }

    fn record_phase(&self, phase: Phase, class: PathClass, ms: f64) {
        record_phase(&self.observer, phase, class, ms);
    }

    // ---- accept path ---------------------------------------------------

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let accept_start = Instant::now();
                    if self.open >= self.config.max_connections {
                        EdgeStats::bump(&self.stats.conns_rejected);
                        reject_over_cap(stream);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let fd = stream.as_raw_fd();
                    let slot = self.alloc_slot();
                    let conn = Conn::new(stream, self.generations[slot]);
                    self.conns[slot] = Some(conn);
                    if self
                        .epoll
                        .add(fd, EPOLLIN | EPOLLRDHUP, slot as u64)
                        .is_err()
                    {
                        self.conns[slot] = None;
                        self.freed_batch.push(slot);
                        continue;
                    }
                    self.open += 1;
                    EdgeStats::bump(&self.stats.conns_accepted);
                    self.stats.conns_open.store(self.open, Ordering::Relaxed);
                    self.record_phase(Phase::Accept, PathClass::Background, ms_since(accept_start));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn alloc_slot(&mut self) -> usize {
        let slot = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.generations.push(0);
            self.conns.len() - 1
        });
        self.generations[slot] += 1;
        slot
    }

    fn close_conn(&mut self, slot: usize) {
        if let Some(conn) = self.conns[slot].take() {
            let _ = self.epoll.delete(conn.stream.as_raw_fd());
            drop(conn);
            self.open -= 1;
            self.stats.conns_open.store(self.open, Ordering::Relaxed);
            self.freed_batch.push(slot);
        }
    }

    // ---- readiness dispatch --------------------------------------------

    fn conn_ready(&mut self, slot: usize, bits: u32) {
        if slot >= self.conns.len() || self.conns[slot].is_none() {
            return; // stale event for a closed connection
        }
        if bits & (EPOLLERR | EPOLLHUP) != 0 {
            self.close_conn(slot);
            return;
        }
        if bits & EPOLLOUT != 0 && !self.flush_write(slot) {
            return;
        }
        if bits & (EPOLLIN | EPOLLRDHUP) != 0 {
            self.readable(slot);
        }
    }

    fn readable(&mut self, slot: usize) {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            let Some(conn) = self.conns[slot].as_mut() else {
                return;
            };
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    self.close_conn(slot);
                    return;
                }
                Ok(n) => {
                    if conn.head_started.is_none() {
                        conn.head_started = Some(Instant::now());
                    }
                    conn.read_buf.extend_from_slice(&chunk[..n]);
                    conn.last_activity = Instant::now();
                    if n < chunk.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(slot);
                    return;
                }
            }
        }
        self.parse_ready(slot);
    }

    fn parse_ready(&mut self, slot: usize) {
        loop {
            let Some(conn) = self.conns[slot].as_mut() else {
                return;
            };
            if conn.closing || conn.read_buf.is_empty() {
                return;
            }
            // Pipelining bound: pause parsing (bytes keep accumulating)
            // until earlier requests finish.
            if conn.inflight + conn.ready.len() >= self.config.max_pipeline {
                return;
            }
            match try_parse(&conn.read_buf) {
                ParseOutcome::NeedMore => return,
                ParseOutcome::Error(e) => {
                    EdgeStats::bump(&self.stats.bad_requests);
                    conn.closing = true;
                    conn.read_buf.clear();
                    conn.head_started = None;
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    let response = Response::error(Status::BAD_REQUEST, &e.to_string());
                    self.queue_response(slot, seq, finalize(response, true), true);
                    return;
                }
                ParseOutcome::Request { request, consumed } => {
                    conn.read_buf.drain(..consumed);
                    conn.last_activity = Instant::now();
                    let head_started = conn.head_started.take();
                    conn.head_started = if conn.read_buf.is_empty() {
                        None
                    } else {
                        Some(Instant::now())
                    };
                    if let Some(t0) = head_started {
                        self.record_phase(Phase::Parse, PathClass::Background, ms_since(t0));
                    }
                    let conn = self.conns[slot].as_mut().expect("conn checked above");
                    EdgeStats::bump(&self.stats.requests);
                    if conn.inflight + conn.ready.len() > 0 {
                        EdgeStats::bump(&self.stats.pipelined);
                    }
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    let close = request
                        .headers
                        .get("connection")
                        .is_some_and(|v| v.eq_ignore_ascii_case("close"));
                    self.dispatch(slot, seq, request, close);
                }
            }
        }
    }

    // ---- request dispatch ----------------------------------------------

    fn dispatch(&mut self, slot: usize, seq: u64, request: Box<Request>, close: bool) {
        // Draining: in-flight requests finish, new ones are shed.
        if self.shared.state.load(Ordering::SeqCst) == DRAINING {
            EdgeStats::bump(&self.stats.shed_draining);
            if let Some(conn) = self.conns[slot].as_mut() {
                conn.closing = true;
            }
            self.queue_response(
                slot,
                seq,
                finalize(shed_response(1, "server is draining"), true),
                true,
            );
            return;
        }

        // Fast path: fresh cache hits never leave the reactor.
        if let Some(response) = self.service.try_fast(&request) {
            EdgeStats::bump(&self.stats.fast_path);
            self.queue_response(slot, seq, finalize(response, close), close);
            return;
        }

        // Admission control in front of the pool.
        let queued = self.pool.queued();
        let capacity = self.pool.capacity();
        if queued >= capacity {
            EdgeStats::bump(&self.stats.shed_queue_full);
            self.queue_response(
                slot,
                seq,
                finalize(shed_response(1, "request queue full"), close),
                close,
            );
            return;
        }
        // An open breaker sheds only once the queue is at half
        // pressure: while capacity remains, misses still reach the
        // runtime, which can serve degraded/stale answers.
        if queued * 2 >= capacity {
            if let Some(secs) = self.service.shed_hint() {
                EdgeStats::bump(&self.stats.shed_breaker);
                self.queue_response(
                    slot,
                    seq,
                    finalize(shed_response(secs, "origin unavailable"), close),
                    close,
                );
                return;
            }
        }

        let job = Job {
            slot,
            generation: self.generations[slot],
            seq,
            close,
            request,
            enqueued_at: Instant::now(),
        };
        match self.pool.try_submit(job) {
            Ok(()) => {
                EdgeStats::bump(&self.stats.offloaded);
                if let Some(conn) = self.conns[slot].as_mut() {
                    conn.inflight += 1;
                }
            }
            Err(_) => {
                EdgeStats::bump(&self.stats.shed_queue_full);
                self.queue_response(
                    slot,
                    seq,
                    finalize(shed_response(1, "request queue full"), close),
                    close,
                );
            }
        }
    }

    // ---- response path -------------------------------------------------

    fn drain_completions(&mut self) {
        let completions = std::mem::take(
            &mut *self
                .shared
                .completions
                .lock()
                .unwrap_or_else(|e| e.into_inner()),
        );
        for c in completions {
            let alive = c.slot < self.conns.len()
                && self.conns[c.slot]
                    .as_ref()
                    .is_some_and(|conn| conn.generation == c.generation);
            if !alive {
                continue; // the connection died while the worker ran
            }
            self.record_phase(Phase::Handoff, PathClass::Miss, ms_since(c.pushed_at));
            let conn = self.conns[c.slot].as_mut().expect("alive checked");
            conn.inflight -= 1;
            self.queue_response(c.slot, c.seq, c.bytes, c.close);
            // A completed request may have unblocked the pipeline bound.
            self.parse_ready(c.slot);
        }
    }

    /// Parks `bytes` for in-order flushing and attempts the write.
    fn queue_response(&mut self, slot: usize, seq: u64, bytes: Vec<u8>, close: bool) {
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        conn.ready.insert(seq, (bytes, close));
        while let Some((bytes, close)) = conn.ready.remove(&conn.next_write_seq) {
            conn.write_buf.extend_from_slice(&bytes);
            conn.next_write_seq += 1;
            if close {
                conn.closing = true;
                break;
            }
        }
        self.flush_write(slot);
    }

    /// Writes as much buffered output as the socket accepts; manages
    /// `EPOLLOUT` interest and deferred closes. Returns `false` when
    /// the connection was closed.
    fn flush_write(&mut self, slot: usize) -> bool {
        let Some(conn) = self.conns[slot].as_mut() else {
            return false;
        };
        while conn.write_pos < conn.write_buf.len() {
            match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
                Ok(0) => {
                    self.close_conn(slot);
                    return false;
                }
                Ok(n) => {
                    conn.write_pos += n;
                    conn.last_activity = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(slot);
                    return false;
                }
            }
        }
        let flushed = conn.write_pos >= conn.write_buf.len();
        if flushed {
            conn.write_buf.clear();
            conn.write_pos = 0;
            let fd = conn.stream.as_raw_fd();
            if conn.want_write {
                conn.want_write = false;
                let _ = self.epoll.modify(fd, EPOLLIN | EPOLLRDHUP, slot as u64);
            }
            let conn = self.conns[slot].as_ref().expect("conn present");
            if conn.closing && conn.inflight == 0 && conn.ready.is_empty() {
                self.close_conn(slot);
                return false;
            }
        } else if !conn.want_write {
            conn.want_write = true;
            let fd = conn.stream.as_raw_fd();
            let _ = self
                .epoll
                .modify(fd, EPOLLIN | EPOLLOUT | EPOLLRDHUP, slot as u64);
        }
        true
    }

    // ---- deadlines -----------------------------------------------------

    fn enforce_deadlines(&mut self) {
        let now = Instant::now();
        let draining = self.shared.state.load(Ordering::SeqCst) == DRAINING;
        for slot in 0..self.conns.len() {
            let Some(conn) = self.conns[slot].as_mut() else {
                continue;
            };
            // Slowloris: a request head begun but not completed within
            // the deadline gets 408 and the connection closes.
            let dribbling = conn
                .head_started
                .is_some_and(|t0| now.duration_since(t0) >= self.config.read_deadline);
            if dribbling && !conn.closing {
                EdgeStats::bump(&self.stats.read_timeouts);
                conn.closing = true;
                conn.read_buf.clear();
                conn.head_started = None;
                let seq = conn.next_seq;
                conn.next_seq += 1;
                let response =
                    Response::error(Status::REQUEST_TIMEOUT, "request header read timed out");
                self.queue_response(slot, seq, finalize(response, true), true);
                continue;
            }
            let idle_for = now.duration_since(conn.last_activity);
            if conn.is_idle()
                && conn.read_buf.is_empty()
                && (idle_for >= self.config.idle_timeout || draining)
            {
                self.close_conn(slot);
            }
        }
    }
}

fn record_phase(observer: &Option<Arc<Observer>>, phase: Phase, class: PathClass, ms: f64) {
    if let Some(obs) = observer {
        obs.record_phase(phase, class, ms);
    }
}

fn ms_since(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1000.0
}

/// Serializes a response, adding `Connection: close` when the
/// connection will close behind it.
fn finalize(mut response: Response, close: bool) -> Vec<u8> {
    if close {
        response.headers.set("Connection", "close");
    }
    response.to_bytes()
}

/// The admission-control refusal: `503` with an honest retry hint.
fn shed_response(retry_after_secs: u64, reason: &str) -> Response {
    let mut response = Response::error(Status::SERVICE_UNAVAILABLE, reason);
    response
        .headers
        .set("Retry-After", retry_after_secs.max(1).to_string());
    response
}

/// Refuses a connection over the cap: best-effort `503` on the still-
/// blocking fresh socket, then close.
fn reject_over_cap(stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
    let mut stream = stream;
    let mut response = shed_response(1, "connection limit reached");
    response.headers.set("Connection", "close");
    let _ = stream.write_all(&response.to_bytes());
}
