//! What the edge serves: the [`EdgeService`] contract between the
//! reactor and application logic, plus [`ProxyEdgeService`] — the
//! function proxy's HTTP face wired for the reactor/worker split.

use crate::stats::EdgeStats;
use fp_httpd::{Request, Response, Router, Status};
use funcproxy::runtime::XmlResponse;
use funcproxy::{ProxyError, ProxyHandle};
use std::sync::Arc;

/// Application logic behind an [`crate::EdgeServer`].
///
/// The reactor calls [`EdgeService::try_fast`] inline on the event
/// loop; anything it declines is offloaded to a worker, which calls
/// [`EdgeService::handle`]. The contract: `try_fast` must never block —
/// no origin fetches, no flight waits, no file I/O — while `handle` may
/// block as long as it likes.
pub trait EdgeService: Send + Sync + 'static {
    /// Serves a request, blocking as needed. Runs on a worker thread.
    fn handle(&self, request: &Request) -> Response;

    /// Attempts to serve without blocking. Runs on the reactor thread;
    /// `None` offloads the request to [`EdgeService::handle`].
    fn try_fast(&self, _request: &Request) -> Option<Response> {
        None
    }

    /// Admission-control probe: `Some(retry_after_secs)` when the
    /// backend is saturated and new offloads should be shed. Runs on
    /// the reactor thread per offload — must be cheap.
    fn shed_hint(&self) -> Option<u64> {
        None
    }
}

/// A plain [`Router`] serves everything on the workers — the drop-in
/// way to put an existing blocking app behind the reactor.
impl EdgeService for Router {
    fn handle(&self, request: &Request) -> Response {
        Router::handle(self, request)
    }
}

/// The function proxy behind the nonblocking edge: the same four routes
/// as the classic threaded deployment (`/search/radial`, `/sql`,
/// `/metrics`, `/debug/trace`), with fresh cache hits served straight
/// off the reactor via [`ProxyHandle::try_form_xml_cached`] and misses
/// offloaded to the worker pool. The origin circuit breaker doubles as
/// the load-shedding signal.
pub struct ProxyEdgeService {
    handle: ProxyHandle,
    edge_stats: Arc<EdgeStats>,
}

impl ProxyEdgeService {
    /// Wraps a shared proxy handle.
    pub fn new(handle: ProxyHandle) -> Self {
        ProxyEdgeService {
            handle,
            edge_stats: Arc::new(EdgeStats::default()),
        }
    }

    /// The wrapped handle (the example prints stats from it).
    pub fn proxy(&self) -> &ProxyHandle {
        &self.handle
    }

    /// The edge counter block this service appends to `/metrics`. Hand
    /// it to [`crate::EdgeConfig::with_stats`] so the reactor and the
    /// metrics endpoint count on the same instance.
    pub fn edge_stats(&self) -> Arc<EdgeStats> {
        Arc::clone(&self.edge_stats)
    }

    /// The Radial search form's response headers, identical on the fast
    /// and offloaded paths: cache outcome, coalescing and degradation
    /// flags, and the RFC 9111 staleness warning.
    fn radial_response(r: XmlResponse) -> Response {
        let mut resp = Response::ok("text/xml", r.body);
        resp.headers
            .set("X-Cache-Outcome", r.metrics.outcome.label());
        resp.headers
            .set("X-Sim-Response-Ms", format!("{:.0}", r.metrics.response_ms));
        resp.headers
            .set("X-Coalesced", r.metrics.coalesced.to_string());
        resp.headers
            .set("X-Degraded", r.metrics.degraded.to_string());
        resp.headers.set("X-Stale", r.metrics.stale.to_string());
        if r.metrics.stale || r.metrics.degraded {
            // RFC 9111 §5.5: 110 = "Response is Stale".
            resp.headers
                .set("Warning", "110 funcproxy \"Response is stale\"");
        }
        resp
    }

    /// A proxy error as the HTTP status the client should see: a
    /// transient origin failure is `503` with a `Retry-After` hint, a
    /// permanent rejection is `502`, anything else is the client's
    /// fault (`400`).
    fn error_response(&self, error: &ProxyError) -> Response {
        match error {
            ProxyError::Origin(e) if e.is_transient() => {
                let mut resp = Response::error(Status::SERVICE_UNAVAILABLE, &error.to_string());
                if let Some(secs) = self.handle.retry_after_secs(error) {
                    resp.headers.set("Retry-After", secs.to_string());
                }
                resp
            }
            ProxyError::Origin(_) => Response::error(Status::BAD_GATEWAY, &error.to_string()),
            _ => Response::error(Status::BAD_REQUEST, &error.to_string()),
        }
    }

    fn sql_command(request: &Request) -> Option<String> {
        request
            .query_params()
            .into_iter()
            .find(|(k, _)| k == "cmd")
            .map(|(_, v)| v)
    }
}

impl EdgeService for ProxyEdgeService {
    fn handle(&self, request: &Request) -> Response {
        match request.path.as_str() {
            "/metrics" => {
                let mut text = self.handle.metrics_text();
                text.push_str(&self.edge_stats.snapshot().render_prometheus());
                Response::ok("text/plain; version=0.0.4; charset=utf-8", text)
            }
            "/debug/trace" => {
                let jsonl = request
                    .query_params()
                    .iter()
                    .any(|(k, v)| k == "format" && v == "jsonl");
                if jsonl {
                    Response::ok("application/x-ndjson", self.handle.trace_jsonl())
                } else {
                    Response::ok("application/json", self.handle.trace_chrome_json())
                }
            }
            "/search/radial" => {
                let fields = request.query_params();
                match self.handle.handle_form_xml("/search/radial", &fields) {
                    Ok(r) => Self::radial_response(r),
                    Err(e) => self.error_response(&e),
                }
            }
            "/sql" => {
                let Some(sql) = Self::sql_command(request) else {
                    return Response::error(Status::BAD_REQUEST, "missing cmd parameter");
                };
                match self.handle.handle_sql_xml(&sql) {
                    Ok(r) => Response::ok("text/xml", r.body),
                    Err(e) => self.error_response(&e),
                }
            }
            _ => Response::error(Status::NOT_FOUND, "no such route"),
        }
    }

    fn try_fast(&self, request: &Request) -> Option<Response> {
        match request.path.as_str() {
            "/search/radial" => {
                let fields = request.query_params();
                self.handle
                    .try_form_xml_cached("/search/radial", &fields)
                    .map(Self::radial_response)
            }
            "/sql" => {
                let sql = Self::sql_command(request)?;
                self.handle
                    .try_sql_xml_cached(&sql)
                    .map(|r| Response::ok("text/xml", r.body))
            }
            // /metrics and /debug/trace render whole documents; keep
            // that allocation churn off the reactor.
            _ => None,
        }
    }

    fn shed_hint(&self) -> Option<u64> {
        self.handle.breaker_shed_hint()
    }
}
