//! Thin, hand-declared bindings to the three kernel facilities the
//! reactor needs: `epoll` (readiness), `eventfd` (cross-thread wakeup),
//! and `signal` (SIGINT/SIGTERM → flag). The build environment has no
//! crates.io access, so there is no `libc` crate to lean on; std links
//! the platform libc anyway, and these few prototypes are stable ABI.
//!
//! This module is the only place in the crate allowed to use `unsafe`,
//! and every wrapper it exports is safe: file descriptors are owned
//! (`OwnedFd` closes on drop), buffers are sized by the callee, and the
//! signal handler only stores to a process-static atomic flag (the one
//! thing an async-signal-safe handler may do).

use std::fs::File;
use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::sync::atomic::{AtomicBool, Ordering};

// Readiness event bits (uapi/linux/eventpoll.h).
/// The fd is readable.
pub const EPOLLIN: u32 = 0x001;
/// The fd is writable.
pub const EPOLLOUT: u32 = 0x004;
/// An error condition happened on the fd.
pub const EPOLLERR: u32 = 0x008;
/// Hang-up: the peer closed the connection.
pub const EPOLLHUP: u32 = 0x010;
/// The peer shut down its writing half (half-close detection).
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0o2000000;

const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

/// `struct epoll_event`. Packed on x86 so the layout matches the
/// kernel's (which packs there to keep 32/64-bit compat); other
/// architectures use natural alignment, same as the kernel headers.
#[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(C, packed))]
#[cfg_attr(not(any(target_arch = "x86", target_arch = "x86_64")), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Readiness bits ([`EPOLLIN`] and friends).
    pub events: u32,
    /// Caller-chosen token identifying the registered fd.
    pub token: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn signal(signum: i32, handler: usize) -> usize;
}

/// An owned epoll instance.
pub struct Epoll {
    fd: OwnedFd,
}

/// How many readiness events one [`Epoll::wait`] call can return.
pub const MAX_EVENTS: usize = 256;

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: plain syscall wrapper; no pointers involved.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: `fd` is a freshly returned, unowned descriptor.
        Ok(Epoll {
            fd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, token };
        // SAFETY: `ev` outlives the call; the kernel copies it out.
        let rc = unsafe { epoll_ctl(self.fd.as_raw_fd(), op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` for `events`, tagged with `token`.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Changes the registered interest set for `fd`.
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Deregisters `fd`.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        // Pre-2.6.9 kernels required a non-null event for DEL; passing
        // one is harmless everywhere.
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Waits up to `timeout_ms` (−1 = forever) and fills `events`.
    /// Returns how many entries are valid. A signal interruption
    /// (`EINTR`) reads as zero events, so callers re-check their flags
    /// instead of dying.
    pub fn wait(
        &self,
        events: &mut [EpollEvent; MAX_EVENTS],
        timeout_ms: i32,
    ) -> io::Result<usize> {
        // SAFETY: the buffer is valid for MAX_EVENTS entries and the
        // kernel writes at most `maxevents` of them.
        let n = unsafe {
            epoll_wait(
                self.fd.as_raw_fd(),
                events.as_mut_ptr(),
                MAX_EVENTS as i32,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(n as usize)
    }
}

/// A nonblocking eventfd used to kick the reactor out of `epoll_wait`
/// from another thread (workers pushing completions, shutdown).
pub struct WakeFd {
    file: File,
}

impl WakeFd {
    /// Creates the eventfd (nonblocking, close-on-exec).
    pub fn new() -> io::Result<WakeFd> {
        // SAFETY: plain syscall wrapper; no pointers involved.
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: `fd` is a freshly returned, unowned descriptor.
        Ok(WakeFd {
            file: unsafe { File::from_raw_fd(fd) },
        })
    }

    /// The fd to register with epoll for [`EPOLLIN`].
    pub fn raw_fd(&self) -> RawFd {
        self.file.as_raw_fd()
    }

    /// Signals the reactor (adds 1 to the counter). Safe from any
    /// thread; a full counter (`WouldBlock`) still leaves it signaled.
    pub fn wake(&self) {
        let one = 1u64.to_ne_bytes();
        let _ = (&self.file).write_all(&one);
    }

    /// Drains the counter after a readiness event so level-triggered
    /// epoll stops reporting it.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        // Nonblocking: one read empties an eventfd counter entirely.
        let _ = (&self.file).read(&mut buf);
    }
}

static INTERRUPTED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_interrupt(_signum: i32) {
    // Only async-signal-safe operation here: a relaxed atomic store.
    INTERRUPTED.store(true, Ordering::Relaxed);
}

/// Installs SIGINT/SIGTERM handlers that set a flag instead of killing
/// the process, and returns that flag. Idempotent; safe to call more
/// than once.
pub fn install_interrupt_flag() -> &'static AtomicBool {
    // SAFETY: `signal` with a function pointer of the correct C ABI
    // signature; the handler body is async-signal-safe.
    unsafe {
        signal(SIGINT, on_interrupt as extern "C" fn(i32) as usize);
        signal(SIGTERM, on_interrupt as extern "C" fn(i32) as usize);
    }
    &INTERRUPTED
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn epoll_reports_listener_readiness() {
        let epoll = Epoll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        epoll.add(listener.as_raw_fd(), EPOLLIN, 42).unwrap();

        let mut events = [EpollEvent {
            events: 0,
            token: 0,
        }; MAX_EVENTS];
        // Nothing pending yet.
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);

        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let n = epoll.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let token = events[0].token;
        assert_eq!(token, 42);
        let bits = events[0].events;
        assert_ne!(bits & EPOLLIN, 0);
        epoll.delete(listener.as_raw_fd()).unwrap();
    }

    #[test]
    fn wakefd_crosses_threads_and_drains() {
        let epoll = Epoll::new().unwrap();
        let wake = std::sync::Arc::new(WakeFd::new().unwrap());
        epoll.add(wake.raw_fd(), EPOLLIN, 7).unwrap();

        let mut events = [EpollEvent {
            events: 0,
            token: 0,
        }; MAX_EVENTS];
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);

        let w2 = std::sync::Arc::clone(&wake);
        std::thread::spawn(move || w2.wake()).join().unwrap();
        assert_eq!(epoll.wait(&mut events, 1000).unwrap(), 1);
        let token = events[0].token;
        assert_eq!(token, 7);

        wake.drain();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
    }
}
