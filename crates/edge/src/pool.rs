//! The fixed worker pool behind the reactor: a bounded pending-request
//! queue drained by `N` threads.
//!
//! The bound *is* the admission-control backstop — when the queue is
//! full, [`WorkerPool::try_submit`] refuses immediately and the reactor
//! sheds the request with `503` instead of queueing unboundedly (the
//! thread-per-connection failure mode this crate exists to remove).

use fp_httpd::Request;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// One offloaded request, addressed back to its connection.
pub struct Job {
    /// Connection slot in the reactor's table.
    pub slot: usize,
    /// The slot's generation when the job was created; a completion for
    /// a stale generation is dropped (the connection died meanwhile).
    pub generation: u64,
    /// Per-connection sequence number, for pipelined response ordering.
    pub seq: u64,
    /// Whether the response must close the connection.
    pub close: bool,
    /// The parsed request.
    pub request: Box<Request>,
    /// When the reactor enqueued it (queue-wait phase measurement).
    pub enqueued_at: Instant,
}

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    stop: AtomicBool,
    capacity: usize,
}

/// A fixed set of worker threads over one bounded queue.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads running `run` over submitted jobs. A
    /// zero-worker pool is legal (fast-path-only servers): submissions
    /// queue until the bound, then shed.
    pub fn new<F>(workers: usize, capacity: usize, run: F) -> WorkerPool
    where
        F: Fn(Job) + Send + Sync + 'static,
    {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            stop: AtomicBool::new(false),
            capacity: capacity.max(1),
        });
        let run = Arc::new(run);
        let threads = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let run = Arc::clone(&run);
                std::thread::Builder::new()
                    .name(format!("edge-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &*run))
                    .expect("spawn edge worker")
            })
            .collect();
        WorkerPool {
            shared,
            workers: threads,
        }
    }

    /// Enqueues a job, or hands it back when the queue is at capacity
    /// (the caller sheds the request).
    pub fn try_submit(&self, job: Job) -> Result<(), Job> {
        {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if queue.len() >= self.shared.capacity {
                return Err(job);
            }
            queue.push_back(job);
        }
        self.shared.available.notify_one();
        Ok(())
    }

    /// Jobs currently waiting for a worker.
    pub fn queued(&self) -> usize {
        self.shared
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// The queue bound.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Stops the pool and joins every worker. With `discard_queued`,
    /// jobs still waiting are dropped (hard shutdown); otherwise the
    /// workers finish the backlog first (graceful drain).
    pub fn stop(mut self, discard_queued: bool) {
        if discard_queued {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clear();
        }
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &Shared, run: &(dyn Fn(Job) + Send + Sync)) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        run(job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_httpd::Request;
    use std::sync::atomic::AtomicUsize;

    fn job(seq: u64) -> Job {
        Job {
            slot: 0,
            generation: 0,
            seq,
            close: false,
            request: Box::new(Request::get("/x")),
            enqueued_at: Instant::now(),
        }
    }

    #[test]
    fn runs_submitted_jobs_and_bounds_the_queue() {
        let ran = Arc::new(AtomicUsize::new(0));
        let ran2 = Arc::clone(&ran);
        let pool = WorkerPool::new(2, 64, move |_job| {
            ran2.fetch_add(1, Ordering::SeqCst);
        });
        for seq in 0..10 {
            pool.try_submit(job(seq)).map_err(|_| ()).unwrap();
        }
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        while ran.load(Ordering::SeqCst) < 10 && Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(ran.load(Ordering::SeqCst), 10);
        pool.stop(false);
    }

    #[test]
    fn zero_workers_queue_fills_then_refuses() {
        let pool = WorkerPool::new(0, 3, |_job| {});
        assert!(pool.try_submit(job(0)).is_ok());
        assert!(pool.try_submit(job(1)).is_ok());
        assert!(pool.try_submit(job(2)).is_ok());
        let refused = pool.try_submit(job(3));
        assert!(refused.is_err(), "fourth job must be refused");
        assert_eq!(pool.queued(), 3);
        pool.stop(true);
    }

    #[test]
    fn graceful_stop_finishes_the_backlog() {
        let ran = Arc::new(AtomicUsize::new(0));
        let ran2 = Arc::clone(&ran);
        let pool = WorkerPool::new(1, 64, move |_job| {
            std::thread::sleep(std::time::Duration::from_millis(10));
            ran2.fetch_add(1, Ordering::SeqCst);
        });
        for seq in 0..5 {
            pool.try_submit(job(seq)).map_err(|_| ()).unwrap();
        }
        pool.stop(false);
        assert_eq!(ran.load(Ordering::SeqCst), 5, "drain runs every queued job");
    }
}
