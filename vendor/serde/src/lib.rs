//! Offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The build environment has no crates.io access, so this crate
//! implements the subset the workspace uses: `#[derive(Serialize,
//! Deserialize)]` on plain structs and externally-tagged enums (no
//! `#[serde(...)]` attributes), consumed by the vendored `serde_json`.
//!
//! Instead of upstream's visitor architecture, values serialize into a
//! self-describing [`Content`] tree that data formats then walk. The
//! representation matches upstream's JSON encoding: structs and struct
//! variants as objects, unit enum variants as strings, newtype/tuple
//! variants as single-entry objects, `Option` as the value or null.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A serialized value: the intermediate tree between [`Serialize`]
/// implementations and data formats such as `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// `null` / `None` / unit.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence (`Vec`, arrays, tuples, tuple variants).
    Seq(Vec<Content>),
    /// A map with ordered string keys (structs, struct variants, maps).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Borrows the entries of a map, or reports what was found instead.
    pub fn as_map(&self, expecting: &str) -> Result<&[(String, Content)], DeError> {
        match self {
            Content::Map(entries) => Ok(entries),
            other => Err(DeError::unexpected(expecting, other)),
        }
    }

    /// Borrows the elements of a sequence, or reports what was found.
    pub fn as_seq(&self, expecting: &str) -> Result<&[Content], DeError> {
        match self {
            Content::Seq(items) => Ok(items),
            other => Err(DeError::unexpected(expecting, other)),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "a boolean",
            Content::I64(_) | Content::U64(_) => "an integer",
            Content::F64(_) => "a number",
            Content::Str(_) => "a string",
            Content::Seq(_) => "a sequence",
            Content::Map(_) => "a map",
        }
    }
}

/// An error produced while reconstructing a value from [`Content`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// An error with a caller-provided message.
    pub fn custom(message: impl fmt::Display) -> Self {
        DeError(message.to_string())
    }

    /// "expected X, found Y".
    pub fn unexpected(expecting: &str, found: &Content) -> Self {
        DeError(format!("expected {expecting}, found {}", found.kind()))
    }

    /// A required field was absent.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        DeError(format!("missing field `{field}` of {ty}"))
    }

    /// An enum tag matched no variant.
    pub fn unknown_variant(ty: &str, tag: &str) -> Self {
        DeError(format!("unknown variant `{tag}` of {ty}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// A value that can serialize itself into a [`Content`] tree.
pub trait Serialize {
    /// Builds the serialized form of `self`.
    fn serialize(&self) -> Content;
}

/// A value that can reconstruct itself from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs a value, or explains why the content cannot be one.
    fn deserialize(content: &Content) -> Result<Self, DeError>;

    /// Called when a struct field of this type is absent from the map.
    /// `Option` treats absence as `None`; everything else errors.
    fn missing_field(ty: &str, field: &str) -> Result<Self, DeError> {
        Err(DeError::missing_field(ty, field))
    }
}

/// Looks up a struct field by name (derive-generated code calls this).
pub fn get_field<T: Deserialize>(
    entries: &[(String, Content)],
    ty: &str,
    field: &str,
) -> Result<T, DeError> {
    match entries.iter().find(|(k, _)| k == field) {
        Some((_, v)) => T::deserialize(v),
        None => T::missing_field(ty, field),
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::unexpected("a boolean", other)),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                Content::I64(i64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn deserialize(content: &Content) -> Result<Self, DeError> {
                let wide = match content {
                    Content::I64(v) => *v,
                    Content::U64(v) => i64::try_from(*v)
                        .map_err(|_| DeError::custom("integer out of range"))?,
                    other => return Err(DeError::unexpected("an integer", other)),
                };
                <$t>::try_from(wide).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(content: &Content) -> Result<Self, DeError> {
                let wide = match content {
                    Content::U64(v) => *v,
                    Content::I64(v) => u64::try_from(*v)
                        .map_err(|_| DeError::custom("integer out of range"))?,
                    other => return Err(DeError::unexpected("an integer", other)),
                };
                <$t>::try_from(wide).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for isize {
    fn serialize(&self) -> Content {
        Content::I64(*self as i64)
    }
}

impl Deserialize for isize {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        i64::deserialize(content)
            .and_then(|v| isize::try_from(v).map_err(|_| DeError::custom("integer out of range")))
    }
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                Content::F64(f64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn deserialize(content: &Content) -> Result<Self, DeError> {
                match content {
                    Content::F64(v) => Ok(*v as $t),
                    Content::I64(v) => Ok(*v as $t),
                    Content::U64(v) => Ok(*v as $t),
                    other => Err(DeError::unexpected("a number", other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for char {
    fn serialize(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(DeError::unexpected("a single-character string", other)),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for String {
    fn serialize(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::unexpected("a string", other)),
        }
    }
}

impl Serialize for () {
    fn serialize(&self) -> Content {
        Content::Null
    }
}

impl Deserialize for () {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(()),
            other => Err(DeError::unexpected("null", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Content {
        match self {
            Some(v) => v.serialize(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }

    fn missing_field(_ty: &str, _field: &str) -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        T::deserialize(content).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        content
            .as_seq("a sequence")?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        let items = content.as_seq("a sequence")?;
        if items.len() != N {
            return Err(DeError::custom(format!(
                "expected an array of length {N}, found {}",
                items.len()
            )));
        }
        let values: Vec<T> = items.iter().map(T::deserialize).collect::<Result<_, _>>()?;
        values
            .try_into()
            .map_err(|_| DeError::custom("array length changed during collection"))
    }
}

macro_rules! impl_tuple {
    ($($len:literal => ($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Content {
                Content::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(content: &Content) -> Result<Self, DeError> {
                let items = content.as_seq("a tuple")?;
                if items.len() != $len {
                    return Err(DeError::custom(format!(
                        "expected a tuple of length {}, found {}",
                        $len,
                        items.len()
                    )));
                }
                Ok(($($name::deserialize(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    1 => (A.0)
    2 => (A.0, B.1)
    3 => (A.0, B.1, C.2)
    4 => (A.0, B.1, C.2, D.3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        content
            .as_map("a map")?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Content {
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(content: &Content) -> Result<Self, DeError> {
        content
            .as_map("a map")?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::deserialize(&42u64.serialize()), Ok(42));
        assert_eq!(i32::deserialize(&(-7i32).serialize()), Ok(-7));
        assert_eq!(f64::deserialize(&1.5f64.serialize()), Ok(1.5));
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()),
            Ok("hi".to_string())
        );
        assert_eq!(bool::deserialize(&true.serialize()), Ok(true));
    }

    #[test]
    fn option_missing_field_is_none() {
        let got: Option<u32> = get_field(&[], "T", "absent").expect("defaults to None");
        assert_eq!(got, None);
        let err: Result<u32, _> = get_field(&[], "T", "absent");
        assert!(err.is_err());
    }

    #[test]
    fn arrays_check_length() {
        let content = vec![1u64, 2, 3].serialize();
        assert_eq!(<[u64; 3]>::deserialize(&content), Ok([1, 2, 3]));
        assert!(<[u64; 4]>::deserialize(&content).is_err());
    }

    #[test]
    fn numeric_cross_width() {
        // JSON parsing yields U64 for small positive integers; signed
        // targets must still accept them (and vice versa).
        assert_eq!(i64::deserialize(&Content::U64(9)), Ok(9));
        assert_eq!(u64::deserialize(&Content::I64(9)), Ok(9));
        assert!(u64::deserialize(&Content::I64(-9)).is_err());
        assert_eq!(f64::deserialize(&Content::I64(-2)), Ok(-2.0));
    }
}
