//! Offline stand-in for [`parking_lot`](https://crates.io/crates/parking_lot).
//!
//! The build environment has no crates.io access, so this crate provides
//! the API subset the workspace actually uses — `Mutex` and `RwLock`
//! whose guards are acquired without a poison `Result` — implemented over
//! `std::sync`. A poisoned std lock (a panic while holding it) is
//! recovered by taking the inner guard: the protected data may be
//! mid-update, exactly parking_lot's own semantics (no poisoning).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose guards are acquired without a poison
/// `Result`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
