//! Offline stand-in for [`serde_derive`](https://crates.io/crates/serde_derive).
//!
//! Derives the vendored `serde` crate's `Serialize` / `Deserialize`
//! traits for the shapes this workspace actually declares: structs with
//! named fields, tuple structs, and enums with unit, tuple, and struct
//! variants — always in serde's default externally-tagged
//! representation, with no support for `#[serde(...)]` attributes or
//! generic types. The input item is parsed directly from its token
//! stream (no `syn`/`quote`, which are unavailable offline) and the
//! generated impl is emitted as parsed source text.

#![warn(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;
use std::iter::Peekable;

/// Derives `serde::Serialize` (vendored subset; see the crate docs).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives `serde::Deserialize` (vendored subset; see the crate docs).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item)
            .parse()
            .expect("derive emitted syntactically valid Rust"),
        Err(msg) => format!("::std::compile_error!({msg:?});")
            .parse()
            .expect("compile_error! is valid Rust"),
    }
}

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    Struct(Vec<String>),
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut it = input.into_iter().peekable();
    skip_attrs_and_vis(&mut it);
    let keyword = next_ident(&mut it, "`struct` or `enum`")?;
    let name = next_ident(&mut it, "a type name")?;
    if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "cannot derive for generic type `{name}`: the vendored serde_derive supports only non-generic items"
        ));
    }
    let shape = match keyword.as_str() {
        "struct" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Struct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            other => return Err(format!("unexpected token after `struct {name}`: {other:?}")),
        },
        "enum" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("unexpected token after `enum {name}`: {other:?}")),
        },
        other => {
            return Err(format!(
                "can only derive for structs and enums, found `{other}`"
            ))
        }
    };
    Ok(Item { name, shape })
}

fn next_ident(it: &mut Tokens, expecting: &str) -> Result<String, String> {
    match it.next() {
        Some(TokenTree::Ident(i)) => Ok(i.to_string()),
        other => Err(format!("expected {expecting}, found {other:?}")),
    }
}

/// Consumes any leading `#[...]` attributes (including doc comments)
/// and a `pub` / `pub(...)` visibility qualifier.
fn skip_attrs_and_vis(it: &mut Tokens) {
    loop {
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next();
                it.next(); // the [...] group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                it.next();
                if matches!(
                    it.peek(),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    it.next();
                }
            }
            _ => return,
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut it = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&mut it);
        match it.next() {
            None => return Ok(fields),
            Some(TokenTree::Ident(i)) => {
                fields.push(i.to_string());
                match it.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => return Err(format!("expected `:` after field, found {other:?}")),
                }
                skip_past_comma(&mut it);
            }
            other => return Err(format!("expected a field name, found {other:?}")),
        }
    }
}

/// Consumes tokens through the next top-level `,` (or to the end),
/// treating `<`/`>` pairs as nesting so generic arguments don't split.
fn skip_past_comma(it: &mut Tokens) {
    let mut angle_depth = 0i32;
    for token in it.by_ref() {
        if let TokenTree::Punct(p) = &token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
    }
}

/// Counts the fields of a tuple struct/variant: the number of
/// non-empty, top-level comma-separated token runs.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut arity = 0;
    let mut angle_depth = 0i32;
    let mut in_field = false;
    for token in stream {
        match &token {
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if in_field {
                    arity += 1;
                }
                in_field = false;
            }
            TokenTree::Punct(p) => {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    _ => {}
                }
                in_field = true;
            }
            _ => in_field = true,
        }
    }
    if in_field {
        arity += 1;
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut it = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut it);
        match it.next() {
            None => return Ok(variants),
            Some(TokenTree::Ident(i)) => {
                let name = i.to_string();
                let kind = match it.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let arity = count_tuple_fields(g.stream());
                        it.next();
                        VariantKind::Tuple(arity)
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let fields = parse_named_fields(g.stream())?;
                        it.next();
                        VariantKind::Struct(fields)
                    }
                    _ => VariantKind::Unit,
                };
                skip_past_comma(&mut it); // also skips `= discriminant`
                variants.push(Variant { name, kind });
            }
            other => return Err(format!("expected a variant name, found {other:?}")),
        }
    }
}

fn impl_header(trait_name: &str, ty: &str) -> String {
    format!(
        "#[automatically_derived]\n#[allow(clippy::all, unused_variables)]\nimpl serde::{trait_name} for {ty} "
    )
}

fn gen_serialize(item: &Item) -> String {
    let ty = &item.name;
    let mut body = String::new();
    match &item.shape {
        Shape::Struct(fields) => {
            body.push_str("serde::Content::Map(::std::vec![\n");
            for f in fields {
                let _ = writeln!(
                    body,
                    "(::std::string::String::from({f:?}), serde::Serialize::serialize(&self.{f})),"
                );
            }
            body.push_str("])");
        }
        Shape::Tuple(1) => body.push_str("serde::Serialize::serialize(&self.0)"),
        Shape::Tuple(n) => {
            body.push_str("serde::Content::Seq(::std::vec![\n");
            for i in 0..*n {
                let _ = writeln!(body, "serde::Serialize::serialize(&self.{i}),");
            }
            body.push_str("])");
        }
        Shape::Unit => body.push_str("serde::Content::Null"),
        Shape::Enum(variants) => {
            body.push_str("match self {\n");
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        let _ = writeln!(
                            body,
                            "{ty}::{vname} => serde::Content::Str(::std::string::String::from({vname:?})),"
                        );
                    }
                    VariantKind::Tuple(1) => {
                        let _ = writeln!(
                            body,
                            "{ty}::{vname}(__f0) => serde::Content::Map(::std::vec![(::std::string::String::from({vname:?}), serde::Serialize::serialize(__f0))]),"
                        );
                    }
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("serde::Serialize::serialize({b})"))
                            .collect();
                        let _ = writeln!(
                            body,
                            "{ty}::{vname}({}) => serde::Content::Map(::std::vec![(::std::string::String::from({vname:?}), serde::Content::Seq(::std::vec![{}]))]),",
                            binds.join(", "),
                            elems.join(", ")
                        );
                    }
                    VariantKind::Struct(fields) => {
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from({f:?}), serde::Serialize::serialize({f}))"
                                )
                            })
                            .collect();
                        let _ = writeln!(
                            body,
                            "{ty}::{vname} {{ {} }} => serde::Content::Map(::std::vec![(::std::string::String::from({vname:?}), serde::Content::Map(::std::vec![{}]))]),",
                            fields.join(", "),
                            entries.join(", ")
                        );
                    }
                }
            }
            body.push('}');
        }
    }
    format!(
        "{}{{\n fn serialize(&self) -> serde::Content {{\n {body}\n }}\n}}",
        impl_header("Serialize", ty)
    )
}

fn gen_deserialize(item: &Item) -> String {
    let ty = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let mut b = format!("let __entries = content.as_map(\"struct {ty}\")?;\n");
            b.push_str("::std::result::Result::Ok(");
            b.push_str(ty);
            b.push_str(" {\n");
            for f in fields {
                let _ = writeln!(b, "{f}: serde::get_field(__entries, {ty:?}, {f:?})?,");
            }
            b.push_str("})");
            b
        }
        Shape::Tuple(1) => {
            format!("::std::result::Result::Ok({ty}(serde::Deserialize::deserialize(content)?))")
        }
        Shape::Tuple(n) => {
            let mut b = format!(
                "let __items = content.as_seq(\"tuple struct {ty}\")?;\n\
                 if __items.len() != {n} {{\n\
                   return ::std::result::Result::Err(serde::DeError::custom(\
                     ::std::format!(\"expected {n} elements for {ty}, found {{}}\", __items.len())));\n\
                 }}\n"
            );
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::deserialize(&__items[{i}])?"))
                .collect();
            let _ = write!(b, "::std::result::Result::Ok({ty}({}))", elems.join(", "));
            b
        }
        Shape::Unit => format!("let _ = content;\n::std::result::Result::Ok({ty})"),
        Shape::Enum(variants) => gen_deserialize_enum(ty, variants),
    };
    format!(
        "{}{{\n fn deserialize(content: &serde::Content) -> ::std::result::Result<Self, serde::DeError> {{\n {body}\n }}\n}}",
        impl_header("Deserialize", ty)
    )
}

fn gen_deserialize_enum(ty: &str, variants: &[Variant]) -> String {
    let unit: Vec<&Variant> = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .collect();
    let data: Vec<&Variant> = variants
        .iter()
        .filter(|v| !matches!(v.kind, VariantKind::Unit))
        .collect();

    let mut b = String::from("match content {\n");
    if !unit.is_empty() {
        b.push_str("serde::Content::Str(__tag) => match __tag.as_str() {\n");
        for v in &unit {
            let _ = writeln!(
                b,
                "{:?} => ::std::result::Result::Ok({ty}::{}),",
                v.name, v.name
            );
        }
        let _ = writeln!(
            b,
            "__other => ::std::result::Result::Err(serde::DeError::unknown_variant({ty:?}, __other)),"
        );
        b.push_str("},\n");
    }
    if !data.is_empty() {
        b.push_str(
            "serde::Content::Map(__entries) if __entries.len() == 1 => {\n\
             let (__tag, __value) = &__entries[0];\n\
             match __tag.as_str() {\n",
        );
        for v in &data {
            let vname = &v.name;
            match &v.kind {
                VariantKind::Unit => unreachable!("unit variants handled above"),
                VariantKind::Tuple(1) => {
                    let _ = writeln!(
                        b,
                        "{vname:?} => ::std::result::Result::Ok({ty}::{vname}(serde::Deserialize::deserialize(__value)?)),"
                    );
                }
                VariantKind::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("serde::Deserialize::deserialize(&__items[{i}])?"))
                        .collect();
                    let _ = writeln!(
                        b,
                        "{vname:?} => {{\n\
                         let __items = __value.as_seq(\"tuple variant {ty}::{vname}\")?;\n\
                         if __items.len() != {n} {{\n\
                           return ::std::result::Result::Err(serde::DeError::custom(\
                             ::std::format!(\"expected {n} elements for {ty}::{vname}, found {{}}\", __items.len())));\n\
                         }}\n\
                         ::std::result::Result::Ok({ty}::{vname}({}))\n\
                         }}",
                        elems.join(", ")
                    );
                }
                VariantKind::Struct(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!("{f}: serde::get_field(__fields, \"{ty}::{vname}\", {f:?})?")
                        })
                        .collect();
                    let _ = writeln!(
                        b,
                        "{vname:?} => {{\n\
                         let __fields = __value.as_map(\"struct variant {ty}::{vname}\")?;\n\
                         ::std::result::Result::Ok({ty}::{vname} {{ {} }})\n\
                         }}",
                        inits.join(", ")
                    );
                }
            }
        }
        let _ = writeln!(
            b,
            "__other => ::std::result::Result::Err(serde::DeError::unknown_variant({ty:?}, __other)),"
        );
        b.push_str("}\n},\n");
    }
    let _ = writeln!(
        b,
        "__other => ::std::result::Result::Err(serde::DeError::unexpected(\"enum {ty}\", __other)),"
    );
    b.push('}');
    b
}
