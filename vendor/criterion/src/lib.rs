//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! The build environment has no crates.io access, so this crate keeps
//! the workspace's benches compiling and runnable: `cargo bench` times
//! each closure over a short adaptive loop and prints a one-line
//! mean — no statistics, no HTML reports, no comparison to baselines.
//! The numbers are indicative only; the APIs (`benchmark_group`,
//! `bench_with_input`, `Throughput`, `black_box`, ...) mirror upstream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier: prevents the optimizer from deleting the
/// computation that produced `value`.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// How much work one iteration of a benchmark represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id labelled `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// Converts to a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Times closures handed to [`Bencher::iter`].
pub struct Bencher {
    mean: Option<Duration>,
    iters_hint: u64,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the mean wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: run until ~20 ms or the hint cap.
        black_box(routine());
        let calibration = Instant::now();
        let mut calibration_iters = 0u64;
        while calibration.elapsed() < Duration::from_millis(20)
            && calibration_iters < self.iters_hint
        {
            black_box(routine());
            calibration_iters += 1;
        }
        let timed_iters = calibration_iters.max(1);
        let start = Instant::now();
        for _ in 0..timed_iters {
            black_box(routine());
        }
        self.mean = Some(start.elapsed() / u32::try_from(timed_iters).unwrap_or(u32::MAX));
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Sets the default sample size for subsequent groups.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 10, "sample size must be at least 10");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let sample_size = self.sample_size;
        run_one(None, id.into_benchmark_id(), sample_size, None, f);
        self
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of calibration iterations for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 10, "sample size must be at least 10");
        self.sample_size = n;
        self
    }

    /// Declares how much work each iteration performs.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` under this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        run_one(
            Some(&self.name),
            id.into_benchmark_id(),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            Some(&self.name),
            id,
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (kept for API compatibility; no-op here).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: Option<&str>,
    id: BenchmarkId,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        mean: None,
        iters_hint: sample_size as u64,
    };
    f(&mut bencher);
    let label = match group {
        Some(group) => format!("{group}/{}", id.id),
        None => id.id,
    };
    match bencher.mean {
        Some(mean) => {
            let per_iter = mean.as_secs_f64();
            let rate = match throughput {
                Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
                    format!("  {:>10.1} MiB/s", n as f64 / per_iter / (1 << 20) as f64)
                }
                Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                    format!("  {:>10.0} elem/s", n as f64 / per_iter)
                }
                _ => String::new(),
            };
            println!("{label:<50} time: {}{rate}", format_duration(mean));
        }
        None => println!("{label:<50} (no measurement: Bencher::iter never called)"),
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a benchmark binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(10);
        group.throughput(Throughput::Elements(64));
        group.bench_function("sum", |b| b.iter(|| (0..64u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 32), &32u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn benches_run_to_completion() {
        benches();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
