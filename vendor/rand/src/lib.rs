//! Offline stand-in for [`rand`](https://crates.io/crates/rand).
//!
//! The build environment has no crates.io access, so this crate
//! implements the API subset the workspace uses: [`SeedableRng`],
//! [`Rng::gen`], [`Rng::gen_range`] over (inclusive) ranges,
//! [`Rng::gen_bool`], and the [`rngs::StdRng`] / [`rngs::SmallRng`]
//! generators. Both are xoshiro256++ seeded through SplitMix64 — a
//! different stream than upstream rand, but the workspace only relies
//! on determinism for a fixed seed, never on matching upstream values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 bits of the stream.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// A generator that can be created from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a 64-bit seed, expanding it with
    /// SplitMix64 (deterministic: equal seeds, equal streams).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut split = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = split.next().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the "standard" distribution of `T`
    /// (uniform over the whole type; `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`. Panics if the range is empty.
    fn gen_range<R>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
        R: SampleRange,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from the standard distribution.
pub trait Standard: Sized {
    /// Draws one standard sample from `rng`.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types [`Rng::gen_range`] can sample uniformly between two bounds.
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws uniformly from `[lo, hi)` (or `[lo, hi]` if `inclusive`).
    /// The caller guarantees a non-empty range.
    fn sample_between<R: RngCore>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let extra = u64::from(inclusive);
                let span = (hi as $u).wrapping_sub(lo as $u) as u64 + extra;
                if span == 0 {
                    // Inclusive full-width range: every value is valid.
                    return rng.next_u64() as $t;
                }
                let v = bounded(rng, span) as $u;
                (lo as $u).wrapping_add(v) as $t
            }
        }
    )*};
}

sample_uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

/// Uniform draw from `[0, span)` (`span > 0`) by widening multiply,
/// which avoids modulo bias well below any observable level.
fn bounded<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let unit = <$t as Standard>::sample_standard(rng);
                let v = lo + (hi - lo) * unit;
                // Guard against rounding up to an excluded endpoint.
                if inclusive || v < hi { v } else { lo }
            }
        }
    )*};
}

sample_uniform_float!(f32, f64);

/// Ranges that [`Rng::gen_range`] can sample from. A single blanket
/// impl per range shape keeps type inference working on bare literal
/// ranges like `0.2..0.8` (mirrors upstream rand's structure).
pub trait SampleRange {
    /// The element type produced by sampling.
    type Output;

    /// Draws one uniform sample. Panics if the range is empty.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

impl<T: SampleUniform> SampleRange for Range<T> {
    type Output = T;

    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange for RangeInclusive<T> {
    type Output = T;

    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_between(rng, lo, hi, true)
    }
}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's deterministic general-purpose
    /// generator (upstream `StdRng` is ChaCha12; see the crate docs).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point of xoshiro: nudge it.
            if s == [0; 4] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    /// The "small" generator — same engine as [`StdRng`] here.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&y));
            let z = rng.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&z));
            let w: usize = rng.gen_range(0..1);
            assert_eq!(w, 0);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn standard_floats_are_unit() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
