//! Offline stand-in for [`serde_json`](https://crates.io/crates/serde_json).
//!
//! The build environment has no crates.io access, so this crate
//! implements the two entry points the workspace uses — [`to_string`]
//! and [`from_str`] — over the vendored `serde` crate's `Content`
//! tree. The emitted text is ordinary JSON: objects for structs,
//! strings for unit enum variants, single-entry objects for data
//! variants. Floats are printed with Rust's shortest round-trip
//! formatting, so parse(print(x)) == x for every finite `f64`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Content, DeError, Deserialize, Serialize};
use std::fmt;

/// An error from serializing or parsing JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(message: impl fmt::Display) -> Self {
        Error(message.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.serialize(), &mut out);
    Ok(out)
}

/// Parses a value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let content = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.fail("trailing characters after the JSON value"));
    }
    Ok(T::deserialize(&content)?)
}

fn write_content(content: &Content, out: &mut String) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if v.is_finite() {
                // Rust's Debug formatting is the shortest string that
                // parses back to the same f64, and always includes a
                // `.` or exponent, keeping the token a JSON number.
                out.push_str(&format!("{v:?}"));
            } else {
                // Non-finite numbers have no JSON form; serde_json
                // writes null.
                out.push_str("null");
            }
        }
        Content::Str(s) => write_string(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_content(value, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn fail(&self, message: impl fmt::Display) -> Error {
        Error::new(format!("{message} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(format!("expected `{}`", byte as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Content::Null),
            Some(b't') if self.eat_literal("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.fail("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.fail("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.fail("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.fail("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.parse_escape(&mut out)?;
                }
                _ => return Err(self.fail("unterminated string")),
            }
        }
    }

    fn parse_escape(&mut self, out: &mut String) -> Result<(), Error> {
        let escape = self.peek().ok_or_else(|| self.fail("truncated escape"))?;
        self.pos += 1;
        match escape {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let high = self.parse_hex4()?;
                let code = if (0xd800..0xdc00).contains(&high) {
                    // Surrogate pair: the low half must follow.
                    if !self.eat_literal("\\u") {
                        return Err(self.fail("unpaired surrogate"));
                    }
                    let low = self.parse_hex4()?;
                    if !(0xdc00..0xe000).contains(&low) {
                        return Err(self.fail("invalid low surrogate"));
                    }
                    0x10000 + ((high - 0xd800) << 10) + (low - 0xdc00)
                } else {
                    high
                };
                out.push(char::from_u32(code).ok_or_else(|| self.fail("invalid code point"))?);
            }
            other => return Err(self.fail(format!("invalid escape `\\{}`", other as char))),
        }
        Ok(())
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.fail("truncated \\u escape"))?;
        let text = std::str::from_utf8(digits).map_err(|_| self.fail("invalid \\u escape"))?;
        let value = u32::from_str_radix(text, 16).map_err(|_| self.fail("invalid \\u escape"))?;
        self.pos = end;
        Ok(value)
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number tokens are ASCII");
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| self.fail(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<u64>(" 42 ").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.5e3").unwrap(), 1500.0);
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for &x in &[0.1f64, 1.0 / 3.0, 6.02e23, -2.5e-8, 180.000_001] {
            let text = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&text).unwrap(), x, "via {text}");
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let ugly = "a\"b\\c\nd\te\u{08}\u{0c}\u{1}é☃";
        let text = to_string(&ugly).unwrap();
        assert_eq!(from_str::<String>(&text).unwrap(), ugly);
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "😀");
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![vec![1u64, 2], vec![], vec![3]];
        let text = to_string(&v).unwrap();
        assert_eq!(text, "[[1,2],[],[3]]");
        assert_eq!(from_str::<Vec<Vec<u64>>>(&text).unwrap(), v);
        let opt: Vec<Option<u64>> = vec![Some(1), None];
        let text = to_string(&opt).unwrap();
        assert_eq!(text, "[1,null]");
        assert_eq!(from_str::<Vec<Option<u64>>>(&text).unwrap(), opt);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<Vec<u64>>("[1,]").is_err());
    }
}
