//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! The build environment has no crates.io access, so this crate
//! implements the API subset the workspace's property tests use: the
//! `proptest!`, `prop_oneof!`, `prop_assert!`, and `prop_assert_eq!`
//! macros, `Strategy` with `prop_map` / `prop_filter` /
//! `prop_recursive` / `boxed`, ranges and regex-like string literals as
//! strategies, `any::<T>()`, and the `prop::collection` /
//! `prop::option` / `prop::bool` modules.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (no `PROPTEST_*` environment handling, no persisted
//! failure files), and failing inputs are reported but **not shrunk**.

#![forbid(unsafe_code)]

/// Core strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Applies `map` to every generated value.
        fn prop_map<O, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, map }
        }

        /// Discards generated values failing `accept`, retrying with
        /// fresh draws (panics if `accept` virtually never passes).
        fn prop_filter<F>(self, whence: impl Into<String>, accept: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                source: self,
                whence: whence.into(),
                accept,
            }
        }

        /// Builds a recursive strategy: `recurse` receives the strategy
        /// for the previous depth and wraps it one level deeper, up to
        /// `depth` levels. The extra upstream tuning parameters are
        /// accepted but unused.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                let deeper = recurse(strat).boxed();
                // Mix leaves back in so generated sizes vary.
                strat = Union::new(vec![(1, leaf.clone()), (3, deeper)]).boxed();
            }
            strat
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        source: S,
        whence: String,
        accept: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let candidate = self.source.generate(rng);
                if (self.accept)(&candidate) {
                    return candidate;
                }
            }
            panic!("prop_filter gave up after 1000 rejections: {}", self.whence);
        }
    }

    /// A weighted choice between boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
    }

    impl<T> Union<T> {
        /// Creates a union; panics if `arms` is empty or zero-weighted.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(
                arms.iter().map(|(w, _)| *w).sum::<u32>() > 0,
                "prop_oneof! needs at least one arm with positive weight"
            );
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let total: u32 = self.arms.iter().map(|(w, _)| *w).sum();
            let mut pick = rng.gen_range(0..total);
            for (weight, arm) in &self.arms {
                if pick < *weight {
                    return arm.generate(rng);
                }
                pick -= weight;
            }
            unreachable!("pick is below the total weight")
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident . $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    impl<S: Strategy, const N: usize> Strategy for [S; N] {
        type Value = [S::Value; N];

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|i| self[i].generate(rng))
        }
    }

    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_from_pattern(self, rng)
        }
    }
}

/// `any::<T>()` — the canonical strategy for a whole type.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_via_gen {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }

    arbitrary_via_gen!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // A spread of magnitudes and signs, not just unit floats.
            let unit: f64 = rng.gen();
            let scale = 10f64.powi(rng.gen_range(-3..9i32));
            let sign = if rng.gen() { 1.0 } else { -1.0 };
            sign * unit * scale
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Mostly ASCII with a sprinkle of wider code points.
            if rng.gen_bool(0.9) {
                char::from(rng.gen_range(0x20u8..0x7f))
            } else {
                ['é', 'ß', 'λ', '中', '☃', '😀'][rng.gen_range(0..6usize)]
            }
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Returns the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A number of elements: an exact count or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty size range");
            SizeRange {
                lo,
                hi_exclusive: hi + 1,
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Strategy for vectors with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`prop::option::of`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Generates `None` a quarter of the time, `Some(inner)` otherwise.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Strategy for `Option<S::Value>`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_bool(0.25) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Boolean strategies (`prop::bool::ANY`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Generates `true` or `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    /// Either boolean.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen()
        }
    }
}

/// Regex-like string generation for `&str` strategies.
pub mod string {
    use crate::test_runner::TestRng;
    use rand::Rng;

    struct Atom {
        choices: Vec<char>,
        min: usize,
        max: usize,
    }

    /// Generates a string matching `pattern` — a concatenation of
    /// character classes (`[a-z_.-]`), `\PC` (any non-control
    /// character), or literal characters, each optionally followed by
    /// `{n}`, `{m,n}`, `?`, `*`, or `+`.
    pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let atoms = parse(pattern);
        let mut out = String::new();
        for atom in &atoms {
            let count = rng.gen_range(atom.min..=atom.max);
            for _ in 0..count {
                out.push(atom.choices[rng.gen_range(0..atom.choices.len())]);
            }
        }
        out
    }

    fn parse(pattern: &str) -> Vec<Atom> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let choices = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .unwrap_or_else(|| panic!("unclosed `[` in pattern {pattern:?}"));
                    let class = &chars[i + 1..i + close];
                    i += close + 1;
                    expand_class(class, pattern)
                }
                '\\' => {
                    let escaped = *chars
                        .get(i + 1)
                        .unwrap_or_else(|| panic!("trailing `\\` in pattern {pattern:?}"));
                    i += 2;
                    match escaped {
                        // \PC — anything outside Unicode category C
                        // (control); a printable sample suffices here.
                        'P' if chars.get(i) == Some(&'C') => {
                            i += 1;
                            let mut printable: Vec<char> = (0x20u8..0x7f).map(char::from).collect();
                            printable.extend(['é', 'ß', 'λ', '中', '☃', '€']);
                            printable
                        }
                        'n' => vec!['\n'],
                        't' => vec!['\t'],
                        'r' => vec!['\r'],
                        other => vec![other],
                    }
                }
                literal => {
                    i += 1;
                    vec![literal]
                }
            };
            let (min, max) = parse_quantifier(&chars, &mut i, pattern);
            atoms.push(Atom { choices, min, max });
        }
        atoms
    }

    fn parse_quantifier(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
        match chars.get(*i) {
            Some('?') => {
                *i += 1;
                (0, 1)
            }
            Some('*') => {
                *i += 1;
                (0, 8)
            }
            Some('+') => {
                *i += 1;
                (1, 8)
            }
            Some('{') => {
                let close = chars[*i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed `{{` in pattern {pattern:?}"));
                let body: String = chars[*i + 1..*i + close].iter().collect();
                *i += close + 1;
                let parse_num = |s: &str| {
                    s.trim()
                        .parse::<usize>()
                        .unwrap_or_else(|_| panic!("bad quantifier in pattern {pattern:?}"))
                };
                match body.split_once(',') {
                    Some((lo, hi)) => (parse_num(lo), parse_num(hi)),
                    None => {
                        let n = parse_num(&body);
                        (n, n)
                    }
                }
            }
            _ => (1, 1),
        }
    }

    fn expand_class(class: &[char], pattern: &str) -> Vec<char> {
        assert!(!class.is_empty(), "empty character class in {pattern:?}");
        let mut choices = Vec::new();
        let mut i = 0;
        while i < class.len() {
            // `a-z` is a range unless the `-` starts or ends the class.
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (lo, hi) = (class[i], class[i + 2]);
                assert!(lo <= hi, "inverted range in character class {pattern:?}");
                for code in lo as u32..=hi as u32 {
                    if let Some(c) = char::from_u32(code) {
                        choices.push(c);
                    }
                }
                i += 3;
            } else {
                choices.push(class[i]);
                i += 1;
            }
        }
        choices
    }
}

/// Configuration, case errors, and the execution loop.
pub mod test_runner {
    use crate::strategy::Strategy;
    use rand::SeedableRng;

    /// The RNG handed to strategies (deterministic per test and case).
    pub type TestRng = rand::rngs::StdRng;

    /// Per-test configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property failed (`prop_assert!` and friends).
        Fail(String),
        /// The input was rejected; the case is skipped.
        Reject(String),
    }

    impl TestCaseError {
        /// A failed property with a message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }

        /// A rejected input with a reason.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    /// Runs `test` against `config.cases` generated inputs, panicking
    /// on the first failure. Deterministic: the seed of each case
    /// depends only on the test name and the case index.
    pub fn run<S: Strategy>(
        config: &ProptestConfig,
        strategy: S,
        mut test: impl FnMut(S::Value) -> Result<(), TestCaseError>,
        name: &str,
    ) {
        for case in 0..config.cases {
            let seed = fnv1a(name) ^ u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let mut rng = TestRng::seed_from_u64(seed);
            let value = strategy.generate(&mut rng);
            match test(value) {
                Ok(()) | Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(message)) => {
                    panic!("property `{name}` failed at case {case} (seed {seed:#x}):\n{message}")
                }
            }
        }
    }

    fn fnv1a(text: &str) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in text.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// The `prop::` module tree (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::{bool, collection, option, string};
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that checks the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::test_runner::run(
                &__config,
                ($($strategy,)+),
                |($($arg,)+)| {
                    $body
                    ::std::result::Result::Ok(())
                },
                stringify!($name),
            );
        }
        $crate::__proptest_items!(($config) $($rest)*);
    };
}

/// Weighted choice between strategies: `prop_oneof![a, 2 => b, c]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($tokens:tt)*) => {{
        #[allow(clippy::vec_init_then_push)]
        {
            let mut __arms = ::std::vec::Vec::new();
            $crate::__prop_oneof_arms!(__arms; $($tokens)*);
            $crate::strategy::Union::new(__arms)
        }
    }};
}

/// Implementation detail of [`prop_oneof!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __prop_oneof_arms {
    ($arms:ident;) => {};
    ($arms:ident; $weight:literal => $strategy:expr, $($rest:tt)*) => {
        $arms.push(($weight as u32, $crate::strategy::Strategy::boxed($strategy)));
        $crate::__prop_oneof_arms!($arms; $($rest)*);
    };
    ($arms:ident; $weight:literal => $strategy:expr) => {
        $arms.push(($weight as u32, $crate::strategy::Strategy::boxed($strategy)));
    };
    ($arms:ident; $strategy:expr, $($rest:tt)*) => {
        $arms.push((1u32, $crate::strategy::Strategy::boxed($strategy)));
        $crate::__prop_oneof_arms!($arms; $($rest)*);
    };
    ($arms:ident; $strategy:expr) => {
        $arms.push((1u32, $crate::strategy::Strategy::boxed($strategy)));
    };
}

/// Like `assert!`, but fails the property instead of panicking, so the
/// runner can report the offending case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Like `assert_eq!`, but fails the property instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left == *__right,
            "assertion failed: `{:?}` == `{:?}`",
            __left,
            __right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left == *__right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            __left,
            __right,
            ::std::format!($($fmt)*)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn tree_depth() -> impl Strategy<Value = u32> {
        Just(0u32).prop_recursive(3, 8, 2, |inner| inner.prop_map(|d| d + 1))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_generate_in_bounds(x in 3usize..17, y in -2.5f64..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
        }

        #[test]
        fn regex_patterns_match_shape(s in "[a-z][a-zA-Z0-9_]{0,8}", t in "[ -~]{2,4}") {
            prop_assert!(!s.is_empty() && s.len() <= 9, "bad length: {s:?}");
            prop_assert!(s.chars().next().expect("non-empty").is_ascii_lowercase());
            prop_assert!(t.len() >= 2 && t.len() <= 4);
            prop_assert!(t.chars().all(|c| (' '..='~').contains(&c)));
        }

        #[test]
        fn collections_and_options(
            items in prop::collection::vec(any::<u8>(), 2..5),
            opt in prop::option::of(Just(7u8)),
            _flag in prop::bool::ANY,
        ) {
            prop_assert!(items.len() >= 2 && items.len() < 5);
            prop_assert!(opt.is_none() || opt == Some(7));
        }

        #[test]
        fn oneof_respects_arms(v in prop_oneof![Just(1u8), 2 => Just(2u8), Just(3u8)]) {
            prop_assert!((1..=3).contains(&v));
        }

        #[test]
        fn filter_and_map_compose(s in "[a-z ]{1,10}".prop_filter("non-blank", |s| !s.trim().is_empty())) {
            prop_assert!(!s.trim().is_empty());
        }

        #[test]
        fn recursion_is_bounded(d in tree_depth()) {
            prop_assert!(d <= 3, "depth {d} exceeds bound");
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_info() {
        let config = ProptestConfig::with_cases(10);
        crate::test_runner::run(
            &config,
            (0u32..100,),
            |(x,)| {
                prop_assert!(x < 1, "x was {x}");
                Ok(())
            },
            "failures_panic_with_case_info",
        );
    }
}
