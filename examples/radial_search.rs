//! The paper's Radial search end to end, with the template machinery made
//! visible: the function template XML (Figure 3), the query template
//! (Figure 2), the region each request maps to, and how each of the five
//! relationship cases (§3.2) is handled.
//!
//! ```sh
//! cargo run --example radial_search
//! ```

use fp_suite::proxy::template::{FunctionTemplate, TemplateManager};
use fp_suite::proxy::{CostModel, FunctionProxy, ProxyConfig, Scheme, SiteOrigin};
use fp_suite::skyserver::{Catalog, CatalogSpec, SkySite};
use std::sync::Arc;

fn main() {
    // The registered artifacts, printed as the XML/SQL a web site would
    // upload to the proxy.
    println!("=== function template (paper Figure 3) ===");
    println!("{}", FunctionTemplate::sky_radial().to_xml_pretty_text());

    let manager = TemplateManager::with_sky_defaults();
    let radial = manager.query_template("radial").expect("built-in template");
    println!("=== function-embedded query template (paper Figure 2) ===");
    println!("{}\n", radial.template.query.to_sql());

    // Resolve one form request and show the region it becomes.
    let fields = |ra: f64, dec: f64, radius: f64| {
        vec![
            ("ra".to_string(), ra.to_string()),
            ("dec".to_string(), dec.to_string()),
            ("radius".to_string(), radius.to_string()),
        ]
    };
    let bound = manager
        .resolve_form("/search/radial", &fields(185.0, 1.5, 30.0))
        .expect("form resolves");
    println!("=== resolving /search/radial?ra=185&dec=1.5&radius=30 ===");
    println!("region:  {}", bound.region);
    println!("sql:     {}\n", bound.sql);

    // Now run the five cases through a live proxy.
    let site = SkySite::new(Catalog::generate(&CatalogSpec::small_test()));
    let mut proxy = FunctionProxy::new(
        TemplateManager::with_sky_defaults(),
        Arc::new(SiteOrigin::new(site.clone())),
        ProxyConfig::default()
            .with_scheme(Scheme::FullSemantic)
            .with_cost(CostModel::default()),
    );

    println!("=== the five relationship cases (paper §3.2) ===");
    let run = |proxy: &mut FunctionProxy, label: &str, ra: f64, dec: f64, radius: f64| {
        let before = site.load().queries;
        let r = proxy
            .handle_form("/search/radial", &fields(ra, dec, radius))
            .expect("query resolves");
        let origin_hits = site.load().queries - before;
        println!(
            "  {label:<42} -> {:<18} {} rows, {} origin round trip(s), sim {:.0} ms",
            r.metrics.outcome.label(),
            r.result.len(),
            origin_hits,
            r.metrics.sim_ms,
        );
    };

    run(
        &mut proxy,
        "(d) disjoint: first query of the region",
        185.0,
        0.5,
        25.0,
    );
    run(
        &mut proxy,
        "(a) exact match: the same query again",
        185.0,
        0.5,
        25.0,
    );
    run(
        &mut proxy,
        "(b) containment: concentric, radius 10'",
        185.0,
        0.5,
        10.0,
    );
    run(
        &mut proxy,
        "(c) overlap: shifted 20', radius 15'",
        185.0 + 20.0 / 60.0,
        0.5,
        15.0,
    );
    run(
        &mut proxy,
        "(c') region containment: radius 80' cover",
        185.0,
        0.5,
        80.0,
    );
    run(
        &mut proxy,
        "    …which now answers this sub-query",
        185.1,
        0.45,
        18.0,
    );

    let s = proxy.cache_stats();
    println!(
        "\ncache after the demo: {} entries ({} compacted away by region containment)",
        s.entries, s.compactions,
    );
}

/// Small extension trait so the example can print the template XML without
/// exposing printing helpers from the library.
trait PrettyXml {
    fn to_xml_pretty_text(&self) -> String;
}

impl PrettyXml for FunctionTemplate {
    fn to_xml_pretty_text(&self) -> String {
        self.to_xml().to_xml_pretty()
    }
}
