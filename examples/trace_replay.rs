//! Replay a calibrated Radial trace under all five caching schemes and
//! print a side-by-side comparison — a miniature of the paper's whole
//! evaluation section.
//!
//! ```sh
//! cargo run --release --example trace_replay            # default scale
//! cargo run --release --example trace_replay -- 1000    # custom length
//! ```

use fp_suite::proxy::cache::DescriptionKind;
use fp_suite::proxy::template::TemplateManager;
use fp_suite::proxy::{FunctionProxy, ProxyConfig, Scheme, SiteOrigin};
use fp_suite::skyserver::{Catalog, CatalogSpec, SkySite};
use fp_suite::trace::{classify_trace, Rbe, TraceSpec};
use std::sync::Arc;

fn main() {
    let queries: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(500);

    println!("generating catalog and a {queries}-query Radial trace…");
    let site = SkySite::new(Catalog::generate(&CatalogSpec {
        objects: 60_000,
        ..CatalogSpec::default()
    }));
    let trace = TraceSpec {
        queries,
        ..TraceSpec::default()
    }
    .generate();

    let mix = classify_trace(&trace);
    println!("trace census: {mix}");
    println!("(the paper's trace: 17% exact, 34% contained, ~9% overlap, ~51% fully answerable)\n");

    println!(
        "{:<22} {:>12} {:>12} {:>8} {:>8} {:>10}",
        "scheme", "avg resp ms", "efficiency", "hits", "entries", "evictions"
    );
    let rbe = Rbe::default();
    for scheme in Scheme::all() {
        let mut proxy = FunctionProxy::new(
            TemplateManager::with_sky_defaults(),
            Arc::new(SiteOrigin::new(site.clone())),
            ProxyConfig::default()
                .with_scheme(scheme)
                .with_description(DescriptionKind::Array),
        );
        let report = rbe.run(&mut proxy, &trace).expect("trace replays");
        let stats = proxy.cache_stats();
        println!(
            "{:<22} {:>12.0} {:>12.3} {:>7.1}% {:>8} {:>10}",
            scheme.to_string(),
            report.avg_response_ms,
            report.avg_cache_efficiency,
            report.full_hit_ratio() * 100.0,
            stats.entries,
            stats.evictions,
        );
    }

    println!("\nexpected shape: no-cache slowest; passive in between; active schemes fastest,");
    println!("with full-semantic achieving the best efficiency but paying for overlap handling.");
}
