//! Rectangular-search caching: tile a stripe of sky with `fGetObjFromRect`
//! queries, then answer arbitrary sub-rectangles from the cache — the 2-D
//! hyperrect counterpart of the Radial demo, showing that the same proxy
//! instance caches several templates (with separate cache descriptions)
//! at once.
//!
//! ```sh
//! cargo run --example rect_mosaic
//! ```

use fp_suite::proxy::template::TemplateManager;
use fp_suite::proxy::{CostModel, FunctionProxy, ProxyConfig, Scheme, SiteOrigin};
use fp_suite::skyserver::{Catalog, CatalogSpec, SkySite};
use std::sync::Arc;

fn rect_fields(min_ra: f64, max_ra: f64, min_dec: f64, max_dec: f64) -> Vec<(String, String)> {
    vec![
        ("min_ra".to_string(), min_ra.to_string()),
        ("max_ra".to_string(), max_ra.to_string()),
        ("min_dec".to_string(), min_dec.to_string()),
        ("max_dec".to_string(), max_dec.to_string()),
    ]
}

fn main() {
    let site = SkySite::new(Catalog::generate(&CatalogSpec::small_test()));
    let mut proxy = FunctionProxy::new(
        TemplateManager::with_sky_defaults(),
        Arc::new(SiteOrigin::new(site.clone())),
        ProxyConfig::default()
            .with_scheme(Scheme::FullSemantic)
            .with_cost(CostModel::free()),
    );

    // Phase 1: a survey script tiles a 2°×1° stripe as a 4×2 mosaic.
    println!("tiling the stripe ra∈[184,186] dec∈[0,1] as a 4x2 mosaic…");
    let (ra0, dec0) = (184.0, 0.0);
    for i in 0..4 {
        for j in 0..2 {
            let fields = rect_fields(
                ra0 + 0.5 * i as f64,
                ra0 + 0.5 * (i + 1) as f64,
                dec0 + 0.5 * j as f64,
                dec0 + 0.5 * (j + 1) as f64,
            );
            let r = proxy
                .handle_form("/search/rect", &fields)
                .expect("tile query");
            println!(
                "  tile ({i},{j}): {:>5} objects  [{}]",
                r.result.len(),
                r.metrics.outcome.label()
            );
        }
    }
    let after_tiling = site.load().queries;
    println!("origin queries so far: {after_tiling}");

    // Phase 2: interactive users ask for sub-windows; every one falls
    // inside a tile and is answered locally.
    println!("\nsub-window queries (each inside one tile):");
    for (min_ra, max_ra, min_dec, max_dec) in [
        (184.1, 184.4, 0.1, 0.4),
        (185.6, 185.9, 0.55, 0.95),
        (184.55, 184.95, 0.05, 0.45),
    ] {
        let r = proxy
            .handle_form(
                "/search/rect",
                &rect_fields(min_ra, max_ra, min_dec, max_dec),
            )
            .expect("sub-window query");
        println!(
            "  [{min_ra},{max_ra}]x[{min_dec},{max_dec}]: {:>4} objects  [{}] efficiency {:.2}",
            r.result.len(),
            r.metrics.outcome.label(),
            r.metrics.cache_efficiency()
        );
    }
    assert_eq!(
        site.load().queries,
        after_tiling,
        "sub-windows must not touch the origin"
    );

    // Phase 3: a window spanning two tiles — partial overlap, so the proxy
    // probes the tiles and fetches only the remainder.
    println!("\na window spanning two tiles (probe + remainder):");
    let r = proxy
        .handle_form("/search/rect", &rect_fields(184.3, 184.7, 0.1, 0.4))
        .expect("spanning query");
    println!(
        "  [184.3,184.7]x[0.1,0.4]: {:>4} objects  [{}] efficiency {:.2}",
        r.result.len(),
        r.metrics.outcome.label(),
        r.metrics.cache_efficiency()
    );

    // Radial queries continue to work side by side on the same proxy.
    let radial = proxy
        .handle_form(
            "/search/radial",
            &[
                ("ra".to_string(), "185.0".to_string()),
                ("dec".to_string(), "0.5".to_string()),
                ("radius".to_string(), "10".to_string()),
            ],
        )
        .expect("radial query");
    println!(
        "\nradial query on the same proxy: {} objects [{}]",
        radial.result.len(),
        radial.metrics.outcome.label()
    );

    let s = proxy.cache_stats();
    println!(
        "cache: {} entries, {:.1} KB across both templates",
        s.entries,
        s.bytes as f64 / 1024.0
    );
}
