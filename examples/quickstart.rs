//! Quickstart: stand up a synthetic SkyServer, put the function proxy in
//! front of it, and watch active caching answer queries locally.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use fp_suite::proxy::template::TemplateManager;
use fp_suite::proxy::{FunctionProxy, ProxyConfig, Scheme, SiteOrigin};
use fp_suite::skyserver::{Catalog, CatalogSpec, SkySite};
use std::sync::Arc;

fn main() {
    // 1. The origin web site: a deterministic synthetic sky catalog.
    println!("generating the synthetic sky catalog…");
    let site = SkySite::new(Catalog::generate(&CatalogSpec::small_test()));

    // 2. The function proxy, with the paper's full semantic caching and
    //    the built-in SkyServer templates (Radial + Rectangular forms).
    let mut proxy = FunctionProxy::new(
        TemplateManager::with_sky_defaults(),
        Arc::new(SiteOrigin::new(site.clone())),
        ProxyConfig::default().with_scheme(Scheme::FullSemantic),
    );

    let radial = |ra: f64, dec: f64, radius: f64| {
        vec![
            ("ra".to_string(), ra.to_string()),
            ("dec".to_string(), dec.to_string()),
            ("radius".to_string(), radius.to_string()),
        ]
    };

    // 3. Issue the Radial-search form queries of the paper's Figure 1.
    let queries = [
        ("fresh region", 185.0, 0.5, 30.0),
        ("exact repeat", 185.0, 0.5, 30.0),
        ("subsumed (smaller radius)", 185.0, 0.5, 12.0),
        ("overlapping neighbour", 185.4, 0.5, 20.0),
        ("far away", 188.5, -2.0, 10.0),
    ];

    println!(
        "\n{:<28} {:>7} {:>12} {:>10} {:>18}",
        "query", "rows", "outcome", "eff.", "response (sim ms)"
    );
    for (label, ra, dec, radius) in queries {
        let response = proxy
            .handle_form("/search/radial", &radial(ra, dec, radius))
            .expect("query resolves");
        let m = &response.metrics;
        println!(
            "{:<28} {:>7} {:>12} {:>10.2} {:>18.0}",
            label,
            response.result.len(),
            m.outcome.label(),
            m.cache_efficiency(),
            m.response_ms,
        );
    }

    let stats = proxy.cache_stats();
    println!(
        "\ncache: {} entries, {:.1} KB; origin served {} queries",
        stats.entries,
        stats.bytes as f64 / 1024.0,
        site.load().queries,
    );
    println!(
        "note how the repeat, the subsumed query, and part of the overlap never hit the origin."
    );
}
