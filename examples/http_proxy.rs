//! The full deployment picture over real sockets: a browser-like client →
//! the function proxy (an HTTP server) → the origin web site (another HTTP
//! server exposing its search form and the free-form SQL page), all on
//! loopback TCP using the workspace's own HTTP stack.
//!
//! ```sh
//! cargo run --example http_proxy
//! ```

use fp_suite::httpd::{HttpClient, HttpServer, Request, Response, Router, Status};
use fp_suite::proxy::template::TemplateManager;
use fp_suite::proxy::{CostModel, FunctionProxy, Origin, OriginError, ProxyConfig, Scheme};
use fp_suite::skyserver::result::QueryOutcome;
use fp_suite::skyserver::{Catalog, CatalogSpec, ExecStats, ResultSet, SkySite};
use fp_suite::sqlmini::Query;
use fp_suite::xmlite::Element;
use parking_lot_stub::Mutex;
use std::sync::Arc;

/// std Mutex shim so the example has no extra dependencies.
mod parking_lot_stub {
    pub struct Mutex<T>(std::sync::Mutex<T>);
    impl<T> Mutex<T> {
        pub fn new(v: T) -> Self {
            Mutex(std::sync::Mutex::new(v))
        }
        pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
            self.0.lock().expect("example mutex is never poisoned")
        }
    }
}

/// The origin web site's HTTP face: the free-form SQL page
/// (`GET /sql?cmd=<urlencoded sql>`), returning the XML result document
/// plus execution statistics in response headers.
fn origin_router(site: SkySite) -> Router {
    Router::new().route("/sql", move |req: &Request| {
        let Some((_, sql)) = req.query_params().into_iter().find(|(k, _)| k == "cmd") else {
            return Response::error(Status::BAD_REQUEST, "missing cmd parameter");
        };
        match site.execute_sql(&sql) {
            Ok(outcome) => {
                let mut resp = Response::ok("text/xml", outcome.result.to_xml().to_xml());
                resp.headers
                    .set("X-Rows-Scanned", outcome.stats.rows_scanned.to_string());
                resp.headers
                    .set("X-Rows-Returned", outcome.stats.rows_returned.to_string());
                resp
            }
            Err(e) => Response::error(Status::BAD_REQUEST, &e.to_string()),
        }
    })
}

/// An [`Origin`] that reaches the origin site over HTTP — what the proxy
/// would use in a real deployment (the in-process `SiteOrigin` is the
/// simulation shortcut).
struct HttpOrigin {
    client: HttpClient,
}

impl Origin for HttpOrigin {
    fn execute(&self, query: &Query) -> Result<QueryOutcome, OriginError> {
        let url = format!(
            "/sql?cmd={}",
            fp_suite::httpd::urlenc::encode_component(&query.to_sql())
        );
        let response = self
            .client
            .get(&url)
            .map_err(|e| OriginError::Unavailable(e.to_string()))?;
        if !response.status.is_success() {
            return Err(OriginError::Rejected(response.body_text()));
        }
        let doc = Element::parse(&response.body_text())
            .map_err(|e| OriginError::Rejected(format!("bad XML from origin: {e}")))?;
        let result = ResultSet::from_xml(&doc)
            .ok_or_else(|| OriginError::Rejected("malformed result document".into()))?;
        let header_num = |name: &str| {
            response
                .headers
                .get(name)
                .and_then(|v| v.parse().ok())
                .unwrap_or(0)
        };
        let stats = ExecStats {
            rows_scanned: header_num("X-Rows-Scanned"),
            rows_returned: header_num("X-Rows-Returned"),
            result_bytes: response.body.len(),
        };
        Ok(QueryOutcome { result, stats })
    }
}

/// The proxy's HTTP face: the Radial search form plus a pass-through SQL
/// page, exactly the two entry points the paper's SkyServer deployment
/// had.
fn proxy_router(proxy: Arc<Mutex<FunctionProxy>>) -> Router {
    let form_proxy = Arc::clone(&proxy);
    Router::new()
        .route("/search/radial", move |req: &Request| {
            let fields = req.query_params();
            match form_proxy.lock().handle_form("/search/radial", &fields) {
                Ok(r) => {
                    let mut resp = Response::ok("text/xml", r.result.to_xml().to_xml());
                    resp.headers
                        .set("X-Cache-Outcome", r.metrics.outcome.label());
                    resp.headers
                        .set("X-Sim-Response-Ms", format!("{:.0}", r.metrics.response_ms));
                    resp
                }
                Err(e) => Response::error(Status::BAD_REQUEST, &e.to_string()),
            }
        })
        .route("/sql", move |req: &Request| {
            let Some((_, sql)) = req.query_params().into_iter().find(|(k, _)| k == "cmd") else {
                return Response::error(Status::BAD_REQUEST, "missing cmd parameter");
            };
            match proxy.lock().handle_sql(&sql) {
                Ok(r) => Response::ok("text/xml", r.result.to_xml().to_xml()),
                Err(e) => Response::error(Status::BAD_GATEWAY, &e.to_string()),
            }
        })
}

fn main() {
    // 1. The origin web site.
    println!("starting the origin site…");
    let site = SkySite::new(Catalog::generate(&CatalogSpec::small_test()));
    let origin_server = HttpServer::bind("127.0.0.1:0", origin_router(site)).expect("origin binds");
    println!("origin listening on http://{}", origin_server.addr());

    // 2. The function proxy, talking to the origin over HTTP.
    let origin = HttpOrigin {
        client: HttpClient::new(origin_server.addr()),
    };
    let proxy = Arc::new(Mutex::new(FunctionProxy::new(
        TemplateManager::with_sky_defaults(),
        Arc::new(origin),
        ProxyConfig::default()
            .with_scheme(Scheme::FullSemantic)
            .with_cost(CostModel::free()),
    )));
    let proxy_server =
        HttpServer::bind("127.0.0.1:0", proxy_router(Arc::clone(&proxy))).expect("proxy binds");
    println!("proxy  listening on http://{}\n", proxy_server.addr());

    // 3. A browser-like client issues Radial form requests to the proxy.
    let browser = HttpClient::new(proxy_server.addr());
    for (label, url) in [
        ("miss   ", "/search/radial?ra=185.0&dec=0.5&radius=20"),
        ("hit    ", "/search/radial?ra=185.0&dec=0.5&radius=20"),
        ("subsume", "/search/radial?ra=185.0&dec=0.5&radius=8"),
        ("sql    ", "/sql?cmd=SELECT+TOP+3+p.objID+FROM+fGetNearbyObjEq(185.0,+0.5,+20.0)+n+JOIN+PhotoPrimary+p+ON+n.objID+%3D+p.objID"),
    ] {
        let response = browser.get(url).expect("request succeeds");
        let doc = Element::parse(&response.body_text()).expect("XML body");
        let rows = ResultSet::from_xml(&doc).expect("result document").len();
        println!(
            "{label} {url}\n        -> {} rows, outcome: {}",
            rows,
            response.headers.get("X-Cache-Outcome").unwrap_or("n/a"),
        );
    }

    let stats = proxy.lock().cache_stats();
    println!(
        "\nproxy cache: {} entries, {:.1} KB",
        stats.entries,
        stats.bytes as f64 / 1024.0
    );

    proxy_server.shutdown();
    origin_server.shutdown();
    println!("servers stopped.");
}
