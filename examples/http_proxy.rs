//! The full deployment picture over real sockets: browser-like clients →
//! the function proxy (a threaded HTTP server sharing one [`ProxyHandle`])
//! → the origin web site (another HTTP server exposing its search form and
//! the free-form SQL page), all on loopback TCP using the workspace's own
//! HTTP stack.
//!
//! ```sh
//! cargo run --example http_proxy [-- --ttl <secs>] [--snapshot-dir <path>] [--epoch <n>]
//!                                [--serve] [--port <n>] [--trace-sample <n>]
//!                                [--edge] [--workers <n>] [--max-conns <n>]
//!                                [--cache-budget <bytes>] [--slab-dir <path>]
//!                                [--peers ip:port,ip:port,…] [--node-id <n>]
//! ```
//!
//! `--ttl` gives every cached entry a freshness lifetime (expired entries
//! are served stale while a background refresh runs), `--snapshot-dir`
//! persists the cache for a warm restart, and `--epoch` declares the
//! origin's current data-release epoch (entries from older epochs are
//! invalidated).
//!
//! `--cache-budget` caps the RAM the cache may hold (bytes; default
//! unbounded) and `--slab-dir` attaches the disk tier: entries pushed
//! over the budget demote to per-shard mmap'd slab files instead of
//! being evicted, still answering exact and contained hits straight
//! from the page cache. With `--slab-dir`, warm restarts recover from
//! the slab plus a small metadata snapshot.
//!
//! `--edge` swaps the thread-per-connection front end for the
//! nonblocking `fp-edge` reactor: one event-loop thread multiplexes
//! every connection, fresh cache hits are answered inline, misses go to
//! a fixed worker pool (`--workers`, default 4), and admission control
//! sheds overload with fast `503 + Retry-After` instead of queueing
//! unboundedly (`--max-conns` caps open connections, default 1024).
//!
//! Both front ends shut down gracefully: SIGINT/SIGTERM stops
//! accepting, drains in-flight requests, quiesces background
//! revalidations, writes a final snapshot when `--snapshot-dir` is set,
//! and prints a closing stats summary.
//!
//! Observability: the proxy always exposes `GET /metrics` (Prometheus
//! text format: runtime counters plus per-phase and per-outcome latency
//! histograms) and `GET /debug/trace` (sampled spans as a
//! chrome://tracing JSON document; `?format=jsonl` for JSON Lines).
//! `--trace-sample N` traces one request in `N` (default 16, `0`
//! disables tracing). `--serve` keeps the proxy running after the
//! scripted demo so the endpoints can be scraped; `--port N` pins the
//! proxy's listen port (default: an ephemeral port).
//!
//! Health: `GET /healthz` answers 200 while the process lives (a
//! liveness probe), `GET /readyz` answers 503 once a drain began
//! (SIGINT/SIGTERM received) or while the origin circuit breaker is
//! open (with a `Retry-After` hint) — the signal a load balancer uses
//! to eject a node without dropping in-flight requests.
//!
//! Fleet mode: `--peers ip:port,ip:port,…` (the full fleet address
//! list, this node included) plus `--node-id N` (this node's index into
//! that list) turn N such processes into one slot-sharded proxy fleet.
//! Every process runs a SWIM failure detector over HTTP: a background
//! thread pings one peer per second through `GET /peer?gossip=…`,
//! piggybacking the gossip digest (membership, incarnations,
//! data-release epochs, breaker state). On a local cache miss the
//! serving path hashes the query's routing key to its owning peer and
//! probes that peer's cache (`GET /peer?cmd=…`, cache-only, tight
//! deadline, one retry) before paying for an origin fetch; probe
//! failures suspect the peer — failing its slots over to the next node
//! in each slot's preference chain — and fall through to the local
//! origin path, so peer trouble is never a client error. Fleet mode
//! uses the threaded front end (`--edge` is rejected).

use fp_suite::edge::sys::install_interrupt_flag;
use fp_suite::edge::{EdgeConfig, EdgeServer, ProxyEdgeService};
use fp_suite::httpd::{HttpClient, HttpServer, Request, Response, Router, Status};
use fp_suite::proxy::cluster::{
    decode_digest, encode_digest, owner_of_key, routing_key, GossipEntry, Membership,
    MembershipConfig, MembershipEvent, NodeId, PeerError, PeerTransport,
};
use fp_suite::proxy::metrics::{Outcome, QueryMetrics};
use fp_suite::proxy::resilience::SystemClock;
use fp_suite::proxy::template::TemplateManager;
use fp_suite::proxy::{
    CostModel, LifecycleConfig, ObserveConfig, Origin, OriginError, ProxyConfig, ProxyError,
    ProxyHandle, ResilienceConfig, Scheme, XmlResponse,
};
use fp_suite::skyserver::result::QueryOutcome;
use fp_suite::skyserver::{Catalog, CatalogSpec, ExecStats, ResultSet, SkySite};
use fp_suite::sqlmini::Query;
use fp_suite::xmlite::Element;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The origin web site's HTTP face: the free-form SQL page
/// (`GET /sql?cmd=<urlencoded sql>`), returning the XML result document
/// plus execution statistics in response headers.
fn origin_router(site: SkySite) -> Router {
    Router::new().route("/sql", move |req: &Request| {
        let Some((_, sql)) = req.query_params().into_iter().find(|(k, _)| k == "cmd") else {
            return Response::error(Status::BAD_REQUEST, "missing cmd parameter");
        };
        match site.execute_sql(&sql) {
            Ok(outcome) => {
                let mut resp = Response::ok("text/xml", outcome.result.to_xml().to_xml());
                resp.headers
                    .set("X-Rows-Scanned", outcome.stats.rows_scanned.to_string());
                resp.headers
                    .set("X-Rows-Returned", outcome.stats.rows_returned.to_string());
                resp
            }
            Err(e) => Response::error(Status::BAD_REQUEST, &e.to_string()),
        }
    })
}

/// An [`Origin`] that reaches the origin site over HTTP — what the proxy
/// would use in a real deployment (the in-process `SiteOrigin` is the
/// simulation shortcut). The keep-alive [`HttpClient`] reuses one origin
/// connection across fetches.
struct HttpOrigin {
    client: HttpClient,
}

impl Origin for HttpOrigin {
    fn execute(&self, query: &Query) -> Result<QueryOutcome, OriginError> {
        let url = format!(
            "/sql?cmd={}",
            fp_suite::httpd::urlenc::encode_component(&query.to_sql())
        );
        let response = self
            .client
            .get(&url)
            .map_err(|e| OriginError::Unavailable(e.to_string()))?;
        if !response.status.is_success() {
            return Err(OriginError::Rejected(response.body_text()));
        }
        let doc = Element::parse(&response.body_text())
            .map_err(|e| OriginError::Rejected(format!("bad XML from origin: {e}")))?;
        let result = ResultSet::from_xml(&doc)
            .ok_or_else(|| OriginError::Rejected("malformed result document".into()))?;
        let header_num = |name: &str| {
            response
                .headers
                .get(name)
                .and_then(|v| v.parse().ok())
                .unwrap_or(0)
        };
        let stats = ExecStats {
            rows_scanned: header_num("X-Rows-Scanned"),
            rows_returned: header_num("X-Rows-Returned"),
            result_bytes: response.body.len(),
        };
        Ok(QueryOutcome { result, stats })
    }
}

/// One cross-process fleet node's view: who the peers are (addresses
/// indexed by node id, this node included), what this node currently
/// believes about them, and the proxy whose epoch/breaker facts it
/// gossips.
struct FleetState {
    self_id: NodeId,
    addrs: Vec<std::net::SocketAddr>,
    membership: Mutex<Membership>,
    handle: ProxyHandle,
}

impl FleetState {
    /// A short-deadline client for `to` — peer exchanges must give up
    /// fast enough that a dead peer never hangs a client request.
    fn client(&self, to: NodeId) -> Option<HttpClient> {
        let addr = *self.addrs.get(usize::from(to.0))?;
        Some(HttpClient::new(addr).with_timeout(Duration::from_millis(500)))
    }

    fn lock_membership(&self) -> std::sync::MutexGuard<'_, Membership> {
        self.membership.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Applies the membership events with proxy side effects: an epoch
    /// gossiped from the fleet retires this node's stale entries before
    /// the next query is served (the stale-rejoiner rule).
    fn apply(&self, events: &[MembershipEvent]) {
        for event in events {
            if let MembershipEvent::EpochAdvanced(epoch) = event {
                self.handle.set_epoch(*epoch);
            }
        }
    }

    /// The owner-probe leg of the serving path: one probe plus one
    /// retry against the slot owner's cache. Transport failure suspects
    /// the owner (its slots fail over fleet-wide on the next gossip
    /// round) and returns `None` — the caller falls through to its
    /// local origin path, so peer trouble never surfaces to the client.
    fn probe_owner(self: &Arc<Self>, owner: NodeId, sql: &str) -> Option<XmlResponse> {
        let transport = HttpPeerTransport {
            fleet: Arc::clone(self),
        };
        for attempt in 0..2 {
            match transport.probe(self.self_id, owner, sql) {
                Ok(hit) => {
                    self.handle.note_peer_probe(hit.is_some());
                    return hit;
                }
                Err(_) if attempt == 0 => continue,
                Err(_) => {
                    self.handle.note_peer_probe_failure();
                    let events = self.lock_membership().note_probe_failure(owner);
                    self.apply(&events);
                }
            }
        }
        None
    }
}

/// [`PeerTransport`] over plain HTTP: every exchange is a GET against
/// the peer's `/peer` endpoint on a tight timeout — the same trait the
/// in-process test fleet runs on, now crossing process boundaries.
struct HttpPeerTransport {
    fleet: Arc<FleetState>,
}

impl HttpPeerTransport {
    fn client(&self, to: NodeId) -> Result<HttpClient, PeerError> {
        self.fleet
            .client(to)
            .ok_or_else(|| PeerError::Unreachable(format!("{to} not in --peers")))
    }
}

impl PeerTransport for HttpPeerTransport {
    fn ping(
        &self,
        from: NodeId,
        to: NodeId,
        digest: &[GossipEntry],
    ) -> Result<Vec<GossipEntry>, PeerError> {
        let url = format!(
            "/peer?from={}&gossip={}",
            from.0,
            fp_suite::httpd::urlenc::encode_component(&encode_digest(digest))
        );
        let response = self
            .client(to)?
            .get(&url)
            .map_err(|e| PeerError::Unreachable(e.to_string()))?;
        if !response.status.is_success() {
            return Err(PeerError::Protocol(format!(
                "ping answered {}",
                response.status.0
            )));
        }
        Ok(decode_digest(&response.body_text()))
    }

    fn ping_req(&self, _from: NodeId, via: NodeId, target: NodeId) -> Result<(), PeerError> {
        let response = self
            .client(via)?
            .get(&format!("/peer?pingreq={}", target.0))
            .map_err(|e| PeerError::Unreachable(e.to_string()))?;
        if response.status.is_success() {
            Ok(())
        } else {
            Err(PeerError::Unreachable(format!(
                "{target} unreachable via {via}"
            )))
        }
    }

    fn probe(
        &self,
        _from: NodeId,
        to: NodeId,
        sql: &str,
    ) -> Result<Option<XmlResponse>, PeerError> {
        let url = format!(
            "/peer?cmd={}",
            fp_suite::httpd::urlenc::encode_component(sql)
        );
        let response = self.client(to)?.get(&url).map_err(|_| PeerError::Timeout)?;
        if response.status == Status::NOT_FOUND {
            return Ok(None); // clean cache miss on the peer
        }
        if !response.status.is_success() {
            return Err(PeerError::Protocol(format!(
                "probe answered {}",
                response.status.0
            )));
        }
        let metrics = peer_hit_metrics(&response);
        Ok(Some(XmlResponse {
            body: response.body,
            metrics,
        }))
    }
}

/// Reconstructs per-query metrics from a peer probe response's headers
/// (the peer's own timings stay on the peer; what travels is the
/// outcome, row count and freshness flags the client-facing headers
/// need).
fn peer_hit_metrics(response: &Response) -> QueryMetrics {
    let outcome = match response.headers.get("X-Cache-Outcome") {
        Some("exact") => Outcome::Exact,
        Some("contained") => Outcome::Contained,
        Some("region-containment") => Outcome::RegionContainment,
        Some("overlap") => Outcome::Overlap,
        _ => Outcome::Forwarded,
    };
    let flag = |name: &str| response.headers.get(name) == Some("true");
    let rows = response
        .headers
        .get("X-Rows")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    QueryMetrics {
        outcome,
        response_ms: 0.0,
        sim_ms: 0.0,
        proxy_ms: 0.0,
        check_ms: 0.0,
        local_ms: 0.0,
        rows_total: rows,
        rows_from_cache: rows,
        coalesced: false,
        lock_wait_ms: 0.0,
        rows_scanned: 0,
        rows_pruned: 0,
        local_fallback: false,
        degraded: flag("X-Degraded"),
        stale: flag("X-Stale"),
        entry_age_ms: 0.0,
        disk_hit: false,
    }
}

/// Maps a proxy error onto the HTTP status the browser should see: a
/// transient origin failure (outage, deadline, open breaker) becomes
/// `503 Service Unavailable` with a `Retry-After` hint, a permanent
/// origin rejection becomes `502 Bad Gateway`, and anything else is the
/// client's fault (`400`).
///
/// `Retry-After` comes from [`ProxyHandle::retry_after_secs`]: the
/// breaker's actual remaining-open time when the breaker is what is
/// rejecting requests, else the error's own hint, else the resilience
/// layer's next backoff delay — so a transient 503 carries an honest
/// nonzero hint even while the breaker is still closed (previously that
/// window produced a bare one-second guess).
fn error_response(handle: &ProxyHandle, error: &ProxyError) -> Response {
    match error {
        ProxyError::Origin(e) if e.is_transient() => {
            let mut resp = Response::error(Status::SERVICE_UNAVAILABLE, &error.to_string());
            if let Some(secs) = handle.retry_after_secs(error) {
                resp.headers.set("Retry-After", secs.to_string());
            }
            resp
        }
        ProxyError::Origin(_) => Response::error(Status::BAD_GATEWAY, &error.to_string()),
        _ => Response::error(Status::BAD_REQUEST, &error.to_string()),
    }
}

/// The client-facing response for a Radial answer, wherever it came
/// from: the XML body plus the cache-outcome headers, `X-Served-By`
/// naming the peer when a fleet probe answered, and the RFC 9111
/// staleness warning when applicable.
fn radial_response(r: XmlResponse, peer: Option<NodeId>) -> Response {
    let mut resp = Response::ok("text/xml", r.body);
    resp.headers
        .set("X-Cache-Outcome", r.metrics.outcome.label());
    resp.headers
        .set("X-Sim-Response-Ms", format!("{:.0}", r.metrics.response_ms));
    resp.headers
        .set("X-Coalesced", r.metrics.coalesced.to_string());
    resp.headers
        .set("X-Degraded", r.metrics.degraded.to_string());
    resp.headers.set("X-Stale", r.metrics.stale.to_string());
    if let Some(owner) = peer {
        resp.headers.set("X-Served-By", owner.to_string());
    }
    if r.metrics.stale || r.metrics.degraded {
        // RFC 9111 §5.5: 110 = "Response is Stale". Covers both an
        // expired entry being revalidated and a degraded (partial,
        // origin-down) answer.
        resp.headers
            .set("Warning", "110 funcproxy \"Response is stale\"");
    }
    resp
}

/// The proxy's HTTP face: the Radial search form plus a pass-through SQL
/// page, exactly the two entry points the paper's SkyServer deployment
/// had — plus the operational endpoints: `/healthz` and `/readyz` for
/// the load balancer, `/peer` for the fleet (cache probes, gossip
/// exchanges, indirect pings). Each connection thread serves through its
/// own clone of the shared [`ProxyHandle`] — no global lock around the
/// proxy. Bodies come from the byte-serving entry points: cache hits
/// ship pre-assembled XML copied out of the entry's columnar slab,
/// never re-serialized.
fn proxy_router(
    handle: ProxyHandle,
    draining: &'static AtomicBool,
    fleet: Option<Arc<FleetState>>,
) -> Router {
    let form_handle = handle.clone();
    let form_fleet = fleet.clone();
    let metrics_handle = handle.clone();
    let trace_handle = handle.clone();
    let ready_handle = handle.clone();
    let peer_handle = handle.clone();
    let peer_fleet = fleet;
    Router::new()
        .route("/metrics", move |_req: &Request| {
            Response::ok(
                "text/plain; version=0.0.4; charset=utf-8",
                metrics_handle.metrics_text(),
            )
        })
        .route("/debug/trace", move |req: &Request| {
            let jsonl = req
                .query_params()
                .iter()
                .any(|(k, v)| k == "format" && v == "jsonl");
            if jsonl {
                Response::ok("application/x-ndjson", trace_handle.trace_jsonl())
            } else {
                Response::ok("application/json", trace_handle.trace_chrome_json())
            }
        })
        .route("/healthz", move |_req: &Request| {
            Response::ok("text/plain", "ok")
        })
        .route("/readyz", move |_req: &Request| {
            if draining.load(Ordering::Relaxed) {
                return Response::error(Status::SERVICE_UNAVAILABLE, "draining");
            }
            if let Some(secs) = ready_handle.breaker_shed_hint() {
                let mut resp =
                    Response::error(Status::SERVICE_UNAVAILABLE, "origin circuit breaker open");
                resp.headers.set("Retry-After", secs.to_string());
                return resp;
            }
            Response::ok("text/plain", "ready")
        })
        .route("/peer", move |req: &Request| {
            let params = req.query_params();
            let param = |name: &str| {
                params
                    .iter()
                    .find(|(k, _)| k == name)
                    .map(|(_, v)| v.clone())
            };
            if let Some(sql) = param("cmd") {
                // Cache-only probe from a peer: answer from fresh local
                // entries alone, never touching the origin; a miss is a
                // clean 404 the prober falls through on.
                return match peer_handle.try_sql_xml_cached(&sql) {
                    Some(r) => {
                        let mut resp = Response::ok("text/xml", r.body);
                        resp.headers.set("X-Peer-Hit", "true");
                        resp.headers
                            .set("X-Cache-Outcome", r.metrics.outcome.label());
                        resp.headers.set("X-Rows", r.metrics.rows_total.to_string());
                        resp.headers
                            .set("X-Degraded", r.metrics.degraded.to_string());
                        resp.headers.set("X-Stale", r.metrics.stale.to_string());
                        resp
                    }
                    None => {
                        let mut resp = Response::error(Status::NOT_FOUND, "cache miss");
                        resp.headers.set("X-Peer-Hit", "false");
                        resp
                    }
                };
            }
            let Some(fleet) = &peer_fleet else {
                return Response::error(
                    Status::NOT_FOUND,
                    "not running as a fleet (start with --peers)",
                );
            };
            if let Some(digest) = param("gossip") {
                // A peer's failure-detector ping: merge its digest into
                // our view and answer with ours (refreshed with our own
                // epoch/breaker facts first). `try_lock`, not `lock`:
                // our own gossip thread holds this mutex *across its
                // outbound ping*, so two nodes pinging each other in
                // the same round would deadlock until both timeouts
                // fire — and mutual ping timeouts every round mean
                // perpetual mutual suspicion. An empty 200 breaks the
                // cycle: it still proves liveness (all the ping needs),
                // it just skips rumor exchange for this round.
                let Ok(mut m) = fleet.membership.try_lock() else {
                    return Response::ok("text/plain", Vec::new());
                };
                let events = m.merge(&decode_digest(&digest));
                m.set_self_state(
                    peer_handle.current_epoch(),
                    peer_handle.breaker_shed_hint().is_some(),
                );
                let answer = encode_digest(&m.digest());
                drop(m);
                fleet.apply(&events);
                return Response::ok("text/plain", answer);
            }
            if let Some(target) = param("pingreq") {
                // Indirect probe on a third node's behalf: can *we*
                // reach the target it failed to ping directly?
                let Some(id) = target.parse::<u16>().ok().map(NodeId) else {
                    return Response::error(Status::BAD_REQUEST, "bad pingreq target");
                };
                let reached = fleet
                    .client(id)
                    .and_then(|client| client.get("/healthz").ok())
                    .is_some_and(|r| r.status.is_success());
                return if reached {
                    Response::ok("text/plain", "reached")
                } else {
                    Response::error(Status::BAD_GATEWAY, "target unreachable")
                };
            }
            Response::error(Status::BAD_REQUEST, "expected cmd=, gossip= or pingreq=")
        })
        .route("/search/radial", move |req: &Request| {
            let fields = req.query_params();
            // 1. Local fresh cache — the common case once the fleet is
            //    warm, since the edge routes keys to their owners.
            if let Some(r) = form_handle.try_form_xml_cached("/search/radial", &fields) {
                return radial_response(r, None);
            }
            // 2. Owner-cache probe: hash the routing key to its owning
            //    peer and ask its cache (fresh-only, zero origin
            //    traffic) before paying for an origin fetch.
            if let Some(fleet) = &form_fleet {
                if let Ok(bound) = form_handle
                    .manager()
                    .resolve_form("/search/radial", &fields)
                {
                    let live = fleet.lock_membership().live_nodes();
                    let key = routing_key(&bound.residual_key, &bound.region);
                    if let Some(owner) = owner_of_key(&key, &live).filter(|&o| o != fleet.self_id) {
                        if let Some(r) = fleet.probe_owner(owner, &bound.sql) {
                            return radial_response(r, Some(owner));
                        }
                    }
                }
            }
            // 3. The full local pipeline: origin fetch with deadlines,
            //    retries and the breaker, degraded serving on outages.
            match form_handle.handle_form_xml("/search/radial", &fields) {
                Ok(r) => radial_response(r, None),
                Err(e) => error_response(&form_handle, &e),
            }
        })
        .route("/sql", move |req: &Request| {
            let Some((_, sql)) = req.query_params().into_iter().find(|(k, _)| k == "cmd") else {
                return Response::error(Status::BAD_REQUEST, "missing cmd parameter");
            };
            match handle.handle_sql_xml(&sql) {
                Ok(r) => Response::ok("text/xml", r.body),
                Err(e) => error_response(&handle, &e),
            }
        })
}

/// Either front end behind one address: the classic
/// thread-per-connection server or the nonblocking reactor.
enum FrontEnd {
    Threaded(HttpServer),
    Edge(EdgeServer),
}

impl FrontEnd {
    fn addr(&self) -> std::net::SocketAddr {
        match self {
            FrontEnd::Threaded(s) => s.addr(),
            FrontEnd::Edge(s) => s.addr(),
        }
    }

    /// Stops accepting, drains in-flight requests, and joins every
    /// server thread. Returns the edge counters for the closing summary
    /// when the reactor was the front end.
    fn shutdown_graceful(self) -> Option<fp_suite::edge::EdgeSnapshot> {
        match self {
            FrontEnd::Threaded(s) => {
                s.shutdown();
                None
            }
            FrontEnd::Edge(s) => {
                let snapshot = s.stats();
                s.shutdown_graceful(std::time::Duration::from_secs(5));
                Some(snapshot)
            }
        }
    }
}

fn main() {
    // 0. Lifecycle flags (all optional; without them the cache never
    //    expires and nothing is persisted — the pre-lifecycle behaviour).
    let mut ttl_secs: Option<u64> = None;
    let mut snapshot_dir: Option<std::path::PathBuf> = None;
    let mut epoch: u64 = 0;
    let mut serve = false;
    let mut port: u16 = 0;
    let mut trace_sample: u64 = 16;
    let mut edge = false;
    let mut workers: usize = 4;
    let mut max_conns: usize = 1024;
    let mut cache_budget: Option<usize> = None;
    let mut slab_dir: Option<std::path::PathBuf> = None;
    let mut peers: Vec<std::net::SocketAddr> = Vec::new();
    let mut node_id: u16 = 0;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--peers" => {
                peers = args
                    .next()
                    .map(|list| {
                        list.split(',')
                            .map(|a| a.trim().parse().expect("--peers takes ip:port,ip:port,…"))
                            .collect()
                    })
                    .unwrap_or_default();
            }
            "--node-id" => node_id = args.next().and_then(|s| s.parse().ok()).unwrap_or(0),
            "--ttl" => ttl_secs = args.next().and_then(|s| s.parse().ok()),
            "--snapshot-dir" => snapshot_dir = args.next().map(Into::into),
            "--epoch" => epoch = args.next().and_then(|s| s.parse().ok()).unwrap_or(0),
            "--serve" => serve = true,
            "--port" => port = args.next().and_then(|s| s.parse().ok()).unwrap_or(0),
            "--trace-sample" => {
                trace_sample = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);
            }
            "--edge" => edge = true,
            "--workers" => workers = args.next().and_then(|s| s.parse().ok()).unwrap_or(4),
            "--max-conns" => {
                max_conns = args.next().and_then(|s| s.parse().ok()).unwrap_or(1024);
            }
            "--cache-budget" => cache_budget = args.next().and_then(|s| s.parse().ok()),
            "--slab-dir" => slab_dir = args.next().map(Into::into),
            other => {
                eprintln!(
                    "unknown option `{other}` \
                     (supported: --ttl <secs>, --snapshot-dir <path>, --epoch <n>, \
                     --serve, --port <n>, --trace-sample <n>, \
                     --edge, --workers <n>, --max-conns <n>, \
                     --cache-budget <bytes>, --slab-dir <path>, \
                     --peers ip:port,ip:port,…, --node-id <n>)"
                );
                std::process::exit(2);
            }
        }
    }
    if !peers.is_empty() {
        if edge {
            eprintln!("--peers requires the threaded front end; drop --edge");
            std::process::exit(2);
        }
        if usize::from(node_id) >= peers.len() {
            eprintln!(
                "--node-id {node_id} is out of range for a {}-entry --peers list",
                peers.len()
            );
            std::process::exit(2);
        }
        if port == 0 {
            // Default the listen port to this node's own --peers entry,
            // so the fleet's address list is the only configuration.
            port = peers[usize::from(node_id)].port();
        }
    }
    // Install the SIGINT/SIGTERM flag up front: it doubles as the
    // draining signal `/readyz` reports, so a load balancer stops
    // sending traffic the moment a drain begins.
    let interrupted = install_interrupt_flag();
    let mut lifecycle = LifecycleConfig::default().with_epoch(epoch);
    if let Some(secs) = ttl_secs {
        let ttl = std::time::Duration::from_secs(secs.max(1));
        lifecycle = lifecycle
            .with_default_ttl(ttl)
            // Serve expired entries (while refreshing) for one more TTL,
            // and keep them usable through origin outages for ten.
            .with_stale_while_revalidate(ttl)
            .with_stale_if_error(ttl * 10);
    }
    if let Some(dir) = &snapshot_dir {
        lifecycle = lifecycle.with_snapshot(dir.clone(), std::time::Duration::from_secs(5));
    }

    // 1. The origin web site.
    println!("starting the origin site…");
    let site = SkySite::new(Catalog::generate(&CatalogSpec::small_test()));
    let origin_server = HttpServer::bind("127.0.0.1:0", origin_router(site)).expect("origin binds");
    println!("origin listening on http://{}", origin_server.addr());

    // 2. The function proxy, talking to the origin over HTTP and serving
    //    all connection threads through one shared handle.
    let origin = HttpOrigin {
        client: HttpClient::new(origin_server.addr()),
    };
    let mut config = ProxyConfig::default()
        .with_scheme(Scheme::FullSemantic)
        .with_cost(CostModel::free())
        .with_lifecycle(lifecycle)
        // Deadlines, retry/backoff and the circuit breaker on the
        // origin path — also what feeds the Retry-After backoff hint.
        .with_resilience(ResilienceConfig::default())
        .with_observe(ObserveConfig::default().with_sample_every(trace_sample));
    if cache_budget.is_some() {
        config = config.with_capacity(cache_budget);
    }
    if let Some(dir) = &slab_dir {
        config = config.with_tier(dir.clone());
    }
    let handle = ProxyHandle::new(
        TemplateManager::with_sky_defaults(),
        Arc::new(origin),
        config,
    );
    if handle.runtime_stats().recovered_entries > 0 {
        println!(
            "recovered {} cache entries from {}",
            handle.runtime_stats().recovered_entries,
            snapshot_dir
                .as_deref()
                .unwrap_or(std::path::Path::new("?"))
                .display()
        );
    }
    // Fleet mode: one SWIM membership view over the configured peer
    // list, gossiped over HTTP by a background thread below.
    let fleet = if peers.is_empty() {
        None
    } else {
        let ids: Vec<NodeId> = (0..peers.len() as u16).map(NodeId).collect();
        let self_id = NodeId(node_id);
        let membership = Membership::new(
            self_id,
            &ids,
            MembershipConfig::default(),
            Arc::new(SystemClock),
        );
        println!(
            "fleet  {self_id} of {} nodes: {}",
            peers.len(),
            peers
                .iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
        Some(Arc::new(FleetState {
            self_id,
            addrs: peers.clone(),
            membership: Mutex::new(membership),
            handle: handle.clone(),
        }))
    };

    let bind_addr = format!("127.0.0.1:{port}");
    let proxy_server = if edge {
        // The nonblocking front end: every connection multiplexed on one
        // reactor thread, misses offloaded to the fixed worker pool,
        // fresh cache hits answered inline. The reactor, the proxy
        // runtime, and `/metrics` share one stats/observer instance.
        let service = Arc::new(ProxyEdgeService::new(handle.clone()));
        let config = EdgeConfig::default()
            .with_workers(workers)
            .with_max_connections(max_conns)
            .with_stats(service.edge_stats())
            .with_observer(handle.observer_shared());
        let server = EdgeServer::bind(&bind_addr, service, config).expect("proxy binds");
        println!(
            "proxy  listening on http://{} (edge reactor: {} threads total, \
             {max_conns} connection cap, {} cache shards)\n",
            server.addr(),
            server.thread_count(),
            handle.shard_count()
        );
        FrontEnd::Edge(server)
    } else {
        let server = HttpServer::bind(
            &bind_addr,
            proxy_router(handle.clone(), interrupted, fleet.clone()),
        )
        .expect("proxy binds");
        println!(
            "proxy  listening on http://{} ({} cache shards)\n",
            server.addr(),
            handle.shard_count()
        );
        FrontEnd::Threaded(server)
    };

    // The failure detector's heartbeat: one protocol round every 250 ms
    // on the system clock (pings fire at the membership's own
    // `ping_interval`; the extra calls are one clock read each). Stops
    // at drain time so shutdown never races a ping.
    let gossip_stop = Arc::new(AtomicBool::new(false));
    let gossip_thread = fleet.clone().map(|fleet| {
        let stop = Arc::clone(&gossip_stop);
        std::thread::spawn(move || {
            let transport = HttpPeerTransport {
                fleet: Arc::clone(&fleet),
            };
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(250));
                let events = {
                    let mut m = fleet.lock_membership();
                    m.set_self_state(
                        fleet.handle.current_epoch(),
                        fleet.handle.breaker_shed_hint().is_some(),
                    );
                    m.tick(&transport)
                };
                fleet.apply(&events);
            }
        })
    });

    // 3. A browser-like client issues Radial form requests to the proxy
    //    over one keep-alive connection.
    let browser = HttpClient::new(proxy_server.addr());
    for (label, url) in [
        ("miss   ", "/search/radial?ra=185.0&dec=0.5&radius=20"),
        ("hit    ", "/search/radial?ra=185.0&dec=0.5&radius=20"),
        ("subsume", "/search/radial?ra=185.0&dec=0.5&radius=8"),
        ("sql    ", "/sql?cmd=SELECT+TOP+3+p.objID+FROM+fGetNearbyObjEq(185.0,+0.5,+20.0)+n+JOIN+PhotoPrimary+p+ON+n.objID+%3D+p.objID"),
    ] {
        let response = browser.get(url).expect("request succeeds");
        let doc = Element::parse(&response.body_text()).expect("XML body");
        let rows = ResultSet::from_xml(&doc).expect("result document").len();
        println!(
            "{label} {url}\n        -> {} rows, outcome: {}",
            rows,
            response.headers.get("X-Cache-Outcome").unwrap_or("n/a"),
        );
    }

    // 4. Eight concurrent browsers ask the same cold question at once;
    //    the single-flight runtime answers all of them with one origin
    //    fetch.
    println!("\n8 concurrent clients, identical cold query:");
    let burst_url = "/search/radial?ra=186.5&dec=-0.5&radius=15";
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let addr = proxy_server.addr();
            scope.spawn(move || {
                let client = HttpClient::new(addr);
                client.get(burst_url).expect("burst request succeeds");
            });
        }
    });
    let runtime = handle.runtime_stats();
    println!(
        "   requests: {}, flights led: {}, duplicate fetches avoided: {}",
        runtime.requests, runtime.flights_led, runtime.duplicate_fetches_avoided
    );

    let stats = handle.cache_stats();
    println!(
        "\nproxy cache: {} entries, {:.1} KB across {} shards",
        stats.entries,
        stats.bytes as f64 / 1024.0,
        handle.shard_count()
    );
    if slab_dir.is_some() {
        println!(
            "disk tier:   {} demoted entries, {:.1} KB slab \
             ({} demotions, {} promotions, {} disk hits)",
            stats.disk_entries,
            stats.slab_bytes as f64 / 1024.0,
            stats.demotions,
            stats.promotions,
            handle.runtime_stats().disk_hits,
        );
    }

    if serve {
        // SIGINT/SIGTERM set the flag instead of killing the process
        // (installed at startup; `/readyz` watches the same flag), so
        // the drain below always runs.
        println!(
            "\nserving until interrupted: curl http://{0}/metrics, \
             curl http://{0}/debug/trace?format=jsonl",
            proxy_server.addr()
        );
        while !interrupted.load(std::sync::atomic::Ordering::Relaxed) {
            std::thread::sleep(std::time::Duration::from_millis(100));
        }
        println!("\ninterrupt received; draining…");
    }

    // Graceful shutdown, identical for both front ends: stop accepting,
    // let in-flight requests finish, then quiesce background
    // revalidations so no origin fetch is abandoned mid-flight. The
    // gossip thread stops first — peers will suspect this node and fail
    // its slots over, which is exactly what a drain means fleet-wide.
    gossip_stop.store(true, Ordering::Relaxed);
    if let Some(thread) = gossip_thread {
        let _ = thread.join();
    }
    let edge_summary = proxy_server.shutdown_graceful();
    handle.quiesce_revalidations();
    if snapshot_dir.is_some() {
        match handle.snapshot_now() {
            Ok(files) => println!("final snapshot: {files} shard files written"),
            Err(e) => eprintln!("final snapshot failed: {e}"),
        }
    }
    origin_server.shutdown();
    if let Some(snap) = edge_summary {
        println!(
            "edge summary: {} requests ({} fast-path, {} offloaded, {} pipelined), \
             {} shed, {} connections ({} rejected at cap)",
            snap.requests,
            snap.fast_path,
            snap.offloaded,
            snap.pipelined,
            snap.shed_total(),
            snap.conns_accepted,
            snap.conns_rejected,
        );
    }
    let runtime = handle.runtime_stats();
    println!(
        "servers stopped ({} requests served, {} cache entries retained).",
        runtime.requests,
        handle.cache_stats().entries
    );
}
