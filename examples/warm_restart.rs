//! Cache persistence across proxy restarts: the paper's proxy keeps its
//! results as XML files on disk (Figure 4, "Query Result Files"); this
//! example fills a cache, "restarts" the proxy, reloads the files, and
//! shows the warm cache answering without touching the origin.
//!
//! ```sh
//! cargo run --example warm_restart
//! ```

use fp_suite::proxy::template::TemplateManager;
use fp_suite::proxy::{CostModel, FunctionProxy, ProxyConfig, Scheme, SiteOrigin};
use fp_suite::skyserver::{Catalog, CatalogSpec, SkySite};
use std::sync::Arc;

fn proxy(site: &SkySite) -> FunctionProxy {
    FunctionProxy::new(
        TemplateManager::with_sky_defaults(),
        Arc::new(SiteOrigin::new(site.clone())),
        ProxyConfig::default()
            .with_scheme(Scheme::FullSemantic)
            .with_cost(CostModel::free()),
    )
}

fn radial(ra: f64, dec: f64, radius: f64) -> Vec<(String, String)> {
    vec![
        ("ra".to_string(), ra.to_string()),
        ("dec".to_string(), dec.to_string()),
        ("radius".to_string(), radius.to_string()),
    ]
}

fn main() {
    let dir = std::env::temp_dir().join("funcproxy_warm_restart_demo");
    let _ = std::fs::remove_dir_all(&dir);

    let site = SkySite::new(Catalog::generate(&CatalogSpec::small_test()));

    // Session 1: a proxy warms up on live traffic, then shuts down.
    println!("— session 1: populating the cache —");
    {
        let mut p = proxy(&site);
        for (ra, dec, radius) in [(185.0, 0.5, 25.0), (186.2, -0.8, 15.0), (183.5, 1.2, 10.0)] {
            let r = p
                .handle_form("/search/radial", &radial(ra, dec, radius))
                .unwrap();
            println!(
                "  radial({ra}, {dec}, {radius}'): {} rows [{}]",
                r.result.len(),
                r.metrics.outcome.label()
            );
        }
        let written = p.save_cache(&dir).expect("snapshot saves");
        println!(
            "  persisted {written} XML result files to {}",
            dir.display()
        );
        for file in std::fs::read_dir(&dir).unwrap() {
            let path = file.unwrap().path();
            let size = std::fs::metadata(&path).unwrap().len();
            println!(
                "    {} ({size} bytes)",
                path.file_name().unwrap().to_string_lossy()
            );
        }
    } // proxy dropped: "the servlet restarts"

    // Session 2: a fresh proxy loads the files and serves from them.
    println!("\n— session 2: fresh proxy, warm cache —");
    site.reset_load();
    let mut p = proxy(&site);
    let load = p.load_cache(&dir).expect("snapshot loads");
    println!(
        "  restored {} entries ({} skipped)",
        load.loaded, load.skipped
    );

    for (label, ra, dec, radius) in [
        ("exact repeat     ", 185.0, 0.5, 25.0),
        ("subsumed (10')   ", 185.0, 0.5, 10.0),
        ("subsumed (other) ", 186.2, -0.8, 6.0),
    ] {
        let r = p
            .handle_form("/search/radial", &radial(ra, dec, radius))
            .unwrap();
        println!(
            "  {label}: {} rows [{}]",
            r.result.len(),
            r.metrics.outcome.label()
        );
    }
    println!(
        "  origin queries in session 2: {} (everything served from the restored files)",
        site.load().queries
    );

    let _ = std::fs::remove_dir_all(&dir);
}
