//! The gold correctness test of the whole system: **no caching scheme may
//! ever change a query's answer**. Every configuration (scheme × cache
//! description × cache capacity) must return exactly the same tuples as
//! the tunneling no-cache proxy, query for query, over traces that
//! exercise every relationship case, eviction, and compaction.

use fp_suite::proxy::cache::DescriptionKind;
use fp_suite::proxy::template::TemplateManager;
use fp_suite::proxy::{CostModel, FunctionProxy, ProxyConfig, Scheme, SiteOrigin};
use fp_suite::skyserver::{Catalog, CatalogSpec, SkySite};
use fp_suite::trace::{Trace, TraceSpec};
use std::sync::Arc;

fn site() -> SkySite {
    SkySite::new(Catalog::generate(&CatalogSpec {
        seed: 99,
        objects: 25_000,
        ..CatalogSpec::default()
    }))
}

fn make_proxy(
    site: &SkySite,
    scheme: Scheme,
    desc: DescriptionKind,
    capacity: Option<usize>,
) -> FunctionProxy {
    FunctionProxy::new(
        TemplateManager::with_sky_defaults(),
        Arc::new(SiteOrigin::new(site.clone())),
        ProxyConfig::default()
            .with_scheme(scheme)
            .with_description(desc)
            .with_capacity(capacity)
            .with_cost(CostModel::free()),
    )
}

/// Sorted objID list for each query of the trace, as served by `proxy`.
fn answers(proxy: &mut FunctionProxy, trace: &Trace) -> Vec<Vec<i64>> {
    trace
        .queries
        .iter()
        .map(|q| {
            let response = proxy
                .handle_form("/search/radial", &q.form_fields())
                .expect("query resolves");
            let k = response
                .result
                .column_index("objID")
                .expect("objID projected");
            let mut ids: Vec<i64> = response
                .result
                .rows
                .iter()
                .map(|row| row[k].as_i64().expect("objID is an int"))
                .collect();
            ids.sort_unstable();
            ids
        })
        .collect()
}

fn oracle_trace(seed: u64, queries: usize) -> Trace {
    TraceSpec {
        seed,
        queries,
        // Aggressive relationship density to stress every code path.
        exact: 0.2,
        contained: 0.3,
        overlap: 0.15,
        covering: 0.1,
        ..TraceSpec::default()
    }
    .generate()
}

#[test]
fn every_scheme_matches_the_no_cache_oracle() {
    let site = site();
    let trace = oracle_trace(424242, 120);

    let mut oracle_proxy = make_proxy(&site, Scheme::NoCache, DescriptionKind::Array, None);
    let oracle = answers(&mut oracle_proxy, &trace);

    for scheme in [
        Scheme::Passive,
        Scheme::ContainmentOnly,
        Scheme::RegionContainment,
        Scheme::FullSemantic,
    ] {
        for desc in [DescriptionKind::Array, DescriptionKind::RTree] {
            let mut proxy = make_proxy(&site, scheme, desc, None);
            let got = answers(&mut proxy, &trace);
            for (i, (g, want)) in got.iter().zip(&oracle).enumerate() {
                assert_eq!(
                    g, want,
                    "query #{i} differs under {scheme}/{desc} ({:?})",
                    trace.queries[i]
                );
            }
        }
    }
}

#[test]
fn correctness_survives_tight_caches_and_eviction() {
    let site = site();
    let trace = oracle_trace(777, 100);

    let mut oracle_proxy = make_proxy(&site, Scheme::NoCache, DescriptionKind::Array, None);
    let oracle = answers(&mut oracle_proxy, &trace);

    // Capacities from "almost nothing" to "a few entries".
    for capacity in [512, 8 * 1024, 64 * 1024] {
        let mut proxy = make_proxy(
            &site,
            Scheme::FullSemantic,
            DescriptionKind::RTree,
            Some(capacity),
        );
        let got = answers(&mut proxy, &trace);
        assert_eq!(got, oracle, "capacity {capacity} changed answers");
        assert!(
            proxy.cache_stats().bytes <= capacity,
            "capacity {capacity} exceeded: {}",
            proxy.cache_stats().bytes
        );
    }
}

#[test]
fn correctness_holds_without_remainder_support() {
    let site = site();
    let trace = oracle_trace(31337, 80);

    let mut oracle_proxy = make_proxy(&site, Scheme::NoCache, DescriptionKind::Array, None);
    let oracle = answers(&mut oracle_proxy, &trace);

    let mut proxy = FunctionProxy::new(
        TemplateManager::with_sky_defaults(),
        Arc::new(SiteOrigin::without_remainder(site.clone())),
        ProxyConfig::default()
            .with_scheme(Scheme::FullSemantic)
            .with_cost(CostModel::free()),
    );
    let got = answers(&mut proxy, &trace);
    assert_eq!(got, oracle, "no-remainder origin changed answers");
}

#[test]
fn merge_fan_in_limit_does_not_change_answers() {
    let site = site();
    let trace = oracle_trace(5150, 80);

    let mut oracle_proxy = make_proxy(&site, Scheme::NoCache, DescriptionKind::Array, None);
    let oracle = answers(&mut oracle_proxy, &trace);

    let mut config = ProxyConfig::default()
        .with_scheme(Scheme::FullSemantic)
        .with_cost(CostModel::free());
    config.max_merge_entries = 1; // pathological fan-in bound
    let mut proxy = FunctionProxy::new(
        TemplateManager::with_sky_defaults(),
        Arc::new(SiteOrigin::new(site.clone())),
        config,
    );
    let got = answers(&mut proxy, &trace);
    assert_eq!(got, oracle, "fan-in bound changed answers");
}
