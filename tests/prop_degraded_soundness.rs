//! Property: degraded answers are **sound**. For arbitrary radial query
//! sequences, warm a resilient proxy, then kill the origin completely
//! and replay — every answer the proxy still produces must be a subset
//! of what the no-cache oracle returns for that query, answers that are
//! strictly smaller must be flagged `degraded`, and nothing degraded may
//! pollute the cache.

use fp_suite::proxy::resilience::{Clock, MockClock};
use fp_suite::proxy::template::TemplateManager;
use fp_suite::proxy::{
    ChaosOrigin, CostModel, Fault, FunctionProxy, Origin, ProxyConfig, ProxyHandle,
    ResilienceConfig, Scheme, SiteOrigin,
};
use fp_suite::skyserver::{Catalog, CatalogSpec, SkySite};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::{Arc, OnceLock};

fn site() -> &'static SkySite {
    static SITE: OnceLock<SkySite> = OnceLock::new();
    SITE.get_or_init(|| {
        SkySite::new(Catalog::generate(&CatalogSpec {
            seed: 5,
            objects: 12_000,
            ..CatalogSpec::default()
        }))
    })
}

#[derive(Debug, Clone)]
struct RadialForm {
    ra: f64,
    dec: f64,
    radius: f64,
}

impl RadialForm {
    fn fields(&self) -> Vec<(String, String)> {
        vec![
            ("ra".to_string(), format!("{:.4}", self.ra)),
            ("dec".to_string(), format!("{:.4}", self.dec)),
            ("radius".to_string(), format!("{:.4}", self.radius)),
        ]
    }
}

/// Queries packed into a small patch so containment/overlap happens.
fn arb_query() -> impl Strategy<Value = RadialForm> {
    (184.5f64..185.5, -0.5f64..0.5, 1.0f64..25.0).prop_map(|(ra, dec, radius)| RadialForm {
        ra,
        dec,
        radius,
    })
}

/// objID key set of one oracle (no-cache) answer.
fn oracle_ids(queries: &[RadialForm]) -> Vec<BTreeSet<i64>> {
    let mut oracle = FunctionProxy::new(
        TemplateManager::with_sky_defaults(),
        Arc::new(SiteOrigin::new(site().clone())),
        ProxyConfig::default()
            .with_scheme(Scheme::NoCache)
            .with_cost(CostModel::free()),
    );
    queries
        .iter()
        .map(|q| {
            let response = oracle
                .handle_form("/search/radial", &q.fields())
                .expect("oracle executes");
            let k = response.result.column_index("objID").expect("objID");
            response
                .result
                .rows
                .iter()
                .map(|row| row[k].as_i64().expect("int id"))
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn degraded_answers_are_subsets_of_the_oracle(
        queries in prop::collection::vec(arb_query(), 3..10),
    ) {
        let oracle = oracle_ids(&queries);

        let clock = MockClock::shared();
        let chaos = Arc::new(ChaosOrigin::with_clock(
            Arc::new(SiteOrigin::new(site().clone())),
            Arc::clone(&clock) as Arc<dyn Clock>,
        ));
        let handle = ProxyHandle::with_shards_clocked(
            TemplateManager::with_sky_defaults(),
            Arc::clone(&chaos) as Arc<dyn Origin>,
            ProxyConfig::default()
                .with_scheme(Scheme::FullSemantic)
                .with_cost(CostModel::free())
                .with_resilience(ResilienceConfig::fast_test()),
            4,
            Arc::clone(&clock) as Arc<dyn Clock>,
        );

        // Warm phase, healthy origin: every answer must equal the oracle.
        for (q, want) in queries.iter().zip(&oracle) {
            let response = handle
                .handle_form("/search/radial", &q.fields())
                .expect("healthy replay answers");
            let k = response.result.column_index("objID").expect("objID");
            let got: BTreeSet<i64> = response
                .result
                .rows
                .iter()
                .map(|row| row[k].as_i64().expect("int id"))
                .collect();
            prop_assert_eq!(&got, want, "healthy answer diverged");
            prop_assert!(!response.metrics.degraded);
        }
        let entries_before = handle.cache_stats().entries;

        // Outage phase: the origin is gone for good. Replay the same
        // sequence — exact repeats must hit, and whatever else is still
        // answered must be a sound (sub)set, degraded iff incomplete.
        chaos.set_default_fault(Fault::Unavailable);
        for (q, want) in queries.iter().zip(&oracle) {
            let Ok(response) = handle.handle_form("/search/radial", &q.fields()) else {
                continue; // no usable coverage — failing is allowed
            };
            let k = response.result.column_index("objID").expect("objID");
            let got: BTreeSet<i64> = response
                .result
                .rows
                .iter()
                .map(|row| row[k].as_i64().expect("int id"))
                .collect();
            prop_assert!(
                got.is_subset(want),
                "served {} rows not in the oracle answer ({:?} outcome)",
                got.difference(want).count(),
                response.metrics.outcome
            );
            if got.len() < want.len() {
                prop_assert!(
                    response.metrics.degraded,
                    "incomplete answer ({} of {} rows) not flagged degraded",
                    got.len(),
                    want.len()
                );
            }
            if !response.metrics.degraded {
                prop_assert_eq!(&got, want, "non-degraded outage answer diverged");
            }
        }
        prop_assert_eq!(
            handle.cache_stats().entries,
            entries_before,
            "the outage replay must not insert cache entries"
        );
    }
}
