//! The §4.1 trace census at the default experiment spec: the generated
//! trace must match the paper's published mix (17 % exact, 34 % contained,
//! ~9 % overlap, ~51 % fully answerable) within tolerance.

use fp_suite::trace::{classify_trace, TraceSpec};

#[test]
fn default_trace_matches_the_papers_census() {
    let spec = TraceSpec::default();
    let trace = spec.generate();
    let mix = classify_trace(&trace);
    let [exact, contained, overlap, disjoint] = mix.fractions();

    assert!((exact - 0.17).abs() < 0.03, "exact {exact:.3} (paper 0.17)");
    assert!(
        (contained - 0.34).abs() < 0.04,
        "contained {contained:.3} (paper 0.34)"
    );
    assert!(
        (overlap - 0.09).abs() < 0.03,
        "overlap {overlap:.3} (paper ~0.09)"
    );
    assert!(
        (mix.fully_answerable() - 0.51).abs() < 0.05,
        "fully answerable {:.3} (paper ~0.51)",
        mix.fully_answerable()
    );
    assert!(disjoint > 0.25, "disjoint {disjoint:.3}");
}

#[test]
fn census_is_stable_across_seeds() {
    for seed in [1u64, 2, 3] {
        let trace = TraceSpec {
            seed,
            queries: 1000,
            ..TraceSpec::default()
        }
        .generate();
        let mix = classify_trace(&trace);
        let [exact, contained, ..] = mix.fractions();
        assert!((exact - 0.17).abs() < 0.05, "seed {seed}: exact {exact:.3}");
        assert!(
            (contained - 0.34).abs() < 0.06,
            "seed {seed}: contained {contained:.3}"
        );
    }
}

#[test]
fn trace_serialization_roundtrips_at_scale() {
    let trace = TraceSpec {
        queries: 500,
        ..TraceSpec::small_test()
    }
    .generate();
    let json = trace.to_json();
    let back = fp_suite::trace::Trace::from_json(&json).expect("parses");
    assert_eq!(back, trace);
}
