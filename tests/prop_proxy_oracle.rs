//! Property-based proxy oracle: for *arbitrary* interleavings of radial
//! and rectangular form queries (not just trace-generator output), every
//! active scheme must answer exactly like the no-cache proxy.

use fp_suite::proxy::cache::DescriptionKind;
use fp_suite::proxy::template::TemplateManager;
use fp_suite::proxy::{CostModel, FunctionProxy, ProxyConfig, Scheme, SiteOrigin};
use fp_suite::skyserver::{Catalog, CatalogSpec, SkySite};
use proptest::prelude::*;
use std::sync::OnceLock;

fn site() -> &'static SkySite {
    static SITE: OnceLock<SkySite> = OnceLock::new();
    SITE.get_or_init(|| {
        SkySite::new(Catalog::generate(&CatalogSpec {
            seed: 5,
            objects: 12_000,
            ..CatalogSpec::default()
        }))
    })
}

#[derive(Debug, Clone)]
enum FormQuery {
    Radial { ra: f64, dec: f64, radius: f64 },
    Rect { ra: f64, dec: f64, w: f64, h: f64 },
}

impl FormQuery {
    fn request(&self) -> (&'static str, Vec<(String, String)>) {
        match self {
            FormQuery::Radial { ra, dec, radius } => (
                "/search/radial",
                vec![
                    ("ra".to_string(), format!("{ra:.4}")),
                    ("dec".to_string(), format!("{dec:.4}")),
                    ("radius".to_string(), format!("{radius:.4}")),
                ],
            ),
            FormQuery::Rect { ra, dec, w, h } => (
                "/search/rect",
                vec![
                    ("min_ra".to_string(), format!("{:.4}", ra - w / 2.0)),
                    ("max_ra".to_string(), format!("{:.4}", ra + w / 2.0)),
                    ("min_dec".to_string(), format!("{:.4}", dec - h / 2.0)),
                    ("max_dec".to_string(), format!("{:.4}", dec + h / 2.0)),
                ],
            ),
        }
    }
}

/// Queries concentrated in a small patch so relationships actually occur.
fn arb_query() -> impl Strategy<Value = FormQuery> {
    prop_oneof![
        (184.5f64..185.5, -0.5f64..0.5, 1.0f64..25.0)
            .prop_map(|(ra, dec, radius)| FormQuery::Radial { ra, dec, radius }),
        (184.5f64..185.5, -0.5f64..0.5, 0.05f64..0.8, 0.05f64..0.6)
            .prop_map(|(ra, dec, w, h)| FormQuery::Rect { ra, dec, w, h }),
    ]
}

fn proxy(scheme: Scheme, desc: DescriptionKind, capacity: Option<usize>) -> FunctionProxy {
    FunctionProxy::new(
        TemplateManager::with_sky_defaults(),
        std::sync::Arc::new(SiteOrigin::new(site().clone())),
        ProxyConfig::default()
            .with_scheme(scheme)
            .with_description(desc)
            .with_capacity(capacity)
            .with_cost(CostModel::free()),
    )
}

fn run(proxy: &mut FunctionProxy, queries: &[FormQuery]) -> Vec<Vec<i64>> {
    queries
        .iter()
        .map(|q| {
            let (path, fields) = q.request();
            let response = proxy.handle_form(path, &fields).expect("query resolves");
            let k = response.result.column_index("objID").expect("objID");
            let mut ids: Vec<i64> = response
                .result
                .rows
                .iter()
                .map(|row| row[k].as_i64().expect("int id"))
                .collect();
            ids.sort_unstable();
            ids
        })
        .collect()
}

/// Some queries may repeat to force exact matches: double a random prefix.
fn with_repeats(mut queries: Vec<FormQuery>) -> Vec<FormQuery> {
    let extra: Vec<FormQuery> = queries.iter().step_by(3).cloned().collect();
    queries.extend(extra);
    queries
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn schemes_match_oracle_on_arbitrary_sequences(
        queries in prop::collection::vec(arb_query(), 4..16),
    ) {
        let queries = with_repeats(queries);
        let oracle = run(
            &mut proxy(Scheme::NoCache, DescriptionKind::Array, None),
            &queries,
        );
        for scheme in [
            Scheme::Passive,
            Scheme::ContainmentOnly,
            Scheme::RegionContainment,
            Scheme::FullSemantic,
        ] {
            let got = run(&mut proxy(scheme, DescriptionKind::RTree, None), &queries);
            prop_assert_eq!(&got, &oracle, "scheme {} diverged", scheme);
        }
        // And once more under eviction pressure.
        let got = run(
            &mut proxy(Scheme::FullSemantic, DescriptionKind::Array, Some(32 * 1024)),
            &queries,
        );
        prop_assert_eq!(&got, &oracle, "tight cache diverged");
    }
}
