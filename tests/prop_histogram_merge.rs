//! Property tests for the observe-layer latency histograms (satellite d
//! of the observability PR).
//!
//! Two things must hold for the `/metrics` numbers to be trustworthy:
//!
//! 1. **Merge fidelity** — per-shard (or per-thread) histograms merged
//!    bucket-wise must report *exactly* the quantiles a single global
//!    histogram fed the same samples would. The bucket scheme is
//!    deterministic, so merge equality is exact, not approximate.
//! 2. **Bounded quantile error** — any reported quantile is the midpoint
//!    of the log-linear bucket holding the nearest-rank sample, so it
//!    sits within ~1% (half a bucket width) of the true sample value.
//!
//! A third, non-property test storms one histogram from eight threads
//! while a sampler takes concurrent snapshots, proving recording is
//! non-blocking and snapshots are never torn above the true total.

use fp_suite::proxy::observe::{HistogramSnapshot, LatencyHistogram};
use proptest::prelude::*;

const QUANTILES: [f64; 4] = [0.5, 0.9, 0.99, 0.999];

proptest! {
    /// Round-robin the samples across N shard histograms, merge the
    /// snapshots, and require the merged quantiles to equal the global
    /// histogram's bit for bit.
    #[test]
    fn merged_shards_equal_global(
        samples in prop::collection::vec(0u64..2_000_000_000_000, 1..300),
        shards in 1usize..9,
    ) {
        let global = LatencyHistogram::new();
        let shard_hists: Vec<LatencyHistogram> =
            (0..shards).map(|_| LatencyHistogram::new()).collect();
        for (i, &ns) in samples.iter().enumerate() {
            global.record_ns(ns);
            shard_hists[i % shards].record_ns(ns);
        }

        let mut merged = HistogramSnapshot::default();
        for h in &shard_hists {
            merged.merge(&h.snapshot());
        }
        let global = global.snapshot();

        prop_assert_eq!(merged.count(), global.count());
        prop_assert_eq!(merged.count(), samples.len() as u64);
        for q in QUANTILES {
            let m = merged.quantile(q);
            let g = global.quantile(q);
            prop_assert_eq!(
                m.to_bits(),
                g.to_bits(),
                "q={} merged={} global={}",
                q,
                m,
                g
            );
        }
    }

    /// Reported quantiles stay within the documented bucket error of the
    /// true (nearest-rank over the raw samples) quantile.
    #[test]
    fn quantiles_within_bucket_error_of_truth(
        samples in prop::collection::vec(1u64..10_000_000_000, 1..200),
    ) {
        let hist = LatencyHistogram::new();
        for &ns in &samples {
            hist.record_ns(ns);
        }
        let snap = hist.snapshot();

        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in QUANTILES {
            let rank = ((q * sorted.len() as f64).ceil() as usize)
                .clamp(1, sorted.len());
            let truth_ns = sorted[rank - 1] as f64;
            let reported_ns = snap.quantile(q) * 1e6; // quantile() is in ms
            let tolerance = truth_ns * 0.01 + 1.0; // ~1% relative + sub-ns slack
            prop_assert!(
                (reported_ns - truth_ns).abs() <= tolerance,
                "q={}: reported {} ns vs true {} ns (tolerance {})",
                q,
                reported_ns,
                truth_ns,
                tolerance
            );
        }
    }
}

/// Eight writer threads hammer one shared histogram while a sampler
/// takes snapshots mid-storm. Recording must never block or panic, no
/// snapshot may report more events than have been recorded, and the
/// final count must be exact (no lost updates).
#[test]
fn storm_recording_is_non_blocking_and_lossless() {
    const WRITERS: usize = 8;
    const PER_WRITER: u64 = 50_000;
    let hist = LatencyHistogram::new();

    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let hist = &hist;
            scope.spawn(move || {
                for i in 0..PER_WRITER {
                    // Spread across the linear range, the octave range,
                    // and multi-second outliers.
                    let ns = (i * 37 + w as u64) % 3_000_000_000;
                    hist.record_ns(ns);
                }
            });
        }
        let hist = &hist;
        scope.spawn(move || {
            for _ in 0..200 {
                let snap = hist.snapshot();
                assert!(
                    snap.count() <= WRITERS as u64 * PER_WRITER,
                    "snapshot reported more events than were ever recorded"
                );
                if snap.count() > 0 {
                    let p99 = snap.quantile(0.99);
                    assert!(p99.is_finite() && p99 >= 0.0);
                }
                std::thread::yield_now();
            }
        });
    });

    let snap = hist.snapshot();
    assert_eq!(
        snap.count(),
        WRITERS as u64 * PER_WRITER,
        "relaxed atomic buckets must still lose no updates"
    );
    assert!(snap.quantile(0.999) >= snap.quantile(0.5));
}
