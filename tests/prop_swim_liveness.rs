//! Property test for the SWIM failure detector under asymmetric
//! partitions (satellite of the torture PR): for **any** set of severed
//! directed links, a node the observer can still confirm — directly, or
//! through any relay whose both legs are open — is never declared Dead.
//! One-way link loss must cost at most an indirect probe, never a
//! false obituary. The companion property closes the other direction:
//! a node no open path can confirm *is* declared Dead once the suspect
//! timeout has hardened, so the detector is live as well as safe.
//!
//! The harness drives one observer's [`Membership`] over a
//! [`LossyTransport`] carrying only partitions (no drops, no delays, so
//! the property is exact rather than probabilistic), with
//! `indirect_probes` raised above the fleet size so every live relay is
//! tried — the configuration under which "some open two-leg path
//! exists" and "an indirect probe succeeds" coincide.

use fp_suite::proxy::cluster::{
    GossipEntry, LossyTransport, Membership, MembershipConfig, NodeId, NodeStatus, PeerError,
    PeerTransport,
};
use fp_suite::proxy::resilience::{Clock, MockClock};
use fp_suite::proxy::XmlResponse;
use proptest::prelude::*;
use std::sync::Arc;

/// A perfectly healthy network: every exchange succeeds with an empty
/// digest. All faults come from the `LossyTransport` wrapped around it.
struct AlwaysOk;

impl PeerTransport for AlwaysOk {
    fn ping(
        &self,
        _from: NodeId,
        _to: NodeId,
        _digest: &[GossipEntry],
    ) -> Result<Vec<GossipEntry>, PeerError> {
        Ok(Vec::new())
    }

    fn ping_req(&self, _from: NodeId, _via: NodeId, _target: NodeId) -> Result<(), PeerError> {
        Ok(())
    }

    fn probe(
        &self,
        _from: NodeId,
        _to: NodeId,
        _sql: &str,
    ) -> Result<Option<XmlResponse>, PeerError> {
        Ok(None)
    }
}

const OBSERVER: NodeId = NodeId(0);

/// Whether the observer can confirm `target` given the blocked directed
/// links: the direct link is open, or some relay has both legs open.
fn confirmable(n: u16, blocked: &[(u16, u16)], target: u16) -> bool {
    let is_blocked = |a: u16, b: u16| blocked.contains(&(a, b));
    if !is_blocked(0, target) {
        return true;
    }
    (1..n).any(|via| via != target && !is_blocked(0, via) && !is_blocked(via, target))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn no_false_obituary_while_any_relay_path_confirms(
        n in 3u16..=6,
        cuts in proptest::collection::vec((0u16..6, 0u16..6), 0..24),
    ) {
        // Clamp the generated cuts onto the fleet and drop self-loops.
        let blocked: Vec<(u16, u16)> = cuts
            .iter()
            .map(|&(a, b)| (a % n, b % n))
            .filter(|&(a, b)| a != b)
            .collect();

        let clock = MockClock::shared();
        let peers: Vec<NodeId> = (1..n).map(NodeId).collect();
        let cfg = MembershipConfig {
            // Raised above any fleet size so every Alive relay is tried.
            indirect_probes: 16,
            ..MembershipConfig::fast_test()
        };
        let lossy = LossyTransport::new(Arc::new(AlwaysOk), 0.0, 1);
        for &(a, b) in &blocked {
            lossy.block(NodeId(a), NodeId(b));
        }
        let mut view = Membership::new(
            OBSERVER,
            &peers,
            cfg.clone(),
            Arc::clone(&clock) as Arc<dyn Clock>,
        );

        // Enough rounds for the round-robin cursor to probe every peer
        // several times and for any suspicion to outlive the timeout.
        for _ in 0..64 {
            clock.advance(cfg.ping_interval);
            view.tick(&lossy);
        }

        for t in 1..n {
            let status = view.status_of(NodeId(t));
            if confirmable(n, &blocked, t) {
                // Safety: a one-way cut plus a live relay is not death.
                prop_assert!(
                    status != Some(NodeStatus::Dead),
                    "node {} declared Dead though a path confirms it (cuts {:?})",
                    t,
                    blocked
                );
                prop_assert!(
                    status != Some(NodeStatus::Suspect),
                    "node {} still Suspect though a path confirms it (cuts {:?})",
                    t,
                    blocked
                );
            } else {
                // Liveness: a node nothing can reach must harden to Dead.
                prop_assert_eq!(
                    status,
                    Some(NodeStatus::Dead),
                    "unreachable node {} never declared Dead (cuts {:?})",
                    t,
                    blocked
                );
            }
        }
    }
}
