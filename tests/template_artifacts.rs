//! Registering a web site's artifacts from their *textual* XML/SQL forms —
//! the full path a real deployment would take: XML function template text
//! → parse → register; SQL template text → parse → register; XML info file
//! text → parse → register; then resolve and serve form queries through a
//! proxy built from those artifacts only.

use fp_suite::proxy::template::{
    FunctionTemplate, InfoFile, RegisteredQueryTemplate, TemplateManager,
};
use fp_suite::proxy::{CostModel, FunctionProxy, ProxyConfig, Scheme, SiteOrigin};
use fp_suite::skyserver::{Catalog, CatalogSpec, SkySite};
use fp_suite::sqlmini::QueryTemplate;
use fp_suite::xmlite::Element;
use std::sync::Arc;

const FUNCTION_TEMPLATE_XML: &str = r#"
<FunctionTemplate>
    <Name>fGetNearbyObjEq</Name>
    <Params><P>ra</P><P>dec</P><P>radius</P></Params>
    <Shape>hypersphere</Shape>
    <NumDimensions>3</NumDimensions>
    <CenterCoordinate>
        <C>cos($ra)*cos($dec)</C>
        <C>sin($ra)*cos($dec)</C>
        <C>sin($dec)</C>
    </CenterCoordinate>
    <Radius>2.0*sin($radius/120.0)</Radius>
</FunctionTemplate>"#;

const QUERY_TEMPLATE_SQL: &str = "SELECT p.objID, p.ra, p.dec, p.cx, p.cy, p.cz, p.r \
     FROM fGetNearbyObjEq($ra, $dec, $radius) n \
     JOIN PhotoPrimary p ON n.objID = p.objID \
     WHERE p.r < $maxmag";

const INFO_FILE_XML: &str = r#"
<InfoFile>
    <FormPath>/cone</FormPath>
    <QueryTemplate>cone</QueryTemplate>
    <Field name="ra" param="ra"/>
    <Field name="dec" param="dec"/>
    <Field name="sr" param="radius"/>
    <Default param="maxmag">22.5</Default>
</InfoFile>"#;

fn manager_from_artifacts() -> TemplateManager {
    let mut m = TemplateManager::new();
    let func = FunctionTemplate::from_xml(&Element::parse(FUNCTION_TEMPLATE_XML).unwrap())
        .expect("function template parses");
    m.register_function(func).expect("function registers");

    let qt = QueryTemplate::parse("cone", QUERY_TEMPLATE_SQL).expect("query template parses");
    let reg = RegisteredQueryTemplate::new(
        qt,
        vec!["cx".into(), "cy".into(), "cz".into()],
        "p",
        "objID",
    )
    .expect("registration checks pass");
    m.register_query(reg).expect("query registers");

    let info =
        InfoFile::from_xml(&Element::parse(INFO_FILE_XML).unwrap()).expect("info file parses");
    m.register_info(info).expect("info registers");
    m
}

#[test]
fn artifact_registration_resolves_and_serves() {
    let manager = manager_from_artifacts();

    // Resolution maps the renamed form field `sr` to `radius` and fills
    // the `maxmag` default.
    let bound = manager
        .resolve_form(
            "/cone",
            &[
                ("ra".to_string(), "185.0".to_string()),
                ("dec".to_string(), "0.5".to_string()),
                ("sr".to_string(), "15".to_string()),
            ],
        )
        .expect("form resolves");
    assert!(bound.sql.contains("p.r < 22.5"));
    assert!(bound.sql.contains("fGetNearbyObjEq(185.0, 0.5, 15)"));
    assert_eq!(bound.region.shape_name(), "hypersphere");

    // And the proxy built on these artifacts serves with active caching.
    let site = SkySite::new(Catalog::generate(&CatalogSpec::small_test()));
    let mut proxy = FunctionProxy::new(
        manager,
        Arc::new(SiteOrigin::new(site)),
        ProxyConfig::default()
            .with_scheme(Scheme::FullSemantic)
            .with_cost(CostModel::free()),
    );
    let fields = |sr: &str| {
        vec![
            ("ra".to_string(), "185.0".to_string()),
            ("dec".to_string(), "0.5".to_string()),
            ("sr".to_string(), sr.to_string()),
        ]
    };
    let big = proxy
        .handle_form("/cone", &fields("15"))
        .expect("first query");
    let small = proxy
        .handle_form("/cone", &fields("6"))
        .expect("second query");
    assert_eq!(big.metrics.outcome.label(), "forwarded");
    assert_eq!(small.metrics.outcome.label(), "contained");
    assert!(small.result.len() <= big.result.len());

    // Every returned row satisfies the default predicate.
    let r_idx = big.result.column_index("r").expect("r projected");
    for row in big.result.rows.iter().chain(&small.result.rows) {
        assert!(row[r_idx].as_f64().unwrap() < 22.5);
    }
}

#[test]
fn artifacts_roundtrip_through_their_xml_forms() {
    let func = FunctionTemplate::from_xml(&Element::parse(FUNCTION_TEMPLATE_XML).unwrap()).unwrap();
    let func2 = FunctionTemplate::from_xml(&func.to_xml()).unwrap();
    assert_eq!(func, func2);

    let info = InfoFile::from_xml(&Element::parse(INFO_FILE_XML).unwrap()).unwrap();
    let info2 = InfoFile::from_xml(&info.to_xml()).unwrap();
    assert_eq!(info, info2);
    assert_eq!(info.field_map[2], ("sr".to_string(), "radius".to_string()));
    assert_eq!(info.defaults[0], ("maxmag".to_string(), "22.5".to_string()));
}

#[test]
fn different_maxmag_values_live_in_separate_residual_groups() {
    // Two users with different magnitude limits must never share cached
    // results: a contained region with a *looser* predicate would return
    // wrong extra rows.
    let mut manager = manager_from_artifacts();
    // A second form with a different default.
    let mut info = InfoFile::identity("/cone_deep", "cone", &["ra", "dec", "radius"]);
    info.defaults.push(("maxmag".into(), "20.0".into()));
    manager.register_info(info).expect("second info registers");

    let site = SkySite::new(Catalog::generate(&CatalogSpec::small_test()));
    let mut proxy = FunctionProxy::new(
        manager,
        Arc::new(SiteOrigin::new(site)),
        ProxyConfig::default()
            .with_scheme(Scheme::FullSemantic)
            .with_cost(CostModel::free()),
    );
    let fields = vec![
        ("ra".to_string(), "185.0".to_string()),
        ("dec".to_string(), "0.5".to_string()),
        ("sr".to_string(), "12".to_string()),
    ];
    let deep_fields = vec![
        ("ra".to_string(), "185.0".to_string()),
        ("dec".to_string(), "0.5".to_string()),
        ("radius".to_string(), "12".to_string()),
    ];
    let shallow = proxy.handle_form("/cone", &fields).expect("shallow");
    // Identical region, different maxmag → must NOT be an exact hit.
    let deep = proxy.handle_form("/cone_deep", &deep_fields).expect("deep");
    assert_eq!(shallow.metrics.outcome.label(), "forwarded");
    assert_eq!(deep.metrics.outcome.label(), "forwarded");
    assert!(deep.result.len() <= shallow.result.len());
}
