//! Property tests pinning the columnar hot path to the row-major
//! reference: for arbitrary cached results (including NaN coordinates
//! and non-numeric cells) and arbitrary regions (rect / sphere /
//! polytope), columnar selection must produce the identical row set in
//! the identical order, and the zero-copy byte assembly must reproduce
//! the tree serializer byte for byte.

use fp_suite::geometry::{HalfSpace, HyperRect, HyperSphere, Point, Polytope, Region};
use fp_suite::proxy::query::{eval_entry_region, eval_region_over, EvalScratch};
use fp_suite::skyserver::{ColumnarRows, ResultSet};
use fp_suite::sqlmini::Value;
use proptest::prelude::*;

/// Coordinate cells: mostly finite floats in the interesting window,
/// some integers, some NaN (numeric, never selected), and — rarely —
/// a non-numeric cell that must poison both evaluation paths alike.
fn arb_coord() -> impl Strategy<Value = Value> {
    prop_oneof![
        8 => (-2.0f64..2.0).prop_map(Value::Float),
        2 => (-2i64..2).prop_map(Value::Int),
        1 => Just(Value::Float(f64::NAN)),
        1 => Just(Value::Str("not-a-number".to_string())),
    ]
}

/// Payload cells exercise every serialization case: ints, floats,
/// strings needing XML escaping, empty strings, and nulls.
fn arb_payload() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-1000i64..1000).prop_map(Value::Int),
        (-1.0f64..1.0).prop_map(Value::Float),
        Just(Value::Str("a<b&\"c\">'d'".to_string())),
        Just(Value::Str(String::new())),
        Just(Value::Null),
    ]
}

fn arb_result() -> impl Strategy<Value = ResultSet> {
    prop::collection::vec((arb_coord(), arb_coord(), arb_payload()), 0..80).prop_map(|cells| {
        ResultSet {
            columns: vec!["objID".into(), "x".into(), "y".into(), "tag".into()],
            rows: cells
                .into_iter()
                .enumerate()
                .map(|(i, (x, y, tag))| vec![Value::Int(i as i64), x, y, tag])
                .collect(),
        }
    })
}

fn arb_region() -> impl Strategy<Value = Region> {
    prop_oneof![
        // Axis-aligned rectangles.
        (-2.0f64..1.0, -2.0f64..1.0, 0.1f64..2.5, 0.1f64..2.5).prop_map(|(x, y, w, h)| {
            Region::Rect(HyperRect::new(vec![x, y], vec![x + w, y + h]).unwrap())
        }),
        // Balls.
        (-1.5f64..1.5, -1.5f64..1.5, 0.1f64..2.0).prop_map(|(x, y, r)| {
            Region::Sphere(HyperSphere::new(Point::from_slice(&[x, y]), r).unwrap())
        }),
        // Diamonds |p - c|_1 <= r as four half-spaces plus their bbox.
        (-1.5f64..1.5, -1.5f64..1.5, 0.1f64..2.0).prop_map(|(x, y, r)| {
            let faces = vec![
                HalfSpace::new(vec![1.0, 1.0], x + y + r).unwrap(),
                HalfSpace::new(vec![1.0, -1.0], x - y + r).unwrap(),
                HalfSpace::new(vec![-1.0, 1.0], y - x + r).unwrap(),
                HalfSpace::new(vec![-1.0, -1.0], -x - y + r).unwrap(),
            ];
            let bbox = HyperRect::new(vec![x - r, y - r], vec![x + r, y + r]).unwrap();
            Region::Polytope(Polytope::new(faces, bbox).unwrap())
        }),
    ]
}

const COORD_IDX: [usize; 2] = [1, 2];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Columnar selection ≡ row-major `eval_region_over`: same rows,
    /// same order — and the build rejects exactly the results the
    /// row-major path rejects (some non-numeric coordinate cell).
    #[test]
    fn columnar_selection_matches_row_major(rs in arb_result(), region in arb_region()) {
        let columnar = ColumnarRows::build(&rs, &COORD_IDX);
        let reference = eval_region_over(&rs, &COORD_IDX, &region);
        prop_assert_eq!(
            columnar.is_some(),
            reference.is_some(),
            "build and row-major eval must agree on malformed results"
        );
        let (Some(columnar), Some(reference)) = (columnar, reference) else { return Ok(()) };

        let mut scratch = EvalScratch::default();
        let fast = eval_entry_region(&rs, Some(&columnar), &COORD_IDX, &region, &mut scratch)
            .expect("numeric coordinates evaluate");
        prop_assert!(fast.columnar, "matching coordinate sets must take the fast path");
        prop_assert_eq!(&fast.result, &reference);
        prop_assert_eq!(fast.stats.rows_selected, reference.len());
        prop_assert!(fast.stats.rows_scanned <= rs.len(), "pruning never scans more than all rows");
        prop_assert!(fast.stats.rows_scanned >= fast.stats.rows_selected);
    }

    /// The pre-serialized slab assembles the same bytes the tree
    /// serializer produces, for any selected subset.
    #[test]
    fn assembled_bytes_match_tree_serializer(rs in arb_result(), region in arb_region()) {
        let Some(columnar) = ColumnarRows::build(&rs, &COORD_IDX) else { return Ok(()) };
        let mut selected = Vec::new();
        let mut point = Vec::new();
        columnar.select_region(&region, &mut selected, &mut point);
        let subset = columnar.materialize(&rs, &selected);
        prop_assert_eq!(
            columnar.assemble_document(&selected),
            subset.to_xml_string().into_bytes(),
            "span assembly must be byte-identical to serialization"
        );
        // The full document too (the exact-hit serving path).
        prop_assert_eq!(columnar.full_document(), rs.to_xml_string().into_bytes());
    }

    /// NaN coordinates are numeric (no fallback) but never selected.
    #[test]
    fn nan_rows_are_never_selected(region in arb_region()) {
        let rs = ResultSet {
            columns: vec!["objID".into(), "x".into(), "y".into(), "tag".into()],
            rows: vec![
                vec![Value::Int(0), Value::Float(f64::NAN), Value::Float(0.0), Value::Null],
                vec![Value::Int(1), Value::Float(0.0), Value::Float(f64::NAN), Value::Null],
            ],
        };
        let columnar = ColumnarRows::build(&rs, &COORD_IDX).expect("NaN is numeric");
        let mut scratch = EvalScratch::default();
        let fast = eval_entry_region(&rs, Some(&columnar), &COORD_IDX, &region, &mut scratch)
            .expect("NaN rows evaluate");
        prop_assert!(fast.result.is_empty());
        let reference = eval_region_over(&rs, &COORD_IDX, &region).expect("NaN rows evaluate");
        prop_assert!(reference.is_empty());
    }
}
