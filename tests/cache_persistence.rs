//! Warm restart: a proxy persists its cache as XML result files (the
//! paper's Figure 4 "Query Result Files"), a fresh proxy loads them, and
//! previously cached knowledge keeps answering queries with zero origin
//! traffic.

use fp_suite::proxy::template::TemplateManager;
use fp_suite::proxy::{CostModel, FunctionProxy, ProxyConfig, Scheme, SiteOrigin};
use fp_suite::skyserver::{Catalog, CatalogSpec, SkySite};
use std::sync::Arc;

fn proxy(site: &SkySite) -> FunctionProxy {
    FunctionProxy::new(
        TemplateManager::with_sky_defaults(),
        Arc::new(SiteOrigin::new(site.clone())),
        ProxyConfig::default()
            .with_scheme(Scheme::FullSemantic)
            .with_cost(CostModel::free()),
    )
}

fn radial_fields(ra: f64, dec: f64, radius: f64) -> Vec<(String, String)> {
    vec![
        ("ra".to_string(), ra.to_string()),
        ("dec".to_string(), dec.to_string()),
        ("radius".to_string(), radius.to_string()),
    ]
}

#[test]
fn warm_restart_preserves_active_caching() {
    let dir = std::env::temp_dir().join(format!("fp_warm_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let site = SkySite::new(Catalog::generate(&CatalogSpec::small_test()));

    // Session 1: populate and persist.
    let (big_ids, written) = {
        let mut p = proxy(&site);
        let big = p
            .handle_form("/search/radial", &radial_fields(185.0, 0.5, 25.0))
            .expect("first query");
        // A rect query too, so the snapshot holds two templates.
        p.handle_form(
            "/search/rect",
            &[
                ("min_ra".to_string(), "184.0".to_string()),
                ("max_ra".to_string(), "186.0".to_string()),
                ("min_dec".to_string(), "0.0".to_string()),
                ("max_dec".to_string(), "1.0".to_string()),
            ],
        )
        .expect("rect query");
        let written = p.save_cache(&dir).expect("snapshot saves");
        let k = big.result.column_index("objID").unwrap();
        let ids: Vec<i64> = big
            .result
            .rows
            .iter()
            .map(|r| r[k].as_i64().unwrap())
            .collect();
        (ids, written)
    };
    assert_eq!(written, 2);

    // Session 2: fresh proxy, warm cache.
    site.reset_load();
    let mut p2 = proxy(&site);
    let load = p2.load_cache(&dir).expect("snapshot loads");
    assert_eq!(load.loaded, 2);
    assert_eq!(p2.cache_stats().entries, 2);

    // Exact repeat: served from the restored file, zero origin queries.
    let repeat = p2
        .handle_form("/search/radial", &radial_fields(185.0, 0.5, 25.0))
        .expect("repeat");
    assert_eq!(repeat.metrics.outcome.label(), "exact");
    let k = repeat.result.column_index("objID").unwrap();
    let ids: Vec<i64> = repeat
        .result
        .rows
        .iter()
        .map(|r| r[k].as_i64().unwrap())
        .collect();
    assert_eq!(ids, big_ids);

    // Subsumed query: answered locally from the restored entry.
    let contained = p2
        .handle_form("/search/radial", &radial_fields(185.0, 0.5, 10.0))
        .expect("contained");
    assert_eq!(contained.metrics.outcome.label(), "contained");
    assert_eq!(
        site.load().queries,
        0,
        "warm cache answered everything locally"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
