//! The deterministic lifecycle suite, all on virtual time: TTL expiry
//! with stale-while-revalidate, epoch-bump invalidation (manual and
//! origin-advertised), and stale-if-error under an origin outage with
//! the breaker engaged.

use fp_suite::proxy::origin::CountingOrigin;
use fp_suite::proxy::resilience::{Clock, MockClock};
use fp_suite::proxy::template::TemplateManager;
use fp_suite::proxy::{
    ChaosOrigin, CostModel, Fault, LifecycleConfig, Origin, ProxyConfig, ProxyHandle,
    ResilienceConfig, Scheme, SiteOrigin,
};
use fp_suite::skyserver::{Catalog, CatalogSpec, SkySite};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

fn site() -> &'static SkySite {
    static SITE: OnceLock<SkySite> = OnceLock::new();
    SITE.get_or_init(|| {
        SkySite::new(Catalog::generate(&CatalogSpec {
            seed: 11,
            objects: 8_000,
            ..CatalogSpec::default()
        }))
    })
}

fn fields(ra: f64, dec: f64, radius: f64) -> Vec<(String, String)> {
    vec![
        ("ra".to_string(), format!("{ra:.4}")),
        ("dec".to_string(), format!("{dec:.4}")),
        ("radius".to_string(), format!("{radius:.4}")),
    ]
}

const MS: Duration = Duration::from_millis(1);

/// Stale-while-revalidate: an expired exact hit is served immediately —
/// byte-identical to the fresh hit — flagged stale, and triggers exactly
/// one background refresh; the next request is fresh again.
#[test]
fn stale_hit_serves_old_bytes_and_refreshes_once() {
    let clock = MockClock::shared();
    let counting = Arc::new(CountingOrigin::new(Arc::new(SiteOrigin::new(
        site().clone(),
    ))));
    let handle = ProxyHandle::with_shards_clocked(
        TemplateManager::with_sky_defaults(),
        Arc::clone(&counting) as Arc<dyn Origin>,
        ProxyConfig::default()
            .with_scheme(Scheme::FullSemantic)
            .with_cost(CostModel::free())
            .with_lifecycle(
                LifecycleConfig::default()
                    .with_default_ttl(100 * MS)
                    .with_stale_while_revalidate(1000 * MS),
            ),
        2,
        Arc::clone(&clock) as Arc<dyn Clock>,
    );
    let q = fields(185.0, 0.2, 12.0);

    // Miss, then a fresh exact hit: this is the reference body.
    let miss = handle.handle_form_xml("/search/radial", &q).expect("miss");
    assert!(!miss.metrics.stale);
    assert_eq!(counting.fetches(), 1);
    let fresh = handle.handle_form_xml("/search/radial", &q).expect("hit");
    assert!(!fresh.metrics.stale, "within TTL the hit is fresh");
    assert_eq!(fresh.body, miss.body);
    assert_eq!(counting.fetches(), 1, "a fresh hit fetches nothing");

    // Past the TTL but inside the stale-while-revalidate window: the
    // stale bytes come back immediately, and one refresh runs behind.
    clock.advance(150 * MS);
    let stale = handle
        .handle_form_xml("/search/radial", &q)
        .expect("stale hit");
    assert!(stale.metrics.stale, "expired entry must be flagged stale");
    assert_eq!(stale.body, fresh.body, "stale hit serves the cached bytes");
    assert!(
        stale.metrics.entry_age_ms >= 100.0,
        "age {} must exceed the TTL",
        stale.metrics.entry_age_ms
    );
    handle.quiesce_revalidations();
    let stats = handle.runtime_stats();
    assert_eq!(stats.stale_hits, 1);
    assert_eq!(stats.revalidations, 1, "exactly one background refresh");
    assert_eq!(counting.fetches(), 2, "the refresh is the only new fetch");

    // The refresh replaced the entry: fresh again, no further fetches.
    let refreshed = handle
        .handle_form_xml("/search/radial", &q)
        .expect("refreshed hit");
    assert!(!refreshed.metrics.stale, "refreshed entry is fresh");
    assert_eq!(refreshed.body, fresh.body, "same data after refresh");
    assert_eq!(counting.fetches(), 2);
    handle.quiesce_revalidations();
    assert_eq!(
        handle.runtime_stats().revalidations,
        1,
        "a fresh hit must not refresh again"
    );
}

/// Epoch bumps retire every pre-bump entry before the next serve, both
/// when bumped explicitly and when the origin advertises a newer epoch
/// on a fetch.
#[test]
fn epoch_bump_invalidates_every_pre_bump_entry() {
    let clock = MockClock::shared();
    let counting = Arc::new(CountingOrigin::new(Arc::new(SiteOrigin::new(
        site().clone(),
    ))));
    let handle = ProxyHandle::with_shards_clocked(
        TemplateManager::with_sky_defaults(),
        Arc::clone(&counting) as Arc<dyn Origin>,
        ProxyConfig::default()
            .with_scheme(Scheme::FullSemantic)
            .with_cost(CostModel::free())
            .with_lifecycle(LifecycleConfig::default().with_epoch(1)),
        2,
        Arc::clone(&clock) as Arc<dyn Clock>,
    );
    assert_eq!(handle.current_epoch(), 1);

    // Warm two disjoint entries under epoch 1.
    let a = fields(185.0, 0.2, 10.0);
    let b = fields(120.0, 30.0, 10.0);
    let body_a = handle
        .handle_form_xml("/search/radial", &a)
        .expect("a")
        .body;
    handle.handle_form("/search/radial", &b).expect("b");
    assert_eq!(handle.cache_stats().entries, 2);

    // Explicit bump: both entries retire immediately, before any serve.
    let retired = handle.set_epoch(2);
    assert_eq!(retired, 2, "every pre-bump entry is retired");
    assert_eq!(handle.cache_stats().entries, 0);
    assert_eq!(handle.current_epoch(), 2);
    assert_eq!(handle.runtime_stats().epoch_invalidations, 2);
    // A stale epoch is refused: bumping backwards is a no-op.
    assert_eq!(handle.set_epoch(1), 0);
    assert_eq!(handle.current_epoch(), 2);

    // Re-warm under epoch 2, then let the origin advertise epoch 3: the
    // next fetch observes it and the epoch-2 entry dies with it.
    let resp = handle
        .handle_form_xml("/search/radial", &a)
        .expect("rewarm");
    assert_eq!(resp.body, body_a, "same query, same answer across epochs");
    assert_eq!(handle.cache_stats().entries, 1);
    counting.set_advertised_epoch(3);
    handle
        .handle_form("/search/radial", &b)
        .expect("fetch at epoch 3");
    assert_eq!(handle.current_epoch(), 3, "advertised epoch adopted");
    // The pre-bump entry is gone; the new fetch (inserted at epoch 3)
    // survives.
    assert_eq!(handle.cache_stats().entries, 1);
    let after = handle
        .handle_form_xml("/search/radial", &b)
        .expect("b again");
    assert!(!after.metrics.stale);
    assert!(
        matches!(
            after.metrics.outcome,
            fp_suite::proxy::metrics::Outcome::Exact
        ),
        "the epoch-3 entry still serves, got {:?}",
        after.metrics.outcome
    );
}

/// Stale-if-error: once the origin is down (and the breaker opens), an
/// entry past its TTL keeps serving — flagged stale and degraded — for
/// the whole stale-if-error window, and dies after it.
#[test]
fn stale_if_error_extends_expired_entries_through_an_outage() {
    let clock = MockClock::shared();
    let chaos = Arc::new(ChaosOrigin::with_clock(
        Arc::new(SiteOrigin::new(site().clone())),
        Arc::clone(&clock) as Arc<dyn Clock>,
    ));
    let handle = ProxyHandle::with_shards_clocked(
        TemplateManager::with_sky_defaults(),
        Arc::clone(&chaos) as Arc<dyn Origin>,
        ProxyConfig::default()
            .with_scheme(Scheme::FullSemantic)
            .with_cost(CostModel::free())
            .with_resilience(ResilienceConfig::fast_test())
            .with_lifecycle(
                LifecycleConfig::default()
                    .with_default_ttl(1000 * MS)
                    .with_stale_if_error(Duration::from_secs(60)),
            ),
        2,
        Arc::clone(&clock) as Arc<dyn Clock>,
    );
    let q = fields(185.0, 0.2, 12.0);
    let warm = handle.handle_form_xml("/search/radial", &q).expect("warm");

    // Expire the entry (past TTL, swr = 0 → straight to Grace), then
    // kill the origin. The healthy path cannot use a Grace entry, so the
    // proxy tries to forward, fails, and falls back to degraded serving
    // — where stale-if-error admits it.
    clock.advance(Duration::from_secs(2));
    chaos.set_default_fault(Fault::Unavailable);
    let during = handle
        .handle_form_xml("/search/radial", &q)
        .expect("outage answer from the grace entry");
    assert_eq!(during.body, warm.body, "grace entry serves the old bytes");
    assert!(during.metrics.stale, "grace serves are flagged stale");
    // `degraded` stays false: the answer is complete (it flags
    // incompleteness, not outage); `stale` carries the age signal.
    assert!(!during.metrics.degraded);

    // Keep failing until the breaker opens; the grace entry still serves
    // on the fast-fail path.
    for _ in 0..4 {
        let r = handle
            .handle_form_xml("/search/radial", &q)
            .expect("served through breaker trips");
        assert_eq!(r.body, warm.body);
    }
    let stats = handle.runtime_stats();
    assert!(stats.breaker_opens >= 1, "the outage must trip the breaker");
    assert!(stats.stale_hits >= 1);
    let open = handle
        .handle_form_xml("/search/radial", &q)
        .expect("served while the breaker is open");
    assert!(open.metrics.stale);
    assert_eq!(open.body, warm.body);

    // Past the stale-if-error window the entry is dead: with the origin
    // still down there is nothing left to serve.
    clock.advance(Duration::from_secs(120));
    assert!(
        handle.handle_form("/search/radial", &q).is_err(),
        "a dead entry must not serve even on the error path"
    );
}

/// Regression for the `entry_age_ms` max-fold bug: the reported age is
/// the age of the entries that actually *contributed rows* to the
/// answer, not the oldest entry the planner merely probed. A stale but
/// empty cached region must neither age the response nor flag it stale.
#[test]
fn entry_age_reports_the_serving_entry_not_the_oldest_probed() {
    let clock = MockClock::shared();
    let handle = ProxyHandle::with_shards_clocked(
        TemplateManager::with_sky_defaults(),
        Arc::new(SiteOrigin::new(site().clone())),
        ProxyConfig::default()
            .with_scheme(Scheme::FullSemantic)
            .with_cost(CostModel::free())
            .with_lifecycle(
                LifecycleConfig::default()
                    .with_default_ttl(100 * MS)
                    .with_stale_while_revalidate(1000 * MS),
            ),
        2,
        Arc::clone(&clock) as Arc<dyn Clock>,
    );

    // t=0: a tiny, almost certainly empty entry A off to the side.
    let a = handle
        .handle_form_xml("/search/radial", &fields(185.0, 0.4, 0.01))
        .expect("entry A");
    assert_eq!(
        a.metrics.rows_total, 0,
        "the tiny region must be empty for this scenario"
    );

    // t=150 ms: entry B, disjoint from A so compaction keeps both.
    clock.advance(150 * MS);
    let b = handle
        .handle_form_xml("/search/radial", &fields(185.0, 0.0, 20.0))
        .expect("entry B");
    assert!(b.metrics.rows_total > 0, "B must hold real rows");

    // t=180 ms: a query containing both A and B (region containment,
    // remainder fetched). A is now past its TTL but contributes zero
    // rows; B (30 ms old) serves the hit portion. The max-fold bug
    // reported age 180 ms and stale=true.
    clock.advance(30 * MS);
    let served = handle
        .handle_form_xml("/search/radial", &fields(185.0, 0.05, 25.0))
        .expect("merged serve");
    assert!(
        served.metrics.rows_from_cache > 0,
        "B must contribute cached rows (outcome {:?})",
        served.metrics.outcome
    );
    assert!(
        served.metrics.entry_age_ms < 100.0,
        "age {} must be B's (~30 ms), not stale A's (~180 ms)",
        served.metrics.entry_age_ms
    );
    assert!(
        !served.metrics.stale,
        "an empty probed entry must not mark the answer stale"
    );
    handle.quiesce_revalidations();
    assert_eq!(
        handle.runtime_stats().stale_hits,
        0,
        "no stale hit was served"
    );
}
