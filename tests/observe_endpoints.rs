//! End-to-end checks of the observability surface: the Prometheus
//! `/metrics` text a proxy serves over real HTTP, the chrome://tracing
//! and JSONL trace exports, and the `Retry-After` fallback chain
//! ([`ProxyHandle::retry_after_secs`]) that the HTTP example maps onto
//! 503 responses.

use fp_suite::httpd::{HttpClient, HttpServer, Response, Router};
use fp_suite::proxy::resilience::{Clock, MockClock};
use fp_suite::proxy::template::TemplateManager;
use fp_suite::proxy::{
    ChaosOrigin, CostModel, Fault, ObserveConfig, Origin, ProxyConfig, ProxyHandle,
    ResilienceConfig, Scheme, SiteOrigin,
};
use fp_suite::skyserver::{Catalog, CatalogSpec, SkySite};
use std::sync::Arc;

/// A proxy over a healthy synthetic site with tracing at 1-in-1
/// sampling, warmed with a miss, an exact hit and a contained hit so
/// every serving path has latency samples.
fn warmed_handle() -> Arc<ProxyHandle> {
    let site = SkySite::new(Catalog::generate(&CatalogSpec {
        seed: 5,
        objects: 8_000,
        ..CatalogSpec::default()
    }));
    let handle = Arc::new(ProxyHandle::with_shards(
        TemplateManager::with_sky_defaults(),
        Arc::new(SiteOrigin::new(site)),
        ProxyConfig::default()
            .with_scheme(Scheme::FullSemantic)
            .with_cost(CostModel::free())
            .with_observe(ObserveConfig::default().with_sample_every(1)),
        2,
    ));
    for radius in [30.0, 30.0, 10.0] {
        handle
            .handle_form_xml("/search/radial", &radial(185.0, 0.0, radius))
            .expect("healthy origin");
    }
    handle
}

fn radial(ra: f64, dec: f64, radius: f64) -> Vec<(String, String)> {
    vec![
        ("ra".to_string(), format!("{ra:.4}")),
        ("dec".to_string(), format!("{dec:.4}")),
        ("radius".to_string(), format!("{radius:.4}")),
    ]
}

/// The same observability routes the `http_proxy` example mounts.
fn observe_router(handle: Arc<ProxyHandle>) -> Router {
    let metrics_handle = Arc::clone(&handle);
    let trace_handle = Arc::clone(&handle);
    Router::new()
        .route("/metrics", move |_req| {
            Response::ok(
                "text/plain; version=0.0.4; charset=utf-8",
                metrics_handle.metrics_text(),
            )
        })
        .route("/debug/trace", move |req| {
            let jsonl = req
                .query_params()
                .iter()
                .any(|(k, v)| k == "format" && v == "jsonl");
            if jsonl {
                Response::ok("application/x-ndjson", trace_handle.trace_jsonl())
            } else {
                Response::ok("application/json", trace_handle.trace_chrome_json())
            }
        })
}

/// One metrics line is either a comment (`# HELP`/`# TYPE`) or a
/// sample: `name{labels} value` with a parseable float value and a
/// legal metric name.
fn assert_sample_line_well_formed(line: &str) {
    let (series, value) = line
        .rsplit_once(' ')
        .unwrap_or_else(|| panic!("no value separator in line: {line}"));
    assert!(
        value.parse::<f64>().is_ok() || value == "+Inf",
        "unparseable sample value in line: {line}"
    );
    let name = match series.split_once('{') {
        Some((name, rest)) => {
            assert!(rest.ends_with('}'), "unbalanced label braces: {line}");
            let labels = &rest[..rest.len() - 1];
            for pair in labels.split("\",") {
                let pair = pair.trim_end_matches('"');
                let (k, v) = pair
                    .split_once("=\"")
                    .unwrap_or_else(|| panic!("bad label pair `{pair}` in line: {line}"));
                assert!(
                    !k.is_empty() && !v.is_empty(),
                    "empty label in line: {line}"
                );
            }
            name
        }
        None => series,
    };
    assert!(
        !name.is_empty()
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
        "illegal metric name `{name}` in line: {line}"
    );
}

#[test]
fn metrics_endpoint_serves_well_formed_prometheus_text() {
    let handle = warmed_handle();
    let server =
        HttpServer::bind("127.0.0.1:0", observe_router(handle)).expect("bind ephemeral port");
    let client = HttpClient::new(server.addr());

    let response = client.get("/metrics").expect("scrape /metrics");
    assert!(response.status.is_success());
    let text = response.body_text();

    // Well-formedness: every line is a comment or a parseable sample,
    // and every sample's family was declared with # TYPE first.
    let mut declared = std::collections::HashSet::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let family = parts.next().expect("family name");
            let kind = parts.next().expect("family kind");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown metric kind in line: {line}"
            );
            declared.insert(family.to_string());
        } else if !line.starts_with('#') {
            assert_sample_line_well_formed(line);
            let name = line.split([' ', '{']).next().unwrap();
            let family = name
                .strip_suffix("_bucket")
                .or_else(|| name.strip_suffix("_sum"))
                .or_else(|| name.strip_suffix("_count"))
                .unwrap_or(name);
            assert!(
                declared.contains(family),
                "sample for undeclared family `{family}`"
            );
        }
    }

    // Presence: every counter family plus both histogram families.
    for family in [
        "funcproxy_requests_total",
        "funcproxy_coalesced_total",
        "funcproxy_flights_led_total",
        "funcproxy_degraded_hits_total",
        "funcproxy_stale_hits_total",
        "funcproxy_revalidations_total",
        "funcproxy_origin_timeouts_total",
        "funcproxy_origin_retries_total",
        "funcproxy_breaker_opens_total",
        "funcproxy_lock_wait_seconds_total",
        "funcproxy_breaker_open",
        "funcproxy_origin_backoff_hint_ms",
        "funcproxy_phase_latency_seconds",
        "funcproxy_request_latency_seconds",
    ] {
        assert!(declared.contains(family), "family `{family}` missing");
    }

    // Every phase×path and outcome-class cell renders even when empty,
    // so dashboards never see a family appear out of nowhere.
    use fp_suite::proxy::observe::{OutcomeClass, PathClass, Phase};
    for phase in Phase::ALL {
        for path in PathClass::ALL {
            let cell = format!(
                "funcproxy_phase_latency_seconds_count{{phase=\"{}\",path=\"{}\"}}",
                phase.label(),
                path.label()
            );
            assert!(text.contains(&cell), "missing histogram cell: {cell}");
        }
    }
    for class in OutcomeClass::ALL {
        let cell = format!(
            "funcproxy_request_latency_seconds_count{{class=\"{}\"}}",
            class.label()
        );
        assert!(text.contains(&cell), "missing histogram cell: {cell}");
    }

    // Coherence: one outcome sample per request served, and the warmed
    // traffic put samples where they belong.
    assert!(text.contains("funcproxy_requests_total 3"));
    assert!(text.contains("funcproxy_request_latency_seconds_count{class=\"miss\"} 1"));
    assert!(text.contains("funcproxy_request_latency_seconds_count{class=\"exact\"} 1"));
    assert!(text.contains("funcproxy_request_latency_seconds_count{class=\"contained\"} 1"));

    server.shutdown();
}

/// Minimal recursive-descent JSON syntax checker (the vendored
/// `serde_json` stand-in has no dynamic `Value` type). Panics with a
/// byte offset on the first syntax error.
fn assert_valid_json(text: &str) {
    fn skip_ws(b: &[u8], mut i: usize) -> usize {
        while i < b.len() && matches!(b[i], b' ' | b'\t' | b'\n' | b'\r') {
            i += 1;
        }
        i
    }
    fn value(b: &[u8], i: usize) -> usize {
        let i = skip_ws(b, i);
        match b.get(i) {
            Some(b'{') => {
                let mut i = skip_ws(b, i + 1);
                if b.get(i) == Some(&b'}') {
                    return i + 1;
                }
                loop {
                    i = string(b, skip_ws(b, i));
                    i = skip_ws(b, i);
                    assert_eq!(b.get(i), Some(&b':'), "expected `:` at byte {i}");
                    i = skip_ws(b, value(b, i + 1));
                    match b.get(i) {
                        Some(b',') => i += 1,
                        Some(b'}') => return i + 1,
                        other => panic!("expected `,` or `}}` at byte {i}, got {other:?}"),
                    }
                }
            }
            Some(b'[') => {
                let mut i = skip_ws(b, i + 1);
                if b.get(i) == Some(&b']') {
                    return i + 1;
                }
                loop {
                    i = skip_ws(b, value(b, i));
                    match b.get(i) {
                        Some(b',') => i += 1,
                        Some(b']') => return i + 1,
                        other => panic!("expected `,` or `]` at byte {i}, got {other:?}"),
                    }
                }
            }
            Some(b'"') => string(b, i),
            Some(b't') if b[i..].starts_with(b"true") => i + 4,
            Some(b'f') if b[i..].starts_with(b"false") => i + 5,
            Some(b'n') if b[i..].starts_with(b"null") => i + 4,
            Some(c) if c.is_ascii_digit() || *c == b'-' => {
                let mut j = i + 1;
                while j < b.len() && matches!(b[j], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
                {
                    j += 1;
                }
                std::str::from_utf8(&b[i..j])
                    .ok()
                    .and_then(|s| s.parse::<f64>().ok())
                    .unwrap_or_else(|| panic!("bad number at byte {i}"));
                j
            }
            other => panic!("unexpected token at byte {i}: {other:?}"),
        }
    }
    fn string(b: &[u8], i: usize) -> usize {
        assert_eq!(b.get(i), Some(&b'"'), "expected `\"` at byte {i}");
        let mut i = i + 1;
        while i < b.len() {
            match b[i] {
                b'\\' => i += 2,
                b'"' => return i + 1,
                _ => i += 1,
            }
        }
        panic!("unterminated string");
    }
    let b = text.as_bytes();
    let end = skip_ws(b, value(b, 0));
    assert_eq!(end, b.len(), "trailing bytes after JSON value");
}

#[test]
fn trace_endpoints_export_chrome_json_and_jsonl() {
    let handle = warmed_handle();
    let server =
        HttpServer::bind("127.0.0.1:0", observe_router(handle)).expect("bind ephemeral port");
    let client = HttpClient::new(server.addr());

    // Default export: a chrome://tracing document of complete events.
    let response = client.get("/debug/trace").expect("fetch trace");
    assert_eq!(
        response.headers.get("Content-Type"),
        Some("application/json")
    );
    let body = response.body_text();
    assert_valid_json(&body);
    assert!(body.starts_with("{\"traceEvents\":["));
    let events: Vec<&str> = body["{\"traceEvents\":[".len()..]
        .trim_end_matches("]}")
        .split("},{")
        .filter(|e| !e.is_empty())
        .collect();
    assert!(
        !events.is_empty(),
        "1-in-1 sampling over three requests must buffer spans"
    );
    for e in &events {
        assert!(e.contains("\"ph\":\"X\""), "complete events only: {e}");
        assert!(
            e.contains("\"ts\":") && e.contains("\"dur\":"),
            "bad event: {e}"
        );
        assert!(e.contains("\"args\":{\"trace\":"), "untagged event: {e}");
    }
    for name in ["request", "origin.fetch", "serialize"] {
        assert!(
            body.contains(&format!("\"name\":\"{name}\"")),
            "span `{name}` missing from the chrome export"
        );
    }

    // JSON Lines export: one parseable object per line.
    let response = client
        .get("/debug/trace?format=jsonl")
        .expect("fetch jsonl trace");
    assert_eq!(
        response.headers.get("Content-Type"),
        Some("application/x-ndjson")
    );
    let body = response.body_text();
    assert!(!body.trim().is_empty());
    for line in body.lines() {
        assert_valid_json(line);
        assert!(line.contains("\"trace\":") && line.contains("\"dur_us\":"));
        assert!(line.contains("\"name\":\""));
    }

    server.shutdown();
}

/// A proxy over a chaos origin, for driving the Retry-After chain.
fn chaos_fixture() -> (ProxyHandle, Arc<ChaosOrigin>) {
    let clock = MockClock::shared();
    let site = SkySite::new(Catalog::generate(&CatalogSpec {
        seed: 5,
        objects: 8_000,
        ..CatalogSpec::default()
    }));
    let chaos = Arc::new(ChaosOrigin::with_clock(
        Arc::new(SiteOrigin::new(site)),
        Arc::clone(&clock) as Arc<dyn Clock>,
    ));
    let handle = ProxyHandle::with_shards_clocked(
        TemplateManager::with_sky_defaults(),
        Arc::clone(&chaos) as Arc<dyn Origin>,
        ProxyConfig::default()
            .with_scheme(Scheme::FullSemantic)
            .with_cost(CostModel::free())
            .with_resilience(ResilienceConfig::fast_test()),
        2,
        Arc::clone(&clock) as Arc<dyn Clock>,
    );
    (handle, chaos)
}

/// Regression for the `Retry-After` bugfix: with the breaker still
/// closed, a transient failure must fall back to the retry scheduler's
/// next backoff delay instead of omitting the header entirely.
#[test]
fn retry_after_falls_back_to_backoff_hint_when_breaker_closed() {
    let (handle, chaos) = chaos_fixture();
    chaos.set_default_fault(Fault::Unavailable);

    let err = handle
        .handle_form_xml("/search/radial", &radial(185.0, 0.0, 10.0))
        .unwrap_err();
    let stats = handle.runtime_stats();
    assert_eq!(
        stats.breaker_retry_after_ms, 0,
        "two failures must not open the fast_test breaker (threshold 3)"
    );
    assert!(
        stats.origin_backoff_hint_ms > 0,
        "the retried fetch must publish its backoff delay as a hint"
    );

    let secs = handle
        .retry_after_secs(&err)
        .expect("transient failure carries a Retry-After");
    assert!(secs >= 1, "Retry-After must round up to at least 1s");
    assert_eq!(secs, stats.origin_backoff_hint_ms.div_ceil(1000).max(1));
}

#[test]
fn retry_after_reports_breaker_cooldown_once_open() {
    let (handle, chaos) = chaos_fixture();
    chaos.set_default_fault(Fault::Unavailable);

    // fast_test opens the breaker after 3 consecutive failures; two
    // requests (one retry each) push the count past the threshold.
    let mut last = None;
    for _ in 0..2 {
        last = Some(
            handle
                .handle_form_xml("/search/radial", &radial(185.0, 0.0, 10.0))
                .unwrap_err(),
        );
    }
    let stats = handle.runtime_stats();
    assert!(stats.breaker_retry_after_ms > 0, "breaker must be open");

    let secs = handle
        .retry_after_secs(&last.expect("at least one error"))
        .expect("open breaker implies a transient failure");
    assert_eq!(secs, stats.breaker_retry_after_ms.div_ceil(1000).max(1));
}

#[test]
fn retry_after_is_absent_for_non_transient_errors() {
    let (handle, chaos) = chaos_fixture();
    chaos.script(vec![Fault::Rejected]);
    let err = handle
        .handle_form_xml("/search/radial", &radial(185.0, 0.0, 10.0))
        .unwrap_err();
    assert_eq!(
        handle.retry_after_secs(&err),
        None,
        "a rejection is the client's problem, not a capacity signal"
    );
}
