//! The nonblocking edge over real sockets: HTTP/1.1 keep-alive and
//! pipelining, the slowloris read deadline, every admission-control
//! gate, and graceful drain — all against a live `EdgeServer` on
//! loopback TCP.

use fp_suite::edge::{EdgeConfig, EdgeServer, EdgeService};
use fp_suite::httpd::{HttpClient, Request, Response, Status};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A service whose behavior the tests control: `handle` sleeps for
/// `delay` then echoes the path; `/fast/...` paths are served inline
/// when `fast` is on.
struct TestService {
    delay: Duration,
    fast: bool,
}

impl TestService {
    fn instant() -> Arc<TestService> {
        Arc::new(TestService {
            delay: Duration::ZERO,
            fast: false,
        })
    }

    fn slow(delay: Duration) -> Arc<TestService> {
        Arc::new(TestService { delay, fast: false })
    }
}

impl EdgeService for TestService {
    fn handle(&self, request: &Request) -> Response {
        if !self.delay.is_zero() {
            std::thread::sleep(self.delay);
        }
        Response::ok("text/plain", format!("handled:{}", request.path))
    }

    fn try_fast(&self, request: &Request) -> Option<Response> {
        (self.fast && request.path.starts_with("/fast"))
            .then(|| Response::ok("text/plain", format!("fast:{}", request.path)))
    }
}

fn connect(server: &EdgeServer) -> TcpStream {
    let stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .unwrap();
    stream
}

/// Reads until `predicate` is satisfied or the deadline passes; returns
/// everything read. Tolerates read timeouts (the server is allowed to
/// think).
fn read_until(
    stream: &mut TcpStream,
    deadline: Duration,
    predicate: impl Fn(&[u8]) -> bool,
) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let end = Instant::now() + deadline;
    while !predicate(&buf) && Instant::now() < end {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => panic!("read failed: {e}"),
        }
    }
    buf
}

fn contains(haystack: &[u8], needle: &str) -> bool {
    haystack
        .windows(needle.len())
        .any(|w| w == needle.as_bytes())
}

#[test]
fn keep_alive_connection_serves_many_requests() {
    let server = EdgeServer::bind(
        "127.0.0.1:0",
        TestService::instant(),
        EdgeConfig::default().with_workers(2),
    )
    .unwrap();
    // One keep-alive client connection, several round trips.
    let client = HttpClient::new(server.addr());
    for i in 0..5 {
        let response = client.get(&format!("/r{i}")).expect("request succeeds");
        assert_eq!(response.status, Status::OK);
        assert_eq!(response.body_text(), format!("handled:/r{i}"));
    }
    let snap = server.stats();
    assert_eq!(snap.requests, 5);
    assert_eq!(snap.conns_accepted, 1, "keep-alive reuses one connection");
    server.shutdown();
}

#[test]
fn pipelined_requests_answer_in_request_order() {
    let server = EdgeServer::bind(
        "127.0.0.1:0",
        TestService::slow(Duration::from_millis(20)),
        EdgeConfig::default().with_workers(4),
    )
    .unwrap();
    let mut stream = connect(&server);
    // Both requests in ONE write, before any response: real pipelining.
    stream
        .write_all(b"GET /first HTTP/1.1\r\nHost: t\r\n\r\nGET /second HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let buf = read_until(&mut stream, Duration::from_secs(5), |b| {
        contains(b, "handled:/first") && contains(b, "handled:/second")
    });
    let text = String::from_utf8_lossy(&buf);
    let first = text.find("handled:/first").expect("first answered");
    let second = text.find("handled:/second").expect("second answered");
    assert!(
        first < second,
        "responses must come back in request order:\n{text}"
    );
    let snap = server.stats();
    assert_eq!(snap.requests, 2);
    assert!(
        snap.pipelined >= 1,
        "second request parsed while first was in flight"
    );
    server.shutdown();
}

#[test]
fn slowloris_dribble_gets_408_and_the_connection_closes() {
    let server = EdgeServer::bind(
        "127.0.0.1:0",
        TestService::instant(),
        EdgeConfig::default()
            .with_workers(1)
            .with_read_deadline(Duration::from_millis(150)),
    )
    .unwrap();
    let mut stream = connect(&server);
    // Dribble a request head byte by byte, never finishing it. Writes
    // may start failing once the server gives up on us — that's the
    // point.
    for byte in b"GET / HT" {
        if stream.write_all(&[*byte]).is_err() {
            break;
        }
        std::thread::sleep(Duration::from_millis(40));
    }
    // Past the deadline the server answers 408 and closes.
    let buf = read_until(&mut stream, Duration::from_secs(5), |b| {
        contains(b, "HTTP/1.1 408")
    });
    assert!(
        contains(&buf, "HTTP/1.1 408"),
        "expected 408, got: {}",
        String::from_utf8_lossy(&buf)
    );
    // EOF follows: keep reading until close.
    let rest = read_until(&mut stream, Duration::from_secs(2), |_| false);
    let _ = rest;
    assert_eq!(server.stats().read_timeouts, 1);
    server.shutdown();
}

#[test]
fn connection_cap_rejects_with_503_and_retry_after() {
    let server = EdgeServer::bind(
        "127.0.0.1:0",
        TestService::instant(),
        EdgeConfig::default()
            .with_workers(1)
            .with_max_connections(1),
    )
    .unwrap();
    // Occupy the single slot with a served keep-alive connection.
    let client = HttpClient::new(server.addr());
    assert_eq!(client.get("/hold").unwrap().status, Status::OK);
    // The next connect is refused at accept.
    let mut rejected = connect(&server);
    let buf = read_until(&mut rejected, Duration::from_secs(5), |b| {
        contains(b, "HTTP/1.1 503")
    });
    let text = String::from_utf8_lossy(&buf);
    assert!(text.contains("HTTP/1.1 503"), "expected 503, got: {text}");
    assert!(
        text.to_ascii_lowercase().contains("retry-after: 1"),
        "503 must carry Retry-After: {text}"
    );
    assert_eq!(server.stats().conns_rejected, 1);
    server.shutdown();
}

#[test]
fn full_queue_sheds_requests_with_503_retry_after() {
    // Zero workers: jobs queue but are never served, so the second
    // offload finds the 1-deep queue full and is shed.
    let server = EdgeServer::bind(
        "127.0.0.1:0",
        TestService::instant(),
        EdgeConfig::default().with_workers(0).with_queue_depth(1),
    )
    .unwrap();
    let mut first = connect(&server);
    first
        .write_all(b"GET /queued HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    // Wait until the first request is actually queued.
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.stats().offloaded == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(server.stats().offloaded, 1);

    let mut second = connect(&server);
    second
        .write_all(b"GET /shed HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let buf = read_until(&mut second, Duration::from_secs(5), |b| {
        contains(b, "HTTP/1.1 503")
    });
    let text = String::from_utf8_lossy(&buf);
    assert!(text.contains("HTTP/1.1 503"), "expected 503, got: {text}");
    assert!(
        text.to_ascii_lowercase().contains("retry-after"),
        "shed must carry Retry-After: {text}"
    );
    assert_eq!(server.stats().shed_queue_full, 1);
    // The shed connection stays usable — sheds do not close keep-alive.
    server.shutdown();
}

#[test]
fn fast_path_serves_inline_with_zero_workers() {
    // No workers at all: only the reactor's inline path can answer.
    let service = Arc::new(TestService {
        delay: Duration::ZERO,
        fast: true,
    });
    let server = EdgeServer::bind(
        "127.0.0.1:0",
        service,
        EdgeConfig::default().with_workers(0),
    )
    .unwrap();
    assert_eq!(server.thread_count(), 1, "reactor only");
    let client = HttpClient::new(server.addr());
    let response = client.get("/fast/x").expect("fast path answers");
    assert_eq!(response.status, Status::OK);
    assert_eq!(response.body_text(), "fast:/fast/x");
    let snap = server.stats();
    assert_eq!(snap.fast_path, 1);
    assert_eq!(snap.offloaded, 0);
    server.shutdown();
}

#[test]
fn malformed_request_gets_400_and_close() {
    let server = EdgeServer::bind(
        "127.0.0.1:0",
        TestService::instant(),
        EdgeConfig::default().with_workers(1),
    )
    .unwrap();
    let mut stream = connect(&server);
    stream
        .write_all(b"BLORP / HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let buf = read_until(&mut stream, Duration::from_secs(5), |b| {
        contains(b, "HTTP/1.1 400")
    });
    assert!(
        contains(&buf, "HTTP/1.1 400"),
        "expected 400, got: {}",
        String::from_utf8_lossy(&buf)
    );
    assert_eq!(server.stats().bad_requests, 1);
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_the_in_flight_request() {
    let server = EdgeServer::bind(
        "127.0.0.1:0",
        TestService::slow(Duration::from_millis(300)),
        EdgeConfig::default().with_workers(1),
    )
    .unwrap();
    let mut stream = connect(&server);
    stream
        .write_all(b"GET /inflight HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    // Let the request reach the worker, then start the drain.
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.stats().offloaded == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let started = Instant::now();
    server.shutdown_graceful(Duration::from_secs(5));
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "drain must finish well before the deadline"
    );
    // The in-flight response was flushed before the server exited.
    let buf = read_until(&mut stream, Duration::from_secs(2), |b| {
        contains(b, "handled:/inflight")
    });
    assert!(
        contains(&buf, "handled:/inflight"),
        "in-flight request must be answered during drain, got: {}",
        String::from_utf8_lossy(&buf)
    );
}
