//! Property tests for the cluster slot map (satellite of the fleet PR):
//! the rendezvous-hashing invariants the failover design leans on.
//!
//! 1. **Total coverage** — for any non-empty live set, every slot (and
//!    so every residual key) has exactly one owner, and the owner is
//!    the head of the slot's preference list restricted to live nodes.
//! 2. **Minimal remap** — removing (or adding) one node moves only the
//!    slots that node owned (or wins): over random keys, the remapped
//!    fraction stays near `1/N`, never a wholesale reshuffle.
//! 3. **View agreement** — ownership is a pure function of the live
//!    set, so any two nodes sharing a view route every key identically
//!    (ownership is independent of the order the live list is given
//!    in).

use fp_suite::proxy::cluster::{owner, owner_of_key, preference, slot_of, NodeId, SLOT_COUNT};
use proptest::prelude::*;

fn fleet(n: u16) -> Vec<NodeId> {
    (0..n).map(NodeId).collect()
}

/// Strategy: a residual-key-shaped string (template name + predicate
/// residue), arbitrary enough to exercise the hash.
fn residual_key() -> impl Strategy<Value = String> {
    ("[a-z]{1,8}", 0u32..1_000_000u32).prop_map(|(tpl, residue)| format!("{tpl}|top={residue}"))
}

proptest! {
    #[test]
    fn every_key_has_exactly_one_owner_while_any_node_lives(
        key in residual_key(),
        n in 1u16..=12,
    ) {
        let live = fleet(n);
        let slot = slot_of(&key);
        prop_assert!(slot < SLOT_COUNT);
        let who = owner_of_key(&key, &live);
        prop_assert!(who.is_some());
        // The owner is the head of the slot's preference chain.
        let pref = preference(slot, &live);
        prop_assert_eq!(who, pref.first().copied());
    }

    #[test]
    fn removing_one_node_remaps_about_one_nth_of_keys(
        keys in proptest::collection::vec(residual_key(), 200..400),
        n in 2u16..=10,
        victim in 0u16..10,
    ) {
        let victim = victim % n;
        let all = fleet(n);
        let survivors: Vec<NodeId> =
            all.iter().copied().filter(|node| node.0 != victim).collect();
        let mut moved = 0usize;
        for key in &keys {
            let before = owner_of_key(key, &all).unwrap();
            let after = owner_of_key(key, &survivors).unwrap();
            if before != after {
                // Only the victim's keys may move, and they must land
                // on the next live entry of their slot's chain.
                prop_assert_eq!(before, NodeId(victim));
                let pref = preference(slot_of(key), &all);
                let next = pref
                    .iter()
                    .copied()
                    .find(|node| node.0 != victim)
                    .unwrap();
                prop_assert_eq!(after, next);
                moved += 1;
            }
        }
        // Expected fraction is 1/n; allow generous sampling slack
        // (keys are few and the hash is not perfectly uniform).
        let frac = moved as f64 / keys.len() as f64;
        let bound = 1.0 / f64::from(n) + 0.2;
        prop_assert!(
            frac <= bound,
            "removal of 1/{} remapped {:.0}% of keys",
            n,
            frac * 100.0
        );
    }

    #[test]
    fn adding_one_node_steals_at_most_about_one_nth(
        keys in proptest::collection::vec(residual_key(), 200..400),
        n in 1u16..=9,
    ) {
        let before_fleet = fleet(n);
        let after_fleet = fleet(n + 1);
        let newcomer = NodeId(n);
        let mut moved = 0usize;
        for key in &keys {
            let before = owner_of_key(key, &before_fleet).unwrap();
            let after = owner_of_key(key, &after_fleet).unwrap();
            if before != after {
                // A key only moves *to* the newcomer.
                prop_assert_eq!(after, newcomer);
                moved += 1;
            }
        }
        let frac = moved as f64 / keys.len() as f64;
        let bound = 1.0 / f64::from(n + 1) + 0.2;
        prop_assert!(
            frac <= bound,
            "adding node {} stole {:.0}% of keys",
            n,
            frac * 100.0
        );
    }

    #[test]
    fn ownership_is_independent_of_live_list_order(
        key in residual_key(),
        n in 1u16..=8,
        seed in any::<u64>(),
    ) {
        let live = fleet(n);
        // A cheap seeded shuffle (xorshift swaps).
        let mut shuffled = live.clone();
        let mut state = seed | 1;
        for i in (1..shuffled.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            shuffled.swap(i, (state as usize) % (i + 1));
        }
        prop_assert_eq!(owner_of_key(&key, &live), owner_of_key(&key, &shuffled));
        let slot = slot_of(&key);
        prop_assert_eq!(owner(slot, &live), owner(slot, &shuffled));
    }
}
