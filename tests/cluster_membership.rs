//! Deterministic membership matrix on the virtual clock (satellite of
//! the fleet PR): the full partition → suspect → dead → failover →
//! rejoin arc, plus the stale-epoch rejoiner rule, with no real time
//! and no real sockets anywhere.
//!
//! The in-process fleet runs three full proxies behind a
//! `ClusterRouter`; `kill` models a crash/partition at the transport,
//! `MockClock::advance` + `tick` drive the SWIM loop one deterministic
//! round at a time.

use std::sync::Arc;
use std::time::Duration;

use fp_suite::proxy::cluster::{
    routing_key, ClusterConfig, ClusterRouter, GossipEntry, Membership, MembershipConfig,
    MembershipEvent, NodeId, NodeStatus, PeerError, PeerTransport, ServedBy,
};
use fp_suite::proxy::metrics::Outcome;
use fp_suite::proxy::resilience::MockClock;
use fp_suite::proxy::template::TemplateManager;
use fp_suite::proxy::{CostModel, ProxyConfig, ProxyHandle, SiteOrigin, XmlResponse};
use fp_suite::skyserver::{Catalog, CatalogSpec, SkySite};

const TICK: Duration = Duration::from_millis(20);

fn fleet(n: usize, clock: &Arc<MockClock>) -> ClusterRouter {
    let handles = (0..n)
        .map(|_| {
            let site = SkySite::new(Catalog::generate(&CatalogSpec::small_test()));
            ProxyHandle::with_shards_clocked(
                TemplateManager::with_sky_defaults(),
                Arc::new(SiteOrigin::new(site)),
                ProxyConfig::default().with_cost(CostModel::free()),
                2,
                clock.clone(),
            )
        })
        .collect();
    ClusterRouter::in_process(handles, ClusterConfig::fast_test(), clock.clone())
}

fn radial(ra: f64, radius: f64) -> Vec<(String, String)> {
    vec![
        ("ra".to_string(), ra.to_string()),
        ("dec".to_string(), "0".to_string()),
        ("radius".to_string(), radius.to_string()),
    ]
}

/// Advances virtual time one ping interval and runs a protocol round,
/// collecting the observed events, until `done` or `max` rounds.
fn run_rounds(
    router: &ClusterRouter,
    clock: &MockClock,
    max: usize,
    mut done: impl FnMut(&ClusterRouter) -> bool,
) -> Vec<(NodeId, MembershipEvent)> {
    let mut seen = Vec::new();
    for _ in 0..max {
        clock.advance(TICK);
        seen.extend(router.tick());
        if done(router) {
            break;
        }
    }
    seen
}

/// A request whose routing key node `victim` owns under the full view.
fn fields_owned_by(router: &ClusterRouter, victim: NodeId) -> (Vec<(String, String)>, String) {
    for step in 0..200 {
        let fields = radial(120.0 + f64::from(step) * 0.7, 5.0 + f64::from(step % 11));
        let bound = router
            .node(0)
            .manager()
            .resolve_form("/search/radial", &fields)
            .unwrap();
        let key = routing_key(&bound.residual_key, &bound.region);
        if router.owner_seen_by(0, &key) == Some(victim) {
            return (fields, key);
        }
    }
    panic!("no routing key owned by {victim} in 200 candidates");
}

#[test]
fn partition_suspect_dead_failover_then_rejoin_reclaims_slots() {
    let clock = MockClock::shared();
    let router = fleet(3, &clock);
    let victim = NodeId(2);
    let (fields, key) = fields_owned_by(&router, victim);

    // Sanity: with everyone alive, node 0 routes the key to the victim.
    assert_eq!(router.owner_seen_by(0, &key), Some(victim));

    // Partition the victim. Pings fail (direct and indirect), so within
    // a few rounds the survivors suspect it...
    router.kill(victim.0 as usize);
    let events = run_rounds(&router, &clock, 10, |r| {
        r.status_seen_by(0, victim) == Some(NodeStatus::Suspect)
    });
    assert_eq!(
        router.status_seen_by(0, victim),
        Some(NodeStatus::Suspect),
        "events so far: {events:?}"
    );

    // ...and the suspicion alone already fails its slots over.
    let failover_owner = router.owner_seen_by(0, &key).unwrap();
    assert_ne!(failover_owner, victim, "suspect's slots must fail over");

    // The cluster keeps answering the victim's keys during the outage,
    // and never via the dead node.
    let served = router.handle_form(0, "/search/radial", &fields).unwrap();
    match served.served_by {
        ServedBy::Local(node) | ServedBy::Peer(node) => assert_ne!(node, victim),
    }

    // Past the suspect timeout the verdict hardens to Dead.
    let events = run_rounds(&router, &clock, 10, |r| {
        r.status_seen_by(0, victim) == Some(NodeStatus::Dead)
    });
    assert_eq!(router.status_seen_by(0, victim), Some(NodeStatus::Dead));
    assert!(
        events
            .iter()
            .any(|(_, e)| matches!(e, MembershipEvent::Died(n) if *n == victim)),
        "a Died event must be observed: {events:?}"
    );
    assert_ne!(router.owner_seen_by(0, &key).unwrap(), victim);

    // Rejoin with a bumped incarnation: the fresh Alive claim
    // supersedes the Dead verdict and the slots come back.
    router.revive(victim.0 as usize);
    let events = run_rounds(&router, &clock, 20, |r| {
        r.status_seen_by(0, victim) == Some(NodeStatus::Alive)
            && r.status_seen_by(1, victim) == Some(NodeStatus::Alive)
    });
    assert_eq!(router.status_seen_by(0, victim), Some(NodeStatus::Alive));
    assert!(
        events
            .iter()
            .any(|(_, e)| matches!(e, MembershipEvent::Rejoined(n) if *n == victim)),
        "a Rejoined event must be observed: {events:?}"
    );
    assert_eq!(
        router.owner_seen_by(0, &key),
        Some(victim),
        "rejoiner must reclaim its slots"
    );
}

#[test]
fn stale_epoch_rejoiner_retires_entries_before_serving() {
    let clock = MockClock::shared();
    let router = fleet(3, &clock);
    let fields = radial(200.0, 12.0);

    // Warm node 2's local cache (probe misses, local origin path
    // caches), then verify the warm hit.
    let first = router.handle_form(2, "/search/radial", &fields).unwrap();
    assert_eq!(first.response.metrics.outcome, Outcome::Forwarded);
    let warm = router.handle_form(2, "/search/radial", &fields).unwrap();
    assert_eq!(warm.response.metrics.outcome, Outcome::Exact);

    // Node 2 crashes; while it is gone, the fleet advances to data
    // release 5 and gossips it around.
    router.kill(2);
    router.node(0).set_epoch(5);
    run_rounds(&router, &clock, 10, |r| r.node(1).current_epoch() == 5);
    assert_eq!(
        router.node(1).current_epoch(),
        5,
        "gossip must carry epochs"
    );
    assert_eq!(router.node(2).current_epoch(), 0, "dead node hears nothing");

    // The rejoiner still holds its stale entry. Gossip must bring it to
    // epoch 5 — retiring the entry — before it serves the query again.
    router.revive(2);
    run_rounds(&router, &clock, 20, |r| r.node(2).current_epoch() == 5);
    assert_eq!(router.node(2).current_epoch(), 5);
    let after = router.handle_form(2, "/search/radial", &fields).unwrap();
    assert_ne!(
        after.response.metrics.outcome,
        Outcome::Exact,
        "stale-epoch entry must not serve after rejoin"
    );
}

/// A transport where every exchange fails — a fully partitioned node's
/// view of the world.
struct DarkTransport;

impl PeerTransport for DarkTransport {
    fn ping(
        &self,
        _from: NodeId,
        _to: NodeId,
        _digest: &[GossipEntry],
    ) -> Result<Vec<GossipEntry>, PeerError> {
        Err(PeerError::Timeout)
    }

    fn ping_req(&self, _from: NodeId, _via: NodeId, _target: NodeId) -> Result<(), PeerError> {
        Err(PeerError::Timeout)
    }

    fn probe(
        &self,
        _from: NodeId,
        _to: NodeId,
        _sql: &str,
    ) -> Result<Option<XmlResponse>, PeerError> {
        Err(PeerError::Timeout)
    }
}

#[test]
fn suspicion_hardens_to_dead_only_after_the_timeout() {
    let clock = MockClock::shared();
    let cfg = MembershipConfig::fast_test();
    let timeout = cfg.suspect_timeout;
    let mut m = Membership::new(NodeId(0), &[NodeId(1)], cfg, clock.clone());

    let events = m.note_probe_failure(NodeId(1));
    assert_eq!(events, vec![MembershipEvent::Suspected(NodeId(1))]);
    assert_eq!(m.status_of(NodeId(1)), Some(NodeStatus::Suspect));
    assert_eq!(m.live_nodes(), vec![NodeId(0)]);

    // One tick short of the timeout: still only a suspicion.
    clock.advance(timeout - Duration::from_millis(1));
    let events = m.tick(&DarkTransport);
    assert!(
        !events.iter().any(|e| matches!(e, MembershipEvent::Died(_))),
        "premature death: {events:?}"
    );
    assert_eq!(m.status_of(NodeId(1)), Some(NodeStatus::Suspect));

    clock.advance(Duration::from_millis(1));
    let events = m.tick(&DarkTransport);
    assert!(events.contains(&MembershipEvent::Died(NodeId(1))));
    assert_eq!(m.status_of(NodeId(1)), Some(NodeStatus::Dead));
}

#[test]
fn false_suspicion_about_self_is_refuted_by_incarnation_bump() {
    let clock = MockClock::shared();
    let mut m = Membership::new(
        NodeId(0),
        &[NodeId(1)],
        MembershipConfig::fast_test(),
        clock.clone(),
    );
    assert_eq!(m.incarnation(), 0);

    // A peer gossips that *we* are suspect at our current incarnation.
    let rumor = GossipEntry {
        node: NodeId(0),
        incarnation: 0,
        status: NodeStatus::Suspect,
        epoch: 0,
        breaker_open: false,
    };
    let events = m.merge(&[rumor]);
    assert!(events.contains(&MembershipEvent::SelfRefuted));
    assert_eq!(
        m.incarnation(),
        1,
        "refutation must supersede the rumor's incarnation"
    );
    // Our digest now carries the refutation for the next exchange.
    let own = m
        .digest()
        .into_iter()
        .find(|e| e.node == NodeId(0))
        .unwrap();
    assert_eq!(own.incarnation, 1);
    assert_eq!(own.status, NodeStatus::Alive);

    // A stale rumor at the old incarnation no longer moves us.
    let events = m.merge(&[rumor]);
    assert!(events.is_empty());
    assert_eq!(m.incarnation(), 1);
}
