//! Storage-fault integration tests: the disk tier under injected I/O
//! errors, end to end through the serving path.
//!
//! Three pinned behaviors:
//!
//! 1. **ENOSPC never costs a request.** A full disk degrades the tier
//!    to eviction-only mode — every query still answers byte-identically
//!    (availability 1.000) — and when the disk heals, a periodic
//!    re-probe restores demotion. The `tier_degraded` /
//!    `tier_recoveries` / `slab_io_errors` counters prove the round
//!    trip.
//! 2. **Snapshot write errors never poison serving.** A failing
//!    `.fpmeta` write is logged and counted (`snapshot_io_errors`); the
//!    proxy keeps answering from RAM and the next healthy pass writes
//!    the metadata.
//! 3. **Corrupted slab segments are read-repaired.** A CRC-failing
//!    demoted segment is quarantined and refetched through the
//!    resilient path — the client still gets the right bytes, and
//!    `read_repairs` counts the heal.

use fp_suite::proxy::cache::{IoFault, IoOp, SlabIo, TierConfig};
use fp_suite::proxy::template::TemplateManager;
use fp_suite::proxy::{
    CostModel, CountingOrigin, LifecycleConfig, Origin, ProxyConfig, ProxyHandle, Scheme,
    SiteOrigin,
};
use fp_suite::skyserver::{Catalog, CatalogSpec, SkySite};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Well-separated radial queries — each its own exact-match entry.
fn queries(n: usize) -> Vec<Vec<(String, String)>> {
    (0..n)
        .map(|i| {
            vec![
                ("ra".to_string(), format!("{:.4}", 15.0 + 16.0 * (i as f64))),
                (
                    "dec".to_string(),
                    format!("{:.4}", -30.0 + 3.0 * (i as f64)),
                ),
                ("radius".to_string(), "7.0000".to_string()),
            ]
        })
        .collect()
}

fn site() -> SkySite {
    SkySite::new(Catalog::generate(&CatalogSpec {
        seed: 77,
        objects: 9_000,
        ..CatalogSpec::default()
    }))
}

fn make_handle(
    site: &SkySite,
    budget: Option<usize>,
    tier: Option<(&Path, &SlabIo)>,
    snap_dir: Option<&Path>,
) -> (ProxyHandle, Arc<CountingOrigin>) {
    let origin = Arc::new(CountingOrigin::new(Arc::new(SiteOrigin::new(site.clone()))));
    let mut config = ProxyConfig::default()
        .with_scheme(Scheme::FullSemantic)
        .with_cost(CostModel::free())
        .with_capacity(budget);
    if let Some((dir, io)) = tier {
        config = config.with_tier_config(TierConfig::new(dir).with_io(io.clone()));
    }
    if let Some(dir) = snap_dir {
        config = config.with_lifecycle(
            LifecycleConfig::default()
                .with_default_ttl(Duration::from_secs(3600))
                .with_epoch(1)
                // Long interval: snapshots happen via snapshot_now only.
                .with_snapshot(dir, Duration::from_secs(3600)),
        );
    }
    let handle = ProxyHandle::with_shards(
        TemplateManager::with_sky_defaults(),
        Arc::clone(&origin) as Arc<dyn Origin>,
        config,
        2,
    );
    (handle, origin)
}

/// Oracle bodies and the working-set size, from an unbounded RAM proxy.
fn oracle(site: &SkySite, queries: &[Vec<(String, String)>]) -> (Vec<Vec<u8>>, usize) {
    let (handle, _) = make_handle(site, None, None, None);
    let truth: Vec<Vec<u8>> = queries
        .iter()
        .map(|q| {
            handle
                .handle_form_xml("/search/radial", q)
                .expect("oracle serves")
                .body
        })
        .collect();
    let working_set = handle.cache_stats().bytes.max(1);
    (truth, working_set)
}

/// ENOSPC acceptance: with every slab append failing, the tier degrades
/// to eviction-only mode and **no request is lost** — then a heal plus
/// continued traffic re-probes the disk and recovery resumes demotion.
#[test]
fn enospc_degrades_to_eviction_only_with_full_availability() {
    let site = site();
    let queries = queries(20);
    let (truth, working_set) = oracle(&site, &queries);

    let tier_dir = fresh_dir("fp_enospc");
    let io = SlabIo::healthy();
    // Disk full from the very first demotion attempt.
    io.inject(IoOp::Append, IoFault::Enospc);
    let (handle, _) = make_handle(&site, Some(working_set / 4), Some((&tier_dir, &io)), None);

    // Three full passes under ENOSPC: the budget wants to demote on
    // every pass, every attempt fails, and every answer stays right.
    for round in 0..3 {
        for (k, q) in queries.iter().enumerate() {
            let r = handle
                .handle_form_xml("/search/radial", q)
                .expect("request must serve under ENOSPC");
            assert_eq!(
                r.body, truth[k],
                "round {round} query {k}: wrong bytes under a full disk"
            );
        }
    }
    handle.quiesce_revalidations();
    let mid = handle.runtime_stats();
    assert!(
        mid.tier_degraded >= 1,
        "persistent ENOSPC must trip eviction-only mode"
    );
    assert!(
        mid.slab_io_errors >= 1,
        "failed appends must be counted, got {}",
        mid.slab_io_errors
    );
    assert_eq!(mid.tier_recoveries, 0, "disk has not healed yet");

    // The disk heals. Demotion pressure continues; within a few passes
    // a re-probe append lands and the tier recovers.
    io.heal_all();
    for _ in 0..6 {
        for (k, q) in queries.iter().enumerate() {
            let r = handle
                .handle_form_xml("/search/radial", q)
                .expect("request must serve after heal");
            assert_eq!(r.body, truth[k]);
        }
    }
    handle.quiesce_revalidations();
    let end = handle.runtime_stats();
    assert!(
        end.tier_recoveries >= 1,
        "the re-probe must detect the healed disk (degraded={}, io_errors={})",
        end.tier_degraded,
        end.slab_io_errors
    );
    assert!(
        handle.cache_stats().demotions > 0,
        "demotion must resume after recovery"
    );
    assert!(io.faults_injected() > 0);
    std::fs::remove_dir_all(&tier_dir).ok();
}

/// Satellite: `.fpmeta` snapshot write errors are counted and isolated
/// — `snapshot_now` still returns Ok, serving continues from RAM, and
/// the next healthy pass writes the metadata for real.
#[test]
fn snapshot_write_faults_never_poison_serving() {
    let site = site();
    let queries = queries(6);
    let (truth, _) = oracle(&site, &queries);

    let tier_dir = fresh_dir("fp_snapfault_tier");
    let snap_dir = fresh_dir("fp_snapfault_snap");
    let io = SlabIo::healthy();
    let (handle, _) = make_handle(&site, None, Some((&tier_dir, &io)), Some(&snap_dir));
    for q in &queries {
        handle.handle_form_xml("/search/radial", q).expect("serves");
    }
    handle.quiesce_revalidations();

    // Disk full exactly when the tier metadata is being written.
    io.inject(IoOp::MetaWrite, IoFault::Enospc);
    let written = handle
        .snapshot_now()
        .expect("a failed snapshot must never surface as an error");
    assert_eq!(written, 0, "no shard may claim a write that failed");
    let stats = handle.runtime_stats();
    assert!(
        stats.snapshot_io_errors >= 1,
        "the failed meta write must be counted"
    );

    // Serving is untouched: every answer still comes out of RAM.
    for (k, q) in queries.iter().enumerate() {
        let r = handle.handle_form_xml("/search/radial", q).expect("serves");
        assert_eq!(
            r.body, truth[k],
            "query {k}: snapshot failure leaked into the serving path"
        );
    }

    // Healed: the shards are still dirty, so the retry writes them.
    io.heal_all();
    let written = handle.snapshot_now().expect("healthy snapshot");
    assert!(
        written >= 1,
        "the failed shards must stay dirty and retry on the next pass"
    );
    std::fs::remove_dir_all(&tier_dir).ok();
    std::fs::remove_dir_all(&snap_dir).ok();
}

/// A demoted segment whose bytes rot on disk fails its CRC at serve
/// time: the entry is quarantined and refetched from origin — the
/// client sees the right bytes, never the rotten ones, and the repair
/// is counted.
#[test]
fn corrupted_demoted_segment_is_read_repaired() {
    let site = site();
    let queries = queries(20);
    let (truth, working_set) = oracle(&site, &queries);

    let tier_dir = fresh_dir("fp_readrepair");
    let io = SlabIo::healthy();
    let (handle, _) = make_handle(&site, Some(working_set / 4), Some((&tier_dir, &io)), None);

    // Two passes so the budget demotes the long tail to the slab.
    for _ in 0..2 {
        for q in &queries {
            handle.handle_form_xml("/search/radial", q).expect("serves");
        }
    }
    handle.quiesce_revalidations();
    assert!(
        handle.cache_stats().disk_entries > 0,
        "the long tail must live on the slab for this test to bite"
    );

    // Rot one byte in the middle of every slab shard — the middle of
    // the file is payload bytes of some demoted entry, so at least one
    // live segment's CRC breaks.
    let mut rotted = 0;
    for entry in std::fs::read_dir(&tier_dir).expect("tier dir") {
        let path = entry.expect("entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("fpslab") {
            continue;
        }
        let mut bytes = std::fs::read(&path).expect("slab readable");
        if bytes.len() <= 64 {
            continue;
        }
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("slab writable");
        rotted += 1;
    }
    assert!(rotted > 0, "no slab file grew enough to corrupt");

    // Re-serve everything: the rotten segment is detected, repaired,
    // and the client still gets byte-identical answers.
    for (k, q) in queries.iter().enumerate() {
        let r = handle.handle_form_xml("/search/radial", q).expect("serves");
        assert_eq!(
            r.body, truth[k],
            "query {k}: a rotten slab byte reached the client"
        );
    }
    handle.quiesce_revalidations();
    let stats = handle.runtime_stats();
    assert!(
        stats.read_repairs >= 1,
        "the CRC failure must be repaired and counted (corrupt_segments={})",
        handle.cache_stats().slab_corrupt_segments
    );
    std::fs::remove_dir_all(&tier_dir).ok();
}
