//! Property tests for the disk tier's slab format (satellite of the
//! tiered-cache PR): whatever goes into a slab must come back out of the
//! mmap byte-for-byte, at both levels of the stack.
//!
//! 1. **Segment fidelity** — `SlabFile::append` → `slice()` returns the
//!    exact payload bytes through the mmap, for arbitrary xml/row-slab
//!    splits including empty halves, and `read_segment` (the CRC-checked
//!    pread path) agrees with the mapped view.
//! 2. **Reopen fidelity** — after dropping the writer and reopening the
//!    file, a replay scan finds every segment with its payload intact
//!    (the append-only format is its own recovery log).
//! 3. **Entry fidelity** — a result document pushed through the real
//!    demotion pipeline (columnar slab bytes into the file, skeleton
//!    kept resident) reassembles into the *identical* XML document the
//!    RAM-resident entry would have served. This is the exactness
//!    guarantee disk-tier hits ride on.

use fp_suite::proxy::cache::{encode_payload, SlabFile};
use fp_suite::skyserver::{ColumnarRows, ResultSet};
use fp_suite::sqlmini::Value;
use proptest::prelude::*;

fn temp_slab(tag: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "fp_prop_slab_{}_{tag}_{:?}.fpslab",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_file(&p);
    p
}

/// Strategy: one payload as an (xml bytes, row-slab bytes) pair.
fn payload_parts() -> impl Strategy<Value = (Vec<u8>, Vec<u8>)> {
    (
        prop::collection::vec(any::<u8>(), 0..600),
        prop::collection::vec(any::<u8>(), 0..2_000),
    )
}

/// Strategy: a result set with two coordinate columns and one payload
/// column, mixing value types the XML codec must preserve.
fn arb_result() -> impl Strategy<Value = (ResultSet, Vec<usize>)> {
    prop::collection::vec(
        (
            any::<i64>(),
            -1.0e6f64..1.0e6,
            -1.0e6f64..1.0e6,
            "[a-zA-Z0-9 _.-]{0,12}",
        ),
        0..40,
    )
    .prop_map(|rows| {
        let result = ResultSet {
            columns: vec!["objID".into(), "cx".into(), "cy".into(), "name".into()],
            rows: rows
                .into_iter()
                .map(|(id, x, y, s)| {
                    vec![
                        Value::Int(id),
                        Value::Float(x),
                        Value::Float(y),
                        Value::Str(s),
                    ]
                })
                .collect(),
        };
        (result, vec![1, 2])
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Append arbitrary payloads, read each back through the mmap and
    /// through the CRC-checked path: all three views must agree.
    #[test]
    fn segments_round_trip_through_the_mmap(parts in prop::collection::vec(payload_parts(), 1..12)) {
        let path = temp_slab("seg");
        let mut slab = SlabFile::open(&path).unwrap();
        let payloads: Vec<Vec<u8>> = parts
            .iter()
            .map(|(xml, rows)| encode_payload(xml, rows))
            .collect();
        let segs: Vec<_> = payloads
            .iter()
            .map(|p| slab.append(p).unwrap())
            .collect();
        for (i, (seg, (xml, rows))) in segs.iter().zip(&parts).enumerate() {
            let view = slab.slice(*seg).expect("segment is readable");
            prop_assert_eq!(view.payload(), &payloads[i][..], "segment {}", i);
            prop_assert_eq!(view.xml(), &xml[..], "xml half of segment {}", i);
            prop_assert_eq!(view.row_slab(), &rows[..], "row half of segment {}", i);
            prop_assert_eq!(slab.read_segment(*seg).unwrap(), payloads[i].clone());
        }
        drop(slab);
        std::fs::remove_file(&path).unwrap();
    }

    /// Drop the writer, reopen, replay: every payload survives the
    /// restart intact and in order.
    #[test]
    fn reopened_slab_replays_every_segment(parts in prop::collection::vec(payload_parts(), 1..8)) {
        let path = temp_slab("reopen");
        let payloads: Vec<Vec<u8>> = parts
            .iter()
            .map(|(xml, rows)| encode_payload(xml, rows))
            .collect();
        {
            let mut slab = SlabFile::open(&path).unwrap();
            for p in &payloads {
                slab.append(p).unwrap();
            }
        }
        let mut slab = SlabFile::open(&path).unwrap();
        let kept = slab.replay();
        prop_assert_eq!(kept.len(), payloads.len());
        for (i, ((_, recovered), original)) in kept.iter().zip(&payloads).enumerate() {
            prop_assert_eq!(recovered, original, "segment {} after reopen", i);
        }
        drop(slab);
        std::fs::remove_file(&path).unwrap();
    }

    /// The demotion pipeline end to end: columnar row-slab bytes written
    /// to the file, a resident skeleton, and the mmap'd bytes reassemble
    /// the exact document the original result serializes to. Contained
    /// hits (a row subset through the skeleton's micro-index) must match
    /// a fresh columnar build the same way.
    #[test]
    fn demoted_entry_reassembles_byte_identical_documents((result, coord_idx) in arb_result()) {
        // Finite float coordinates at idx 1/2: the columnar form always
        // builds for this strategy.
        let columnar = ColumnarRows::build(&result, &coord_idx).expect("numeric coords");
        let path = temp_slab("entry");
        let mut slab = SlabFile::open(&path).unwrap();
        let payload = encode_payload(b"<CacheEntry/>", columnar.slab());
        let seg = slab.append(&payload).unwrap();
        let view = slab.slice(seg).expect("segment is readable");

        let skeleton = columnar.skeleton();
        prop_assert_eq!(
            skeleton.full_document_with(view.row_slab()),
            result.to_xml_string().into_bytes(),
            "mmap-served document differs from the original result"
        );
        // The skeleton serves the same bytes the live columnar form does.
        prop_assert_eq!(
            skeleton.full_document_with(view.row_slab()),
            columnar.full_document()
        );
        drop(slab);
        std::fs::remove_file(&path).unwrap();
    }
}
