//! The fault matrix: every injected origin failure crossed with the
//! proxy's cache state, end to end through [`ProxyHandle::handle_form_xml`]
//! — the same entry point the HTTP router serves.
//!
//! All timing (latency faults, deadlines, backoff waits, breaker
//! cooldowns) runs on a shared [`MockClock`], so each case is
//! deterministic: no sleeps, no flaky margins.

use fp_suite::proxy::resilience::{Clock, MockClock};
use fp_suite::proxy::template::TemplateManager;
use fp_suite::proxy::{
    ChaosOrigin, CostModel, Fault, Origin, OriginError, ProxyConfig, ProxyError, ProxyHandle,
    ResilienceConfig, Scheme, SiteOrigin,
};
use fp_suite::skyserver::{Catalog, CatalogSpec, ResultSet, SkySite};
use fp_suite::xmlite::Element;
use std::sync::Arc;
use std::time::Duration;

/// Deterministic policy: 100 ms virtual deadline, one retry, breaker
/// opens after 3 consecutive failures and cools down for 50 ms.
fn policy() -> ResilienceConfig {
    ResilienceConfig {
        deadline: Some(Duration::from_millis(100)),
        ..ResilienceConfig::fast_test()
    }
}

/// A proxy over a chaos-wrapped synthetic site, everything on one
/// MockClock.
fn fixture() -> (ProxyHandle, Arc<ChaosOrigin>, Arc<MockClock>) {
    let clock = MockClock::shared();
    let site = SkySite::new(Catalog::generate(&CatalogSpec {
        seed: 9,
        objects: 12_000,
        ..CatalogSpec::default()
    }));
    let chaos = Arc::new(ChaosOrigin::with_clock(
        Arc::new(SiteOrigin::new(site)),
        Arc::clone(&clock) as Arc<dyn Clock>,
    ));
    let handle = ProxyHandle::with_shards_clocked(
        TemplateManager::with_sky_defaults(),
        Arc::clone(&chaos) as Arc<dyn Origin>,
        ProxyConfig::default()
            .with_scheme(Scheme::FullSemantic)
            .with_cost(CostModel::free())
            .with_resilience(policy()),
        4,
        Arc::clone(&clock) as Arc<dyn Clock>,
    );
    (handle, chaos, clock)
}

fn radial(ra: f64, dec: f64, radius: f64) -> Vec<(String, String)> {
    vec![
        ("ra".to_string(), format!("{ra:.4}")),
        ("dec".to_string(), format!("{dec:.4}")),
        ("radius".to_string(), format!("{radius:.4}")),
    ]
}

fn rows_of(body: &[u8]) -> ResultSet {
    let text = std::str::from_utf8(body).expect("utf-8 body");
    let doc = Element::parse(text).expect("XML body");
    ResultSet::from_xml(&doc).expect("result document")
}

#[test]
fn rejection_surfaces_as_rejected_and_is_not_retried() {
    let (handle, chaos, _clock) = fixture();
    chaos.script(vec![Fault::Rejected]);
    let err = handle
        .handle_form_xml("/search/radial", &radial(185.0, 0.0, 10.0))
        .unwrap_err();
    assert!(
        matches!(&err, ProxyError::Origin(OriginError::Rejected(_))),
        "got {err:?}"
    );
    assert_eq!(chaos.calls(), 1, "a rejection must not be retried");
    // The origin is alive — the very next query goes straight through.
    assert!(handle
        .handle_form_xml("/search/radial", &radial(185.0, 0.0, 10.0))
        .is_ok());
}

#[test]
fn unavailability_on_a_cold_cache_retries_then_fails() {
    let (handle, chaos, _clock) = fixture();
    chaos.set_default_fault(Fault::Unavailable);
    let err = handle
        .handle_form_xml("/search/radial", &radial(185.0, 0.0, 10.0))
        .unwrap_err();
    assert!(
        matches!(&err, ProxyError::Origin(OriginError::Unavailable(_))),
        "got {err:?}"
    );
    assert_eq!(chaos.calls(), 2, "one attempt + one retry");
    assert_eq!(handle.runtime_stats().origin_retries, 1);
}

#[test]
fn latency_spike_past_the_deadline_is_a_timeout() {
    let (handle, chaos, clock) = fixture();
    chaos.script(vec![Fault::Latency(
        Duration::from_millis(150),
        Box::new(Fault::Healthy),
    )]);
    let err = handle
        .handle_form_xml("/search/radial", &radial(185.0, 0.0, 10.0))
        .unwrap_err();
    assert!(
        matches!(&err, ProxyError::Origin(OriginError::Timeout { .. })),
        "got {err:?}"
    );
    assert_eq!(
        chaos.calls(),
        1,
        "an overdue fetch must not be retried — the budget is spent"
    );
    assert_eq!(handle.runtime_stats().origin_timeouts, 1);
    assert_eq!(clock.elapsed(), Duration::from_millis(150));
}

#[test]
fn breaker_opens_sheds_load_and_recloses_after_the_cooldown() {
    let (handle, chaos, clock) = fixture();
    chaos.set_default_fault(Fault::Unavailable);

    // Distinct disjoint queries: each fails both its attempts, so two
    // queries reach the threshold of 3 consecutive failures.
    for dec in [10.0, 20.0] {
        let _ = handle.handle_form_xml("/search/radial", &radial(200.0, dec, 2.0));
    }
    assert_eq!(handle.runtime_stats().breaker_state, "open");
    let calls_when_open = chaos.calls();

    // While open: fast-fail with a Retry-After hint, no origin traffic.
    let err = handle
        .handle_form_xml("/search/radial", &radial(200.0, 30.0, 2.0))
        .unwrap_err();
    match &err {
        ProxyError::Origin(e @ OriginError::Overloaded { retry_after }) => {
            assert!(e.is_transient());
            assert!(*retry_after <= policy().breaker_cooldown);
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    assert_eq!(chaos.calls(), calls_when_open, "open breaker sheds load");
    assert!(handle.runtime_stats().origin_fast_fails >= 1);

    // Heal the origin, let the cooldown lapse: the half-open probe
    // succeeds and the circuit recloses.
    chaos.set_default_fault(Fault::Healthy);
    clock.advance(policy().breaker_cooldown + Duration::from_millis(1));
    assert!(handle
        .handle_form_xml("/search/radial", &radial(200.0, 40.0, 2.0))
        .is_ok());
    assert_eq!(handle.runtime_stats().breaker_state, "closed");
    assert!(handle.runtime_stats().breaker_opens >= 1);
}

#[test]
fn truncated_and_corrupt_payloads_pass_through_without_crashing() {
    let (handle, chaos, _clock) = fixture();

    // A truncated origin response: the proxy serves (and caches) what it
    // got; the follow-up exact hit sees the same truncated rows.
    chaos.script(vec![Fault::TruncateRows(1)]);
    let truncated = handle
        .handle_form_xml("/search/radial", &radial(185.0, 0.0, 10.0))
        .expect("truncated response still serves");
    assert_eq!(rows_of(&truncated.body).len(), 1);
    let again = handle
        .handle_form_xml("/search/radial", &radial(185.0, 0.0, 10.0))
        .expect("exact hit");
    assert_eq!(rows_of(&again.body).len(), 1);

    // A corrupt coordinate cell: the entry is cached, and a contained
    // query over it either falls back to the origin (malformed entry) or
    // serves rows — it must not panic or mis-serve silently.
    chaos.script(vec![Fault::MalformedCell]);
    let corrupt = handle
        .handle_form_xml("/search/radial", &radial(190.0, 5.0, 10.0))
        .expect("corrupt payload still serves");
    let served = rows_of(&corrupt.body).len();
    let contained = handle
        .handle_form_xml("/search/radial", &radial(190.0, 5.0, 3.0))
        .expect("contained query resolves");
    assert!(rows_of(&contained.body).len() <= served.max(1));
}

/// The acceptance decision table: with the cache warmed and the origin
/// **completely down**, every query with usable cached coverage is still
/// answered — exact and contained normally, region containment and
/// overlap degraded — and only the true disjoint miss errors out.
#[test]
fn full_outage_decision_table() {
    let (handle, chaos, _clock) = fixture();

    // Warm: two disjoint entries 0.1° apart plus one far-away entry.
    let e1 = radial(185.0, 0.0, 5.0);
    let e2 = radial(184.9, 0.0, 5.0);
    let e1_rows = rows_of(
        &handle
            .handle_form_xml("/search/radial", &e1)
            .expect("warm e1")
            .body,
    )
    .len();
    handle
        .handle_form_xml("/search/radial", &e2)
        .expect("warm e2");
    assert_eq!(handle.cache_stats().entries, 2);

    // Total outage from here on.
    chaos.set_default_fault(Fault::Unavailable);

    // Exact: identical to e1 — served whole, not degraded.
    let exact = handle
        .handle_form_xml("/search/radial", &e1)
        .expect("exact hit survives the outage");
    assert_eq!(exact.metrics.outcome.label(), "exact");
    assert!(!exact.metrics.degraded);
    assert_eq!(rows_of(&exact.body).len(), e1_rows);

    // Contained: concentric, smaller — served whole, not degraded.
    let contained = handle
        .handle_form_xml("/search/radial", &radial(185.0, 0.0, 2.0))
        .expect("contained hit survives the outage");
    assert_eq!(contained.metrics.outcome.label(), "contained");
    assert!(!contained.metrics.degraded);

    // Region containment: a region swallowing both entries — served as
    // the cached union, marked degraded (the remainder is missing).
    let rc = handle
        .handle_form_xml("/search/radial", &radial(184.95, 0.0, 20.0))
        .expect("region containment degrades instead of failing");
    assert_eq!(rc.metrics.outcome.label(), "region-containment");
    assert!(rc.metrics.degraded);
    assert!(rows_of(&rc.body).len() >= e1_rows);

    // Overlap: half-in half-out of e1 — served as the cached
    // intersection, marked degraded.
    let overlap = handle
        .handle_form_xml("/search/radial", &radial(185.06, 0.0, 5.0))
        .expect("overlap degrades instead of failing");
    assert_eq!(overlap.metrics.outcome.label(), "overlap");
    assert!(overlap.metrics.degraded);

    // Disjoint: nothing cached helps — the transient error surfaces.
    let err = handle
        .handle_form_xml("/search/radial", &radial(200.0, 30.0, 2.0))
        .unwrap_err();
    assert!(
        matches!(
            &err,
            ProxyError::Origin(OriginError::Unavailable(_) | OriginError::Overloaded { .. })
        ),
        "got {err:?}"
    );

    // Degraded answers were counted, and nothing degraded entered the
    // cache as a (wrong) complete entry.
    let stats = handle.runtime_stats();
    assert_eq!(stats.degraded_hits, 2);
    assert!(stats.degraded_partial_rows >= 1);
    assert_eq!(
        handle.cache_stats().entries,
        2,
        "degraded answers are never cached"
    );
}
