//! Concurrency storm for the disk tier: eight client threads hammer a
//! tiered cache whose RAM budget holds only a fraction of the working
//! set, so entries continuously demote to the slab and promote back on
//! access while other threads are mid-read. The pinned invariant is
//! byte-identity: every response must equal the origin's answer for that
//! query no matter which tier served it or what churn was in flight —
//! demote/promote moves bytes, never changes them.

use fp_suite::proxy::template::TemplateManager;
use fp_suite::proxy::{CostModel, Origin, ProxyConfig, ProxyHandle, Scheme, SiteOrigin};
use fp_suite::skyserver::{Catalog, CatalogSpec, SkySite};
use std::path::PathBuf;
use std::sync::Arc;

const THREADS: usize = 8;
const ROUNDS: usize = 6;

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Twenty well-separated radial queries — each its own exact-match
/// entry, so every repeat is an exact hit from RAM or from the slab.
fn queries() -> Vec<Vec<(String, String)>> {
    (0..20)
        .map(|i| {
            vec![
                (
                    "ra".to_string(),
                    format!("{:.4}", 15.0 + 16.0 * f64::from(i)),
                ),
                (
                    "dec".to_string(),
                    format!("{:.4}", -30.0 + 3.0 * f64::from(i)),
                ),
                ("radius".to_string(), "7.0000".to_string()),
            ]
        })
        .collect()
}

fn make_handle(site: &SkySite, budget: Option<usize>, tier_dir: Option<&PathBuf>) -> ProxyHandle {
    let mut config = ProxyConfig::default()
        .with_scheme(Scheme::FullSemantic)
        .with_cost(CostModel::free());
    if budget.is_some() {
        config = config.with_capacity(budget);
    }
    if let Some(dir) = tier_dir {
        config = config.with_tier(dir.clone());
    }
    ProxyHandle::with_shards(
        TemplateManager::with_sky_defaults(),
        Arc::new(SiteOrigin::new(site.clone())) as Arc<dyn Origin>,
        config,
        2, // few shards → heavy churn per shard
    )
}

#[test]
fn eight_thread_storm_stays_byte_identical_under_tier_churn() {
    let site = SkySite::new(Catalog::generate(&CatalogSpec {
        seed: 77,
        objects: 9_000,
        ..CatalogSpec::default()
    }));
    let queries = queries();

    // Oracle bodies from an unbounded RAM-only proxy, and the working
    // set size the storm budget is derived from.
    let oracle = make_handle(&site, None, None);
    let truth: Vec<Vec<u8>> = queries
        .iter()
        .map(|q| {
            oracle
                .handle_form_xml("/search/radial", q)
                .expect("oracle serves")
                .body
        })
        .collect();
    let working_set = oracle.cache_stats().bytes.max(1);
    drop(oracle);

    // The storm handle holds roughly a quarter of the working set in
    // RAM; the rest lives on the slab and churns on every access.
    let tier_dir = fresh_dir("fp_tier_storm");
    let handle = make_handle(&site, Some(working_set / 4), Some(&tier_dir));

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let handle = handle.clone();
            let queries = &queries;
            let truth = &truth;
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    // Each thread walks the query list at its own
                    // rotation so threads constantly collide on entries
                    // the budget enforcer is moving between tiers.
                    for i in 0..queries.len() {
                        let k = (i + t * 3 + round) % queries.len();
                        let r = handle
                            .handle_form_xml("/search/radial", &queries[k])
                            .expect("storm request serves");
                        assert_eq!(
                            r.body, truth[k],
                            "thread {t} round {round} query {k}: \
                             response bytes diverged from the origin's answer"
                        );
                    }
                }
            });
        }
    });
    handle.quiesce_revalidations();

    // The storm must actually have exercised the tier, not just RAM.
    let cache = handle.cache_stats();
    let runtime = handle.runtime_stats();
    assert!(cache.demotions > 0, "budget must demote under the storm");
    assert!(
        runtime.disk_hits > 0,
        "some answers must be served from the slab"
    );
    assert!(
        cache.promotions > 0,
        "hot demoted entries must promote back to RAM"
    );
    assert_eq!(
        runtime.requests,
        queries.len() * THREADS * ROUNDS,
        "every storm request must be accounted for"
    );
    std::fs::remove_dir_all(&tier_dir).ok();
}
