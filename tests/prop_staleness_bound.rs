//! Property: the lifecycle never serves beyond its windows. For
//! arbitrary schedules of clock advances, queries, and origin outages,
//! every answer the proxy produces must come from entries no older than
//! `ttl + max(stale_while_revalidate, stale_if_error)`, and answers that
//! are neither stale nor degraded must match the no-cache oracle —
//! byte-identical for exact hits and forwards.

use fp_suite::proxy::metrics::Outcome;
use fp_suite::proxy::resilience::{Clock, MockClock};
use fp_suite::proxy::template::TemplateManager;
use fp_suite::proxy::{
    ChaosOrigin, CostModel, Fault, LifecycleConfig, Origin, ProxyConfig, ProxyHandle,
    ResilienceConfig, Scheme, SiteOrigin,
};
use fp_suite::skyserver::{Catalog, CatalogSpec, SkySite};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

fn site() -> &'static SkySite {
    static SITE: OnceLock<SkySite> = OnceLock::new();
    SITE.get_or_init(|| {
        SkySite::new(Catalog::generate(&CatalogSpec {
            seed: 17,
            objects: 8_000,
            ..CatalogSpec::default()
        }))
    })
}

const TTL_MS: u64 = 200;
const SWR_MS: u64 = 100;
const SIE_MS: u64 = 400;
/// The hard staleness bound: nothing older than this may ever serve.
const BOUND_MS: f64 = (TTL_MS + SIE_MS) as f64;

#[derive(Debug, Clone)]
enum Op {
    /// Advance the virtual clock.
    Advance(u64),
    /// Issue query `i` (mod the pool size).
    Query(usize),
    /// Origin goes down / comes back.
    FaultOn,
    FaultOff,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (10u64..300).prop_map(Op::Advance),
        (0usize..6).prop_map(Op::Query),
        Just(Op::FaultOn),
        Just(Op::FaultOff),
    ]
}

#[derive(Debug, Clone)]
struct RadialForm {
    ra: f64,
    dec: f64,
    radius: f64,
}

impl RadialForm {
    fn fields(&self) -> Vec<(String, String)> {
        vec![
            ("ra".to_string(), format!("{:.4}", self.ra)),
            ("dec".to_string(), format!("{:.4}", self.dec)),
            ("radius".to_string(), format!("{:.4}", self.radius)),
        ]
    }
}

fn arb_query() -> impl Strategy<Value = RadialForm> {
    (184.5f64..185.5, -0.5f64..0.5, 1.0f64..25.0).prop_map(|(ra, dec, radius)| RadialForm {
        ra,
        dec,
        radius,
    })
}

/// objID key set of a result document.
fn ids(body: &[u8]) -> BTreeSet<String> {
    let text = std::str::from_utf8(body).expect("XML is UTF-8");
    let doc = fp_suite::xmlite::Element::parse(text).expect("XML body");
    let result = fp_suite::skyserver::ResultSet::from_xml(&doc).expect("result document");
    let Some(k) = result.column_index("objID") else {
        return BTreeSet::new();
    };
    result.rows.iter().map(|r| r[k].to_string()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn no_answer_outlives_the_staleness_bound(
        pool in prop::collection::vec(arb_query(), 3..6),
        ops in prop::collection::vec(arb_op(), 5..30),
    ) {
        // Oracle bodies per pool query, healthy origin, no cache.
        let oracle = ProxyHandle::new(
            TemplateManager::with_sky_defaults(),
            Arc::new(SiteOrigin::new(site().clone())) as Arc<dyn Origin>,
            ProxyConfig::default()
                .with_scheme(Scheme::NoCache)
                .with_cost(CostModel::free()),
        );
        let oracle_bodies: Vec<Vec<u8>> = pool
            .iter()
            .map(|q| {
                oracle
                    .handle_form_xml("/search/radial", &q.fields())
                    .expect("oracle serves")
                    .body
            })
            .collect();

        let clock = MockClock::shared();
        let chaos = Arc::new(ChaosOrigin::with_clock(
            Arc::new(SiteOrigin::new(site().clone())),
            Arc::clone(&clock) as Arc<dyn Clock>,
        ));
        let resilience = ResilienceConfig {
            max_retries: 0, // no retry loops: failures surface immediately
            ..ResilienceConfig::fast_test()
        };
        let handle = ProxyHandle::with_shards_clocked(
            TemplateManager::with_sky_defaults(),
            Arc::clone(&chaos) as Arc<dyn Origin>,
            ProxyConfig::default()
                .with_scheme(Scheme::FullSemantic)
                .with_cost(CostModel::free())
                .with_resilience(resilience)
                .with_lifecycle(
                    LifecycleConfig::default()
                        .with_default_ttl(Duration::from_millis(TTL_MS))
                        .with_stale_while_revalidate(Duration::from_millis(SWR_MS))
                        .with_stale_if_error(Duration::from_millis(SIE_MS)),
                ),
            2,
            Arc::clone(&clock) as Arc<dyn Clock>,
        );

        for op in &ops {
            match op {
                Op::Advance(ms) => clock.advance(Duration::from_millis(*ms)),
                Op::FaultOn => chaos.set_default_fault(Fault::Unavailable),
                Op::FaultOff => chaos.set_default_fault(Fault::Healthy),
                Op::Query(i) => {
                    let idx = i % pool.len();
                    let q = &pool[idx];
                    let Ok(r) = handle.handle_form_xml("/search/radial", &q.fields()) else {
                        continue; // failing is always allowed
                    };
                    // The staleness bound, unconditionally.
                    prop_assert!(
                        r.metrics.entry_age_ms <= BOUND_MS + 0.01,
                        "served an entry aged {:.1} ms (bound {BOUND_MS} ms, outcome {:?})",
                        r.metrics.entry_age_ms,
                        r.metrics.outcome
                    );
                    // Fresh, complete answers must match the oracle:
                    // forwards byte-identically (they serialize the same
                    // origin result); cache-served answers row-for-row
                    // (a compacted entry may store the same rows in
                    // merge order, so bytes are not comparable there —
                    // the lifecycle suite pins hit-byte identity on the
                    // non-compacted path).
                    if !r.metrics.stale && !r.metrics.degraded {
                        if matches!(r.metrics.outcome, Outcome::Forwarded) {
                            prop_assert_eq!(
                                &r.body,
                                &oracle_bodies[idx],
                                "fresh forward not byte-identical to the oracle"
                            );
                        } else {
                            prop_assert_eq!(
                                ids(&r.body),
                                ids(&oracle_bodies[idx]),
                                "fresh {:?} answer has the wrong rows",
                                r.metrics.outcome
                            );
                        }
                    }
                }
            }
        }
        handle.quiesce_revalidations();
    }
}
