//! The polytope path end to end: the paper lists the polytope as the most
//! general region shape its framework handles; this exercises one through
//! the whole stack — `fGetObjFromTriangle` at the origin, the triangle
//! function template at the proxy, caching included.

use fp_suite::proxy::template::TemplateManager;
use fp_suite::proxy::{CostModel, FunctionProxy, ProxyConfig, Scheme, SiteOrigin};
use fp_suite::skyserver::{Catalog, CatalogSpec, SkySite};
use std::sync::Arc;

fn proxy(site: &SkySite) -> FunctionProxy {
    FunctionProxy::new(
        TemplateManager::with_sky_defaults(),
        Arc::new(SiteOrigin::new(site.clone())),
        ProxyConfig::default()
            .with_scheme(Scheme::FullSemantic)
            .with_cost(CostModel::free()),
    )
}

fn tri_fields(v: [(f64, f64); 3]) -> Vec<(String, String)> {
    vec![
        ("ra1".to_string(), v[0].0.to_string()),
        ("dec1".to_string(), v[0].1.to_string()),
        ("ra2".to_string(), v[1].0.to_string()),
        ("dec2".to_string(), v[1].1.to_string()),
        ("ra3".to_string(), v[2].0.to_string()),
        ("dec3".to_string(), v[2].1.to_string()),
    ]
}

fn ids(result: &fp_suite::skyserver::ResultSet) -> Vec<i64> {
    let k = result.column_index("objID").unwrap();
    let mut out: Vec<i64> = result.rows.iter().map(|r| r[k].as_i64().unwrap()).collect();
    out.sort_unstable();
    out
}

#[test]
fn triangle_queries_cache_and_answer_correctly() {
    let site = SkySite::new(Catalog::generate(&CatalogSpec::small_test()));
    let mut p = proxy(&site);

    // A CCW triangle over the dense stripe.
    let big = [(184.0, -0.5), (186.5, -0.5), (185.2, 1.0)];
    let a = p
        .handle_form("/search/triangle", &tri_fields(big))
        .expect("first");
    assert_eq!(a.metrics.outcome.label(), "forwarded");
    assert!(!a.result.is_empty(), "triangle covers populated sky");

    // Exact repeat.
    let b = p
        .handle_form("/search/triangle", &tri_fields(big))
        .expect("repeat");
    assert_eq!(b.metrics.outcome.label(), "exact");
    assert_eq!(ids(&b.result), ids(&a.result));

    // A smaller triangle well inside the big one (shrunk toward its
    // centroid) must be answered locally, and identically to the origin.
    let centroid = (
        (big[0].0 + big[1].0 + big[2].0) / 3.0,
        (big[0].1 + big[1].1 + big[2].1) / 3.0,
    );
    let shrink = |v: (f64, f64)| {
        (
            centroid.0 + (v.0 - centroid.0) * 0.35,
            centroid.1 + (v.1 - centroid.1) * 0.35,
        )
    };
    let small = [shrink(big[0]), shrink(big[1]), shrink(big[2])];
    let c = p
        .handle_form("/search/triangle", &tri_fields(small))
        .expect("subsumed");
    assert_eq!(
        c.metrics.outcome.label(),
        "contained",
        "small triangle's bbox lies inside the big triangle, so the \
         conservative polytope check must prove containment"
    );
    let mut oracle = FunctionProxy::new(
        TemplateManager::with_sky_defaults(),
        Arc::new(SiteOrigin::new(site.clone())),
        ProxyConfig::default()
            .with_scheme(Scheme::NoCache)
            .with_cost(CostModel::free()),
    );
    let truth = oracle
        .handle_form("/search/triangle", &tri_fields(small))
        .expect("oracle");
    assert_eq!(ids(&c.result), ids(&truth.result));
    assert!(!c.result.is_empty());
}

#[test]
fn clockwise_triangles_are_rejected_consistently() {
    let site = SkySite::new(Catalog::generate(&CatalogSpec::small_test()));
    let mut p = proxy(&site);
    // Clockwise winding: the origin rejects it; the proxy surfaces that.
    let cw = [(184.0, -0.5), (185.2, 1.0), (186.5, -0.5)];
    let r = p.handle_form("/search/triangle", &tri_fields(cw));
    assert!(r.is_err(), "clockwise triangle must be rejected");
}

#[test]
fn disjoint_triangles_do_not_interfere() {
    let site = SkySite::new(Catalog::generate(&CatalogSpec::small_test()));
    let mut p = proxy(&site);
    let left = [(181.0, -1.0), (182.5, -1.0), (181.7, 0.5)];
    let right = [(187.0, -1.0), (188.5, -1.0), (187.7, 0.5)];
    let a = p
        .handle_form("/search/triangle", &tri_fields(left))
        .expect("left");
    let b = p
        .handle_form("/search/triangle", &tri_fields(right))
        .expect("right");
    assert_eq!(a.metrics.outcome.label(), "forwarded");
    assert_eq!(b.metrics.outcome.label(), "forwarded");
    // No object can be in both.
    let ia = ids(&a.result);
    let ib = ids(&b.result);
    assert!(ia.iter().all(|id| !ib.contains(id)));
}
