//! End-to-end over real sockets: origin site behind the workspace HTTP
//! server, proxy reaching it through an HTTP-backed `Origin`, assertions
//! on both the answers and which hops each query took.

use fp_suite::httpd::{HttpClient, HttpServer, Request, Response, Router, Status};
use fp_suite::proxy::template::TemplateManager;
use fp_suite::proxy::{
    CostModel, FunctionProxy, Origin, OriginError, ProxyConfig, ProxyHandle, Scheme,
};
use fp_suite::skyserver::result::QueryOutcome;
use fp_suite::skyserver::{Catalog, CatalogSpec, ExecStats, ResultSet, SkySite};
use fp_suite::sqlmini::Query;
use fp_suite::xmlite::Element;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Origin HTTP facade: `GET /sql?cmd=<sql>` → XML result document.
fn origin_router(site: SkySite, hits: Arc<AtomicUsize>) -> Router {
    Router::new().route("/sql", move |req: &Request| {
        hits.fetch_add(1, Ordering::SeqCst);
        let Some((_, sql)) = req.query_params().into_iter().find(|(k, _)| k == "cmd") else {
            return Response::error(Status::BAD_REQUEST, "missing cmd");
        };
        match site.execute_sql(&sql) {
            Ok(outcome) => {
                let mut resp = Response::ok("text/xml", outcome.result.to_xml().to_xml());
                resp.headers
                    .set("X-Rows-Scanned", outcome.stats.rows_scanned.to_string());
                resp
            }
            Err(e) => Response::error(Status::BAD_REQUEST, &e.to_string()),
        }
    })
}

struct HttpOrigin {
    client: HttpClient,
}

impl Origin for HttpOrigin {
    fn execute(&self, query: &Query) -> Result<QueryOutcome, OriginError> {
        let url = format!(
            "/sql?cmd={}",
            fp_suite::httpd::urlenc::encode_component(&query.to_sql())
        );
        let response = self
            .client
            .get(&url)
            .map_err(|e| OriginError::Unavailable(e.to_string()))?;
        if !response.status.is_success() {
            return Err(OriginError::Rejected(response.body_text()));
        }
        let doc = Element::parse(&response.body_text())
            .map_err(|e| OriginError::Rejected(e.to_string()))?;
        let result = ResultSet::from_xml(&doc)
            .ok_or_else(|| OriginError::Rejected("malformed result".into()))?;
        let rows = result.len();
        Ok(QueryOutcome {
            result,
            stats: ExecStats {
                rows_scanned: response
                    .headers
                    .get("X-Rows-Scanned")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0),
                rows_returned: rows,
                result_bytes: response.body.len(),
            },
        })
    }
}

#[test]
fn proxy_over_http_origin_caches_and_answers_identically() {
    let site = SkySite::new(Catalog::generate(&CatalogSpec::small_test()));
    let origin_hits = Arc::new(AtomicUsize::new(0));
    let server = HttpServer::bind(
        "127.0.0.1:0",
        origin_router(site.clone(), Arc::clone(&origin_hits)),
    )
    .expect("origin binds");

    let mut proxy = FunctionProxy::new(
        TemplateManager::with_sky_defaults(),
        Arc::new(HttpOrigin {
            client: HttpClient::new(server.addr()),
        }),
        ProxyConfig::default()
            .with_scheme(Scheme::FullSemantic)
            .with_cost(CostModel::free()),
    );

    let fields = |radius: &str| {
        vec![
            ("ra".to_string(), "185.0".to_string()),
            ("dec".to_string(), "0.5".to_string()),
            ("radius".to_string(), radius.to_string()),
        ]
    };

    // Miss → one HTTP round trip to the origin.
    let a = proxy
        .handle_form("/search/radial", &fields("20"))
        .expect("miss");
    assert_eq!(origin_hits.load(Ordering::SeqCst), 1);
    assert!(!a.result.is_empty());

    // Exact hit → zero additional origin traffic.
    let b = proxy
        .handle_form("/search/radial", &fields("20"))
        .expect("hit");
    assert_eq!(origin_hits.load(Ordering::SeqCst), 1);
    assert_eq!(b.result.rows.len(), a.result.rows.len());

    // Contained → still zero origin traffic, and the answer equals a
    // direct origin execution of the same query (XML round trip included).
    let c = proxy
        .handle_form("/search/radial", &fields("8"))
        .expect("contained");
    assert_eq!(origin_hits.load(Ordering::SeqCst), 1);
    assert_eq!(c.metrics.outcome.label(), "contained");
    let direct = site
        .execute_sql(
            "SELECT p.objID, p.ra, p.dec, p.cx, p.cy, p.cz, p.u, p.g, p.r, p.i, p.z \
             FROM fGetNearbyObjEq(185.0, 0.5, 8.0) n JOIN PhotoPrimary p ON n.objID = p.objID",
        )
        .expect("direct execution");
    let key = |rs: &ResultSet| -> Vec<i64> {
        let k = rs.column_index("objID").unwrap();
        let mut ids: Vec<i64> = rs.rows.iter().map(|r| r[k].as_i64().unwrap()).collect();
        ids.sort_unstable();
        ids
    };
    assert_eq!(key(&c.result), key(&direct.result));

    // Overlap → exactly one more origin round trip (the remainder query).
    let d = proxy
        .handle_form(
            "/search/radial",
            &[
                ("ra".to_string(), "185.4".to_string()),
                ("dec".to_string(), "0.5".to_string()),
                ("radius".to_string(), "15".to_string()),
            ],
        )
        .expect("overlap");
    assert_eq!(d.metrics.outcome.label(), "overlap");
    assert_eq!(origin_hits.load(Ordering::SeqCst), 2);

    server.shutdown();
}

#[test]
fn byte_serving_matches_row_serving_over_http() {
    let site = SkySite::new(Catalog::generate(&CatalogSpec::small_test()));
    let origin_hits = Arc::new(AtomicUsize::new(0));
    let server = HttpServer::bind("127.0.0.1:0", origin_router(site, Arc::clone(&origin_hits)))
        .expect("origin binds");

    let handle = ProxyHandle::with_shards(
        TemplateManager::with_sky_defaults(),
        Arc::new(HttpOrigin {
            client: HttpClient::new(server.addr()),
        }),
        ProxyConfig::default()
            .with_scheme(Scheme::FullSemantic)
            .with_cost(CostModel::free()),
        4,
    );

    let fields = |radius: &str| {
        vec![
            ("ra".to_string(), "185.0".to_string()),
            ("dec".to_string(), "0.5".to_string()),
            ("radius".to_string(), radius.to_string()),
        ]
    };

    // Miss: the byte front serializes the forwarded rows.
    let miss = handle
        .handle_form_xml("/search/radial", &fields("20"))
        .expect("miss");
    assert_eq!(miss.metrics.outcome.label(), "forwarded");
    let doc = Element::parse(std::str::from_utf8(&miss.body).unwrap()).expect("well-formed body");
    assert!(!ResultSet::from_xml(&doc)
        .expect("result document")
        .is_empty());

    // Exact hit: the body is copied straight out of the entry's
    // pre-serialized slab — and must be byte-identical to the miss body.
    let hit = handle
        .handle_form_xml("/search/radial", &fields("20"))
        .expect("hit");
    assert_eq!(hit.metrics.outcome.label(), "exact");
    assert_eq!(hit.body, miss.body);
    assert_eq!(origin_hits.load(Ordering::SeqCst), 1);

    // Contained hit: assembled from per-row spans after micro-index
    // pruning; byte-identical to serializing the row response.
    let rows = handle
        .handle_form("/search/radial", &fields("8"))
        .expect("contained rows");
    assert_eq!(rows.metrics.outcome.label(), "contained");
    let bytes = handle
        .handle_form_xml("/search/radial", &fields("8"))
        .expect("contained bytes");
    assert_eq!(bytes.metrics.outcome.label(), "contained");
    assert_eq!(bytes.body, rows.result.to_xml_string().into_bytes());
    // Every selected row was among the scanned candidates.
    assert!(bytes.metrics.rows_scanned >= bytes.metrics.rows_total);
    assert_eq!(origin_hits.load(Ordering::SeqCst), 1);

    server.shutdown();
}

#[test]
fn dead_origin_surfaces_as_unavailable() {
    let mut proxy = FunctionProxy::new(
        TemplateManager::with_sky_defaults(),
        Arc::new(HttpOrigin {
            // Nothing listens on port 1.
            client: HttpClient::new("127.0.0.1:1".parse().unwrap())
                .with_timeout(std::time::Duration::from_millis(200)),
        }),
        ProxyConfig::default().with_scheme(Scheme::FullSemantic),
    );
    let err = proxy
        .handle_form(
            "/search/radial",
            &[
                ("ra".to_string(), "185.0".to_string()),
                ("dec".to_string(), "0.5".to_string()),
                ("radius".to_string(), "5".to_string()),
            ],
        )
        .expect_err("origin is down");
    assert!(err.to_string().contains("origin"), "{err}");
}
