//! Multi-join templates: the paper's property (3) allows any
//! *semantics-preserving* joins around the embedded function — SkyServer's
//! real pages join photometry with spectroscopy. This registers a
//! TVF → PhotoPrimary → SpecObj template and verifies the proxy caches it
//! correctly (filtering joins commute with region selection, so local
//! evaluation of subsumed queries stays exact).

use fp_suite::proxy::template::{InfoFile, RegisteredQueryTemplate, TemplateManager};
use fp_suite::proxy::{CostModel, FunctionProxy, ProxyConfig, Scheme, SiteOrigin};
use fp_suite::skyserver::{Catalog, CatalogSpec, SkySite};
use fp_suite::sqlmini::QueryTemplate;
use std::sync::Arc;

const SPECTRO_TEMPLATE: &str =
    "SELECT p.objID, p.ra, p.dec, p.cx, p.cy, p.cz, s.z AS redshift, s.class \
     FROM fGetNearbyObjEq($ra, $dec, $radius) n \
     JOIN PhotoPrimary p ON n.objID = p.objID \
     JOIN SpecObj s ON s.objID = p.objID";

fn manager() -> TemplateManager {
    let mut m = TemplateManager::with_sky_defaults();
    let qt = QueryTemplate::parse("spectro", SPECTRO_TEMPLATE).expect("template parses");
    m.register_query(
        RegisteredQueryTemplate::new(
            qt,
            vec!["cx".into(), "cy".into(), "cz".into()],
            "p",
            "objID",
        )
        .expect("registration"),
    )
    .expect("registers");
    m.register_info(InfoFile::identity(
        "/search/spectro",
        "spectro",
        &["ra", "dec", "radius"],
    ))
    .expect("info registers");
    m
}

fn fields(ra: f64, dec: f64, radius: f64) -> Vec<(String, String)> {
    vec![
        ("ra".to_string(), ra.to_string()),
        ("dec".to_string(), dec.to_string()),
        ("radius".to_string(), radius.to_string()),
    ]
}

fn ids(result: &fp_suite::skyserver::ResultSet) -> Vec<i64> {
    let k = result.column_index("objID").unwrap();
    let mut out: Vec<i64> = result.rows.iter().map(|r| r[k].as_i64().unwrap()).collect();
    out.sort_unstable();
    out
}

#[test]
fn spectro_template_caches_through_all_relationship_cases() {
    let site = SkySite::new(Catalog::generate(&CatalogSpec::small_test()));
    let mut p = FunctionProxy::new(
        manager(),
        Arc::new(SiteOrigin::new(site.clone())),
        ProxyConfig::default()
            .with_scheme(Scheme::FullSemantic)
            .with_cost(CostModel::free()),
    );
    let mut oracle = FunctionProxy::new(
        manager(),
        Arc::new(SiteOrigin::new(site.clone())),
        ProxyConfig::default()
            .with_scheme(Scheme::NoCache)
            .with_cost(CostModel::free()),
    );

    // Wide cone: miss, cached. (Spectra are ~15% of objects, so go wide.)
    let big = p
        .handle_form("/search/spectro", &fields(185.0, 0.0, 60.0))
        .unwrap();
    assert_eq!(big.metrics.outcome.label(), "forwarded");
    assert!(
        !big.result.is_empty(),
        "cone contains spectroscopic objects"
    );
    assert_eq!(
        big.result.columns,
        ["objID", "ra", "dec", "cx", "cy", "cz", "redshift", "class"]
    );

    // Subsumed cone answered locally and identically.
    let small = p
        .handle_form("/search/spectro", &fields(185.0, 0.0, 25.0))
        .unwrap();
    assert_eq!(small.metrics.outcome.label(), "contained");
    let truth = oracle
        .handle_form("/search/spectro", &fields(185.0, 0.0, 25.0))
        .unwrap();
    assert_eq!(ids(&small.result), ids(&truth.result));

    // Overlap: probe + remainder, still identical to the oracle.
    let over = p
        .handle_form("/search/spectro", &fields(185.0 + 70.0 / 60.0, 0.0, 30.0))
        .unwrap();
    assert_eq!(over.metrics.outcome.label(), "overlap");
    let truth = oracle
        .handle_form("/search/spectro", &fields(185.0 + 70.0 / 60.0, 0.0, 30.0))
        .unwrap();
    assert_eq!(ids(&over.result), ids(&truth.result));
}

#[test]
fn spectro_and_radial_templates_do_not_cross_answer() {
    // Identical spatial region, different templates: a cached spectro
    // result must not answer a radial query (different join → different
    // row set), and vice versa.
    let site = SkySite::new(Catalog::generate(&CatalogSpec::small_test()));
    let mut p = FunctionProxy::new(
        manager(),
        Arc::new(SiteOrigin::new(site)),
        ProxyConfig::default()
            .with_scheme(Scheme::FullSemantic)
            .with_cost(CostModel::free()),
    );
    let spectro = p
        .handle_form("/search/spectro", &fields(185.0, 0.0, 40.0))
        .unwrap();
    let radial = p
        .handle_form("/search/radial", &fields(185.0, 0.0, 40.0))
        .unwrap();
    assert_eq!(
        radial.metrics.outcome.label(),
        "forwarded",
        "no cross-template hit"
    );
    assert!(
        radial.result.len() > spectro.result.len(),
        "radial sees all objects, spectro only the spectroscopic subset"
    );
}
