//! Kill-restart recovery: snapshot a warmed proxy mid-trace, drop it,
//! rebuild from disk, and finish the trace — the warm restart must
//! recover the fresh entries (serving byte-identical answers) and land
//! within five hit-rate points of a proxy that never restarted. A
//! corrupted snapshot loses exactly the damaged segments, never the
//! startup.

use fp_suite::proxy::metrics::Outcome;
use fp_suite::proxy::resilience::{Clock, MockClock};
use fp_suite::proxy::template::TemplateManager;
use fp_suite::proxy::{
    CostModel, LifecycleConfig, Origin, ProxyConfig, ProxyHandle, Scheme, SiteOrigin,
};
use fp_suite::skyserver::{Catalog, CatalogSpec, SkySite};
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

fn site() -> &'static SkySite {
    static SITE: OnceLock<SkySite> = OnceLock::new();
    SITE.get_or_init(|| {
        SkySite::new(Catalog::generate(&CatalogSpec {
            seed: 13,
            objects: 8_000,
            ..CatalogSpec::default()
        }))
    })
}

/// Twelve well-separated radial queries: each is its own cache entry.
fn base_queries() -> Vec<Vec<(String, String)>> {
    (0..12)
        .map(|i| {
            vec![
                (
                    "ra".to_string(),
                    format!("{:.4}", 30.0 + 25.0 * f64::from(i)),
                ),
                (
                    "dec".to_string(),
                    format!("{:.4}", -20.0 + 4.0 * f64::from(i)),
                ),
                ("radius".to_string(), "8.0000".to_string()),
            ]
        })
        .collect()
}

/// The full trace: every base query once (all misses), then every base
/// query again plus three fresh positions (12 hits + 3 misses).
fn trace() -> (Vec<Vec<(String, String)>>, usize) {
    let base = base_queries();
    let mut all = base.clone();
    all.extend(base);
    for i in 0..3 {
        all.push(vec![
            (
                "ra".to_string(),
                format!("{:.4}", 40.0 + 30.0 * f64::from(i)),
            ),
            (
                "dec".to_string(),
                format!("{:.4}", 55.0 - 3.0 * f64::from(i)),
            ),
            ("radius".to_string(), "6.0000".to_string()),
        ]);
    }
    let first_half = 12;
    (all, first_half)
}

fn make_handle(clock: &Arc<MockClock>, snapshot_dir: Option<&Path>, shards: usize) -> ProxyHandle {
    make_handle_with(clock, snapshot_dir, None, None, shards)
}

/// Like [`make_handle`], optionally bounding RAM (`budget`) and
/// attaching the disk tier (`tier_dir`).
fn make_handle_with(
    clock: &Arc<MockClock>,
    snapshot_dir: Option<&Path>,
    tier_dir: Option<&Path>,
    budget: Option<usize>,
    shards: usize,
) -> ProxyHandle {
    let mut lifecycle = LifecycleConfig::default()
        .with_default_ttl(Duration::from_secs(3600))
        .with_epoch(1);
    if let Some(dir) = snapshot_dir {
        // Interval far beyond the test: snapshots happen via
        // `snapshot_now` only, deterministically.
        lifecycle = lifecycle.with_snapshot(dir.to_path_buf(), Duration::from_secs(3600));
    }
    let mut config = ProxyConfig::default()
        .with_scheme(Scheme::FullSemantic)
        .with_cost(CostModel::free())
        .with_lifecycle(lifecycle);
    if budget.is_some() {
        config = config.with_capacity(budget);
    }
    if let Some(dir) = tier_dir {
        config = config.with_tier(dir.to_path_buf());
    }
    ProxyHandle::with_shards_clocked(
        TemplateManager::with_sky_defaults(),
        Arc::new(SiteOrigin::new(site().clone())) as Arc<dyn Origin>,
        config,
        shards,
        Arc::clone(clock) as Arc<dyn Clock>,
    )
}

/// Replays `queries` and returns (hits, bodies) — hit = exact/contained.
fn replay(handle: &ProxyHandle, queries: &[Vec<(String, String)>]) -> (usize, Vec<Vec<u8>>) {
    let mut hits = 0;
    let mut bodies = Vec::with_capacity(queries.len());
    for q in queries {
        let r = handle.handle_form_xml("/search/radial", q).expect("serves");
        hits += usize::from(matches!(
            r.metrics.outcome,
            Outcome::Exact | Outcome::Contained
        ));
        bodies.push(r.body);
    }
    (hits, bodies)
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn warm_restart_recovers_the_cache_and_its_hit_rate() {
    let (all, half) = trace();
    let clock = MockClock::shared();

    // Baseline: one proxy lives through the whole trace.
    let baseline = make_handle(&clock, None, 4);
    replay(&baseline, &all[..half]);
    let (baseline_hits, baseline_bodies) = replay(&baseline, &all[half..]);
    assert!(baseline_hits >= 12, "the repeated queries must hit");

    // Restarted: snapshot after the first half, drop, recover, finish.
    let dir = fresh_dir("fp_lifecycle_restart_clean");
    let before = make_handle(&clock, Some(&dir), 4);
    let (_, warm_bodies) = replay(&before, &all[..half]);
    let files = before.snapshot_now().expect("snapshot writes");
    assert!(files >= 1, "warmed shards must produce snapshot files");
    drop(before);

    let after = make_handle(&clock, Some(&dir), 4);
    let stats = after.runtime_stats();
    assert_eq!(
        stats.recovered_entries, half,
        "every fresh entry must be recovered"
    );
    assert_eq!(stats.snapshot_corrupt_segments, 0);

    // Recovered entries serve byte-identical answers...
    let (restart_hits, restart_bodies) = replay(&after, &all[half..]);
    for (got, want) in restart_bodies.iter().zip(&baseline_bodies) {
        assert_eq!(got, want, "restarted proxy diverged from the baseline");
    }
    assert_eq!(warm_bodies[0], restart_bodies[0], "recovered entry bytes");

    // ...and the hit rate stays within five points of never restarting.
    let n = all.len() - half;
    let baseline_rate = baseline_hits as f64 / n as f64;
    let restart_rate = restart_hits as f64 / n as f64;
    assert!(
        (baseline_rate - restart_rate).abs() <= 0.05,
        "hit rate drifted: baseline {baseline_rate:.2}, restarted {restart_rate:.2}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Kill-restart with the disk tier attached: under a RAM budget tight
/// enough to demote most entries to the slab, a restart must recover
/// *everything* — demoted entries from their slab segments, resident
/// ones via the tiny metadata snapshot — and keep serving byte-identical
/// answers, now partly straight off the mmap'd slab. A second kill that
/// also loses the metadata snapshot still recovers every entry whose
/// payload reached the slab (bare replay mode).
#[test]
fn tiered_kill_restart_recovers_slab_and_meta() {
    let (all, half) = trace();
    let clock = MockClock::shared();

    // Baseline bodies from a proxy that never restarted (unbounded RAM).
    let baseline = make_handle(&clock, None, 2);
    replay(&baseline, &all[..half]);
    let (_, baseline_bodies) = replay(&baseline, &all[half..]);

    // Size the budget to roughly a third of the warmed working set, so
    // the tiered run must demote most entries.
    let warmed_bytes = baseline.cache_stats().bytes.max(1);
    let budget = warmed_bytes / 3;
    drop(baseline);

    let snap_dir = fresh_dir("fp_tier_restart_meta");
    let tier_dir = fresh_dir("fp_tier_restart_slab");
    let before = make_handle_with(&clock, Some(&snap_dir), Some(&tier_dir), Some(budget), 2);
    replay(&before, &all[..half]);
    before.quiesce_revalidations();
    let warm_stats = before.cache_stats();
    assert!(warm_stats.demotions > 0, "tight budget must demote");
    assert!(warm_stats.disk_entries > 0, "slab must hold entries");
    assert!(
        before.snapshot_now().expect("tier meta writes") >= 1,
        "tiered shards must write their metadata snapshots"
    );
    drop(before);

    // Restart #1: slab + metadata snapshot → full recovery.
    let after = make_handle_with(&clock, Some(&snap_dir), Some(&tier_dir), Some(budget), 2);
    let stats = after.runtime_stats();
    assert_eq!(
        stats.recovered_entries, half,
        "slab + meta must recover every entry"
    );
    assert_eq!(stats.snapshot_corrupt_segments, 0);
    let (restart_hits, restart_bodies) = replay(&after, &all[half..]);
    for (i, (got, want)) in restart_bodies.iter().zip(&baseline_bodies).enumerate() {
        assert_eq!(
            got, want,
            "query {i}: tiered restart diverged from baseline"
        );
    }
    assert!(
        restart_hits >= half,
        "every repeated query must hit after the tiered restart, got {restart_hits}"
    );
    after.quiesce_revalidations();
    assert!(
        after.runtime_stats().disk_hits > 0,
        "some recovered entries must serve from the slab before promotion"
    );
    drop(after);

    // Restart #2: the metadata snapshots are gone (crash before the
    // final snapshot pass). Bare slab replay still recovers everything
    // demoted or previously snapshotted — and stays byte-identical.
    for i in 0..2 {
        std::fs::remove_file(tier_dir.join(format!("shard_{i}.fpmeta"))).ok();
    }
    let replayed = make_handle_with(&clock, Some(&snap_dir), Some(&tier_dir), Some(budget), 2);
    let stats = replayed.runtime_stats();
    assert!(
        stats.recovered_entries >= warm_stats.disk_entries,
        "bare replay must recover at least the demoted entries: {} < {}",
        stats.recovered_entries,
        warm_stats.disk_entries
    );
    let (_, replay_bodies) = replay(&replayed, &all[half..]);
    for (i, (got, want)) in replay_bodies.iter().zip(&baseline_bodies).enumerate() {
        assert_eq!(got, want, "query {i}: bare-replay restart diverged");
    }
    replayed.quiesce_revalidations();
    std::fs::remove_dir_all(&snap_dir).ok();
    std::fs::remove_dir_all(&tier_dir).ok();
}

#[test]
fn corrupted_snapshot_loads_partially_without_panicking() {
    let (all, half) = trace();
    let clock = MockClock::shared();

    // One shard → one snapshot file holding all twelve entries.
    let dir = fresh_dir("fp_lifecycle_restart_corrupt");
    let before = make_handle(&clock, Some(&dir), 1);
    let (_, warm_bodies) = replay(&before, &all[..half]);
    assert_eq!(before.snapshot_now().expect("snapshot writes"), 1);
    drop(before);

    // Damage the file: flip a byte inside the first segment's payload
    // (CRC mismatch) and cut the tail mid-segment (truncation).
    let path = dir.join("shard_0.fpsnap");
    let mut data = std::fs::read(&path).expect("snapshot exists");
    let header_len = 8 + 4 + 8;
    data[header_len + 8 + 2] ^= 0xFF;
    let keep = data.len() - 40;
    std::fs::write(&path, &data[..keep]).expect("rewrite damaged snapshot");

    let after = make_handle(&clock, Some(&dir), 1);
    let stats = after.runtime_stats();
    assert!(
        stats.snapshot_corrupt_segments >= 2,
        "bit-flip and truncation must both be counted, got {}",
        stats.snapshot_corrupt_segments
    );
    assert!(
        stats.recovered_entries >= half.saturating_sub(2 + stats.snapshot_corrupt_segments)
            && stats.recovered_entries < half,
        "partial recovery expected, got {} of {half}",
        stats.recovered_entries
    );

    // Whatever survived serves byte-identical exact hits; the damaged
    // entries are ordinary misses, not errors.
    let mut exact = 0;
    for (q, want) in all[..half].iter().zip(&warm_bodies) {
        let r = after.handle_form_xml("/search/radial", q).expect("serves");
        if matches!(r.metrics.outcome, Outcome::Exact) {
            assert_eq!(&r.body, want, "recovered entry must serve its old bytes");
            exact += 1;
        }
    }
    assert_eq!(exact, stats.recovered_entries, "survivors all serve exact");
    std::fs::remove_dir_all(&dir).ok();
}
